"""Legacy setup shim.

The sandboxed environment has no ``wheel`` package, so PEP 660 editable
installs fail; with this shim ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
