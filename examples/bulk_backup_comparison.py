#!/usr/bin/env python3
"""Compare the protocols on a terabyte-scale backup (paper §4.4 + §6).

Runs the same exchange under three regimes and prints the cost table:

* **TPNR Normal mode** — 2 messages, TTP off-line;
* **Traditional NR (Zhou-Gollmann)** — 5 messages, TTP on-line;
* **TPNR + device shipping** — evidence over the wire, bulk data by
  surface mail, showing the protocol's time is "really trivial
  comparing to the time consumed by delivering the storage devices"
  (§6).

Run:  python examples/bulk_backup_comparison.py
"""

from repro import make_deployment, run_upload
from repro.analysis.metrics import compare, measure
from repro.analysis.report import render_table
from repro.baselines import ZgClient, ZgOnlineTtp, ZgProvider
from repro.crypto import CertificateAuthority, HmacDrbg, Identity, KeyRegistry
from repro.net import ChannelSpec, Network, Simulator
from repro.storage import EXPRESS, GROUND, OVERNIGHT, ShippingCarrier, StorageDevice

CHANNEL = ChannelSpec(base_latency=0.04, bandwidth_bps=12.5e6)  # 100 Mbit WAN
PAYLOAD = HmacDrbg(b"bulk-backup").generate(256 * 1024)  # evidence-sized sample


def tpnr_cost():
    dep = make_deployment(seed=b"bulk-tpnr", channel=CHANNEL)
    run_upload(dep, PAYLOAD)
    return measure(dep.network.trace, "TPNR Normal", "tpnr.", network=dep.network)


def zg_cost():
    rng = HmacDrbg(b"bulk-zg")
    sim = Simulator()
    network = Network(sim, rng, CHANNEL)
    ca = CertificateAuthority("ca", rng.fork("ca"))
    registry = KeyRegistry(ca)
    identities = {n: Identity.generate(n, rng) for n in ("alice", "bob", "zg-ttp")}
    for identity in identities.values():
        registry.enroll(identity)
    client = ZgClient(identities["alice"], registry, rng)
    provider = ZgProvider(identities["bob"], registry, rng)
    ttp = ZgOnlineTtp(identities["zg-ttp"], registry)
    for node in (client, provider, ttp):
        network.add_node(node)
    client.exchange("bob", PAYLOAD)
    sim.run()
    return measure(network.trace, "Traditional NR (ZG)", "zg.", network=network)


def main() -> None:
    tpnr = tpnr_cost()
    zg = zg_cost()
    rows = [
        [cost.label, cost.steps, cost.bytes_on_wire, f"{cost.latency:.3f}",
         "on-line" if cost.uses_ttp else "off-line"]
        for cost in (tpnr, zg)
    ]
    print(render_table(
        ["protocol", "messages", "bytes on wire", "latency (s)", "TTP"],
        rows,
        title="Evidence exchange over a 100 Mbit WAN",
    ))
    ratios = compare(tpnr, zg)
    print(f"\nTraditional NR costs {ratios['steps']:.1f}x the messages and "
          f"{ratios['latency']:.1f}x the latency of TPNR Normal mode.\n")

    # §6: bulk data travels by device; the protocol is a rounding error.
    print("Terabyte-scale backup: 4 TB by device, evidence by TPNR")
    rng = HmacDrbg(b"bulk-ship")
    rows = []
    for carrier_spec in (GROUND, EXPRESS, OVERNIGHT):
        sim = Simulator()
        carrier = ShippingCarrier(sim, rng.fork(carrier_spec.name), carrier_spec)
        device = StorageDevice("DEV-4TB", 4 * 1024**4)
        transit = carrier.ship(device, "customer", "provider", lambda d: None)
        sim.run()
        round_trip = 2 * transit
        fraction = tpnr.latency / (round_trip + tpnr.latency)
        rows.append([carrier_spec.name, f"{round_trip / 86400:.2f}",
                     f"{tpnr.latency:.3f}", f"{fraction:.2e}"])
    print(render_table(
        ["carrier", "shipping RTT (days)", "protocol (s)", "protocol fraction"],
        rows,
    ))
    print("\nThe non-repudiation protocol adds microseconds-per-day of overhead —")
    print("exactly the paper's §6 argument for why TPNR is practical for cloud backup.")


if __name__ == "__main__":
    main()
