#!/usr/bin/env python3
"""The paper's motivating scenario (§2.4), end to end.

Alice, a company CFO, stores the company financial data with Eve's
cloud storage service; Bob, the administration chairman, later
retrieves it.  Three things can go wrong, and this example plays out
all three with the TPNR protocol in place:

1. **Eve tampers** with the stored data -> Bob detects it at download
   and the Arbitrator convicts Eve from the signed evidence.
2. **Alice blackmails** — claims tampering although Eve served the data
   intact -> the Arbitrator rejects the claim; Eve's innocence is
   demonstrated.
3. **Eve stonewalls** — takes the upload but never sends the receipt,
   then ignores the TTP -> Alice ends with a TTP-signed statement that
   wins the dispute.

Run:  python examples/financial_backup_dispute.py
"""

from repro import (
    ProviderBehavior,
    TxStatus,
    Verdict,
    dispute_missing_receipt,
    dispute_tampering,
    make_deployment,
    run_download,
    run_upload,
)
from repro.storage import TamperMode

LEDGER = b"FY2010 ledger: revenue 48.2M, liabilities 13.1M ... " * 40


def scenario_eve_tampers() -> None:
    print("=" * 72)
    print("Scenario 1: Eve tampers with the stored ledger")
    print("=" * 72)
    dep = make_deployment(
        seed=b"scenario-tamper",
        provider_name="eve",
        behavior=ProviderBehavior(tamper_mode=TamperMode.FIXUP_MD5),
    )
    outcome = run_upload(dep, LEDGER)
    print(f"  upload: {outcome.upload_status.value} in {outcome.steps} messages")
    download = run_download(dep, outcome.transaction_id)
    print(f"  download: tampering detected = {download.tampering_detected}")
    print(f"            ({download.detail})")
    ruling = dispute_tampering(dep, outcome.transaction_id)
    print(f"  arbitrator: {ruling.verdict.value}")
    print(f"     rationale: {ruling.rationale}")
    assert ruling.verdict is Verdict.PROVIDER_FAULT


def scenario_alice_blackmails() -> None:
    print("=" * 72)
    print("Scenario 2: Alice claims tampering against an honest Eve (blackmail)")
    print("=" * 72)
    dep = make_deployment(seed=b"scenario-blackmail", provider_name="eve")
    outcome = run_upload(dep, LEDGER)
    download = run_download(dep, outcome.transaction_id)
    print(f"  download verified: {download.verified}")
    print("  Alice files a tampering claim anyway...")
    ruling = dispute_tampering(dep, outcome.transaction_id)
    print(f"  arbitrator: {ruling.verdict.value}")
    print(f"     rationale: {ruling.rationale}")
    assert ruling.verdict is Verdict.CLAIM_REJECTED


def scenario_eve_stonewalls() -> None:
    print("=" * 72)
    print("Scenario 3: Eve pockets the upload and ignores everyone")
    print("=" * 72)
    dep = make_deployment(
        seed=b"scenario-stonewall",
        provider_name="eve",
        behavior=ProviderBehavior(silent_on_upload=True, silent_to_ttp=True),
    )
    outcome = run_upload(dep, LEDGER)
    print(f"  upload status: {outcome.upload_status.value} ({outcome.upload_detail})")
    assert outcome.upload_status is TxStatus.FAILED
    ruling = dispute_missing_receipt(dep, outcome.transaction_id)
    print(f"  arbitrator: {ruling.verdict.value}")
    print(f"     rationale: {ruling.rationale}")
    assert ruling.verdict is Verdict.PROVIDER_FAULT


if __name__ == "__main__":
    scenario_eve_tampers()
    print()
    scenario_alice_blackmails()
    print()
    scenario_eve_stonewalls()
    print("\nAll three disputes settled correctly from evidence alone.")
