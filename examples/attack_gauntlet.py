#!/usr/bin/env python3
"""Run the §5 attack gauntlet and print the robustness matrix.

Each of the paper's five attack classes (man-in-the-middle, reflection,
interleaving, replay, timeliness) is staged twice: against the fully
defended protocol stack and against a target with the corresponding
defence removed — showing each defence is load-bearing, not decorative.

Run:  python examples/attack_gauntlet.py
"""

from repro.analysis.report import render_table
from repro.attacks import run_gauntlet, tpnr_defense_holds


def main() -> None:
    results = run_gauntlet(seed=b"gauntlet-example")
    rows = [
        [r.attack, r.target, "SUCCEEDED" if r.succeeded else "defeated",
         r.messages_intercepted, r.messages_injected]
        for r in results
    ]
    print(render_table(
        ["attack (paper §5)", "target", "outcome", "intercepted", "injected"],
        rows,
        title="Attack gauntlet",
    ))
    print()
    for r in results:
        marker = "!!" if r.succeeded else "ok"
        print(f"  [{marker}] {r.attack:18s} vs {r.target:30s} {r.detail}")
    print()
    if tpnr_defense_holds(results):
        print("Every attack against the fully defended configuration failed,")
        print("and every weakened target fell to its attack — the §5 analysis holds.")
    else:  # pragma: no cover - would indicate a regression
        print("WARNING: an attack succeeded against a defended target!")


if __name__ == "__main__":
    main()
