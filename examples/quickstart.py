#!/usr/bin/env python3
"""Quickstart: one TPNR session on a simulated cloud.

Builds a deployment (Alice the client, Bob the storage provider, a TTP,
and an arbitrator on one simulated network with a shared PKI), uploads
a document, downloads it back, and shows the evidence both sides hold.

Run:  python examples/quickstart.py
"""

from repro import TxStatus, make_deployment, run_download, run_upload
from repro.analysis.report import render_kv

def main() -> None:
    dep = make_deployment(seed=b"quickstart-example")
    document = b"Q3 financial statements, final version. " * 25

    # --- Normal-mode upload: 2 messages, no TTP -------------------------
    outcome = run_upload(dep, document)
    assert outcome.upload_status is TxStatus.COMPLETED
    print(render_kv(
        [
            ("transaction", outcome.transaction_id),
            ("status", outcome.upload_status.value),
            ("protocol messages", outcome.steps),
            ("bytes on wire", outcome.bytes_on_wire),
            ("TTP involved", outcome.ttp_involved),
        ],
        title="Upload (Normal mode)",
    ))

    # --- Download with upload-to-download integrity ----------------------
    download = run_download(dep, outcome.transaction_id)
    print(render_kv(
        [
            ("bytes received", len(download.data or b"")),
            ("integrity verified", download.verified),
            ("tampering detected", download.tampering_detected),
            ("detail", download.detail),
        ],
        title="\nDownload",
    ))

    # --- The evidence that makes repudiation impossible -------------------
    txn = outcome.transaction_id
    print("\nEvidence held by Alice (for disputes):")
    for item in dep.client.evidence_store.for_transaction(txn):
        print(f"  {item.header.flag.value:20s} signed by {item.signer}")
    print("Evidence held by Bob:")
    for item in dep.provider.evidence_store.for_transaction(txn):
        print(f"  {item.header.flag.value:20s} signed by {item.signer}")


if __name__ == "__main__":
    main()
