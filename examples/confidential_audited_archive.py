#!/usr/bin/env python3
"""The full enterprise stack: confidentiality + audit trail + archives.

Combines every layer the library provides on top of the paper's core
protocol, in the paper's own scenario:

1. Alice (CFO) seals the ledger so only she and the chairman can read
   it — the provider stores ciphertext only (§2.4 concern 1).
2. The provider runs a hash-chained, checkpoint-signed **audit log**,
   committing to what it stores and serves over time.
3. The provider is compromised and the stored ciphertext is replaced
   (with the stored digest fixed up — the stealthiest tamper).
4. The chairman's download detects the substitution (TPNR closes the
   upload-to-download link across users).
5. Both parties export their evidence to **JSON archives**; the
   arbitrator re-verifies the rehydrated bundles and convicts.
6. The audit log narrows *when* the tampering happened — between the
   last clean serve and the first tampered one.

Run:  python examples/confidential_audited_archive.py
"""

from repro import (
    Verdict,
    make_deployment,
    run_download,
    run_shared_download,
    run_upload,
)
from repro.core.archive import export_store, verify_bundle
from repro.core.confidential import open_payload, recipients_of, seal_payload
from repro.crypto.hashes import digest
from repro.storage import AuditLog, TamperMode, apply_tamper, verify_chain

LEDGER = b"FY2010 consolidated ledger, board copy. " * 32


def main() -> None:
    dep = make_deployment(seed=b"enterprise-example",
                          provider_name="eve", extra_client_names=("chairman",))
    dep.provider.audit_log = AuditLog(dep.provider.identity, checkpoint_interval=2)

    # 1. Seal for the two authorized readers; upload the ciphertext.
    ciphertext = seal_payload(LEDGER, ["alice", "chairman"], dep.registry, dep.rng)
    print(f"sealed ledger: {len(LEDGER)} plaintext -> {len(ciphertext)} ciphertext bytes")
    print(f"authorized readers: {recipients_of(ciphertext)}")
    outcome = run_upload(dep, ciphertext)
    print(f"upload: {outcome.upload_status.value} in {outcome.steps} messages")
    stored = dep.provider.store.get("tpnr-data", outcome.transaction_id)
    print(f"provider can read the plaintext: {LEDGER[:20] in stored.data}")

    # 2. One clean download by Alice (lands in the audit log).
    run_download(dep, outcome.transaction_id)

    # 3. Compromise: stealthiest possible in-storage substitution.
    apply_tamper(dep.provider.store, "tpnr-data", outcome.transaction_id,
                 TamperMode.FIXUP_MD5, dep.rng)
    print("\n[provider storage compromised: contents replaced, digest fixed up]\n")

    # 4. The chairman downloads and TPNR catches it.
    result = run_shared_download(dep, outcome.transaction_id, "chairman")
    print(f"chairman's download: tampering detected = {result.tampering_detected}")

    # 5. Evidence to JSON archives; arbitration from the files alone.
    chairman = dep.extra_clients["chairman"]
    claim = export_store(chairman.evidence_store, outcome.transaction_id)
    rebuttal = export_store(dep.provider.evidence_store, outcome.transaction_id)
    print(f"archived evidence: claimant {len(claim)} B, respondent {len(rebuttal)} B")
    ruling = dep.arbitrator.rule_on_tampering(
        outcome.transaction_id,
        dep.provider.name,
        verify_bundle(claim, dep.registry),
        verify_bundle(rebuttal, dep.registry),
    )
    print(f"arbitrator (from archives): {ruling.verdict.value}")
    assert ruling.verdict is Verdict.PROVIDER_FAULT

    # 6. Forensics: when did it happen?
    log = dep.provider.audit_log
    covered = verify_chain(log.entries, log.checkpoints, dep.registry, "eve")
    expected_digest = digest("sha256", ciphertext)
    last_ok, first_bad = log.last_change_between_checkpoints(
        "tpnr-data", outcome.transaction_id, expected_digest
    )
    print(f"\naudit chain verified ({len(log.entries)} entries, "
          f"signed through entry {covered})")
    print(f"tamper window: after log entry {last_ok} "
          f"(t={log.entries[last_ok].at_time:.2f}) and by entry {first_bad} "
          f"(t={log.entries[first_bad].at_time:.2f})")
    print("\nEve is convicted; the plaintext was never exposed; the incident is")
    print("time-bounded — confidentiality, non-repudiation, and auditability compose.")


if __name__ == "__main__":
    main()
