"""§3.2 — With SKS but without TAC: the digest is secret-shared.

Uploading session:
  1. user -> provider: data + MD5;
  2. provider verifies; provider -> user: MD5;
  3. the two sides **share the MD5 with SKS** — a 2-of-2 Shamir split,
     so neither can later assert a different agreed digest alone, and a
     dispute is settled by pooling shares and recovering the digest.

No signatures, no third party: the binding force is that a single
share reveals nothing and a recovered digest requires both shares —
so an agreed digest can only be demonstrated *jointly*.
"""

from __future__ import annotations

from ..crypto import shamir
from ..errors import SecretSharingError
from .base import BridgingScheme, UploadArtifacts

__all__ = ["SksScheme"]

_MD5_SIZE = 16


def _encode_share(share: shamir.Share) -> bytes:
    return f"{share.x}:{share.y:x}".encode()


def _decode_share(raw: bytes) -> shamir.Share:
    x_str, y_str = raw.decode().split(":", 1)
    return shamir.Share(x=int(x_str), y=int(y_str, 16))


class SksScheme(BridgingScheme):
    """Secret-shared digest, no signatures, no third party."""

    name = "sks"
    needs_tac = False
    unilateral_forgery_possible = False

    def upload(self, data: bytes) -> UploadArtifacts:
        transaction_id = self.new_transaction_id()
        md5 = self.md5(data)
        # 1: data + MD5; 2: MD5 back; 3: SKS split of the agreed MD5.
        self.store_data(transaction_id, data)
        user_share, provider_share = shamir.split_digest(
            md5, n_shares=2, threshold=2, rng=self.world.rng
        )
        return UploadArtifacts(
            transaction_id=transaction_id,
            agreed_md5=md5,
            user_holds={"md5": md5, "share": _encode_share(user_share)},
            provider_holds={"md5": md5, "share": _encode_share(provider_share)},
            upload_messages=3,
        )

    def download(self, artifacts: UploadArtifacts) -> tuple[bytes, bytes, int]:
        data = self.fetch_data(artifacts.transaction_id)
        return data, artifacts.agreed_md5, 2

    def dispute(self, artifacts: UploadArtifacts, downloaded: bytes) -> tuple[str, int]:
        # Pool the two shares and recover the jointly agreed digest.
        try:
            recovered = shamir.recover_digest(
                [
                    _decode_share(artifacts.user_holds["share"]),
                    _decode_share(artifacts.provider_holds["share"]),
                ],
                digest_size=_MD5_SIZE,
            )
        except SecretSharingError:
            return "unresolved", 2
        stored = self.fetch_data(artifacts.transaction_id)
        if self.md5(stored) != recovered:
            return "provider-at-fault", 2
        return "claim-rejected", 2
