"""The Third Authority Certified (TAC) escrow service (paper §3).

§3's schemes optionally deposit the signed digests (MSU — "MD5
Signature by User" — and MSP — "MD5 Signature by Provider") with "a
third authorities certified (TAC) by the user and provider".  The TAC
verifies what it accepts, stores it per transaction, and later answers
dispute queries by producing the deposited material.

In the TAC+SKS scheme (§3.4) the TAC additionally receives the digest
from *both* parties, verifies the two match, and distributes the agreed
digest back as secret shares.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import rsa, shamir
from ..crypto.drbg import HmacDrbg
from ..crypto.pki import KeyRegistry
from ..errors import DisputeError, EvidenceError

__all__ = ["TacDeposit", "TacService"]

MSU_DOMAIN = b"bridging-msu|"
MSP_DOMAIN = b"bridging-msp|"


@dataclass(frozen=True)
class TacDeposit:
    """One escrowed record: the agreed digest plus both signatures."""

    transaction_id: str
    user: str
    provider: str
    md5: bytes
    msu: bytes = b""
    msp: bytes = b""


class TacService:
    """Escrow of signed digests + the §3.4 share-distribution role."""

    def __init__(self, name: str, registry: KeyRegistry, rng: HmacDrbg) -> None:
        self.name = name
        self.registry = registry
        self.rng = rng.fork(f"tac/{name}")
        self._deposits: dict[str, TacDeposit] = {}
        self.deposits_accepted = 0
        self.deposits_rejected = 0

    # -- §3.3: deposit both signatures ---------------------------------------

    def deposit_signatures(
        self,
        transaction_id: str,
        user: str,
        provider: str,
        md5: bytes,
        msu: bytes,
        msp: bytes,
    ) -> None:
        """Verify and escrow MSU and MSP for one transaction."""
        if not rsa.verify(self.registry.lookup(user), MSU_DOMAIN + md5, msu):
            self.deposits_rejected += 1
            raise EvidenceError("TAC: MSU does not verify")
        if not rsa.verify(self.registry.lookup(provider), MSP_DOMAIN + md5, msp):
            self.deposits_rejected += 1
            raise EvidenceError("TAC: MSP does not verify")
        self._deposits[transaction_id] = TacDeposit(
            transaction_id=transaction_id, user=user, provider=provider,
            md5=md5, msu=msu, msp=msp,
        )
        self.deposits_accepted += 1

    # -- §3.4: receive digests from both sides, distribute shares -----------------

    def agree_and_share(
        self,
        transaction_id: str,
        user: str,
        provider: str,
        md5_from_user: bytes,
        md5_from_provider: bytes,
    ) -> tuple[shamir.Share, shamir.Share]:
        """Verify the two digests match, escrow, return one share each.

        The shares use a 2-of-3 threshold with the TAC silently holding
        the third share — so user+provider can settle bilaterally, and
        either of them plus the TAC can settle if the other stonewalls.
        """
        if md5_from_user != md5_from_provider:
            self.deposits_rejected += 1
            raise EvidenceError("TAC: user and provider submitted different digests")
        shares = shamir.split_digest(md5_from_user, n_shares=3, threshold=2, rng=self.rng)
        self._deposits[transaction_id] = TacDeposit(
            transaction_id=transaction_id, user=user, provider=provider, md5=md5_from_user,
        )
        self.deposits_accepted += 1
        return shares[0], shares[1]

    # -- dispute queries --------------------------------------------------------

    def produce(self, transaction_id: str) -> TacDeposit:
        """Hand the escrowed record to a dispute."""
        try:
            return self._deposits[transaction_id]
        except KeyError as exc:
            raise DisputeError(f"TAC holds nothing for {transaction_id!r}") from exc

    def holds(self, transaction_id: str) -> bool:
        return transaction_id in self._deposits
