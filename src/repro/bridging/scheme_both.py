"""§3.4 — With both TAC and SKS.

Uploading session:
  1. user -> provider: data + MD5;
  2. provider verifies the MD5;
  3. **both** user and provider send the MD5 to the TAC;
  4. the TAC verifies the two values match and, if so, **distributes
     the MD5 to user and provider by SKS**, keeping escrow "in demand".

Dispute: pool the two shares and recover the agreed digest; "if the
disputation cannot be resolved, they can seek further help from the
TAC" — modelled as the TAC fallback when share recovery fails (e.g. a
party presents a corrupted share).
"""

from __future__ import annotations

from ..crypto import shamir
from ..errors import DisputeError, SecretSharingError
from .base import BridgingScheme, UploadArtifacts

__all__ = ["BothScheme"]

_MD5_SIZE = 16


def _encode_share(share: shamir.Share) -> bytes:
    return f"{share.x}:{share.y:x}".encode()


def _decode_share(raw: bytes) -> shamir.Share:
    x_str, y_str = raw.decode().split(":", 1)
    return shamir.Share(x=int(x_str), y=int(y_str, 16))


class BothScheme(BridgingScheme):
    """TAC-verified agreement distributed as secret shares."""

    name = "both"
    needs_tac = True
    unilateral_forgery_possible = False

    def upload(self, data: bytes) -> UploadArtifacts:
        transaction_id = self.new_transaction_id()
        md5 = self.md5(data)
        world = self.world
        self.store_data(transaction_id, data)
        # 3+4: both submit the digest; the TAC matches and shares it.
        user_share, provider_share = world.tac.agree_and_share(
            transaction_id, world.user.name, world.provider.name, md5, md5
        )
        return UploadArtifacts(
            transaction_id=transaction_id,
            agreed_md5=md5,
            user_holds={"share": _encode_share(user_share)},
            provider_holds={"share": _encode_share(provider_share)},
            tac_holds=True,
            upload_messages=5,  # data+MD5; verify/ack; 2x MD5 to TAC; shares out
        )

    def download(self, artifacts: UploadArtifacts) -> tuple[bytes, bytes, int]:
        data = self.fetch_data(artifacts.transaction_id)
        return data, artifacts.agreed_md5, 2

    def detect(self, artifacts: UploadArtifacts, downloaded: bytes, provider_md5: bytes) -> bool:
        # The user holds only a share, not the digest itself; detection
        # at download time uses the digest returned in the session,
        # which for an honest session equals the agreed one.
        return self.md5(downloaded) != provider_md5 or self.md5(downloaded) != artifacts.agreed_md5

    def dispute(self, artifacts: UploadArtifacts, downloaded: bytes) -> tuple[str, int]:
        world = self.world
        messages = 2  # both parties table their shares
        try:
            recovered = shamir.recover_digest(
                [
                    _decode_share(artifacts.user_holds["share"]),
                    _decode_share(artifacts.provider_holds["share"]),
                ],
                digest_size=_MD5_SIZE,
            )
        except SecretSharingError:
            # "Seek further help from the TAC for the MD5."
            messages += 1
            try:
                recovered = world.tac.produce(artifacts.transaction_id).md5
            except DisputeError:
                return "unresolved", messages
        stored = self.fetch_data(artifacts.transaction_id)
        if self.md5(stored) != recovered:
            return "provider-at-fault", messages
        return "claim-rejected", messages
