"""The four §3 bridging schemes plus the status-quo control.

Parameterized by two booleans — is there a Third Authority Certified
(TAC), and is Secret Key Sharing (SKS) used:

=============  =====  =====
scheme         TAC    SKS
=============  =====  =====
``plain``      no     no    (and no signatures: the current platforms)
``nn``  §3.1   no     no    (exchanged signed digests)
``sks`` §3.2   no     yes
``tac`` §3.3   yes    no
``both`` §3.4  yes    yes
=============  =====  =====
"""

from . import base, scheme_both, scheme_nn, scheme_plain, scheme_sks, scheme_tac, tac
from .base import BridgingScheme, BridgingWorld, ScenarioResult, UploadArtifacts, make_world
from .scheme_both import BothScheme
from .scheme_nn import NeitherScheme
from .scheme_plain import PlainScheme
from .scheme_sks import SksScheme
from .scheme_tac import TacScheme
from .tac import TacDeposit, TacService

ALL_SCHEMES = (PlainScheme, NeitherScheme, SksScheme, TacScheme, BothScheme)

__all__ = [
    "base",
    "scheme_both",
    "scheme_nn",
    "scheme_plain",
    "scheme_sks",
    "scheme_tac",
    "tac",
    "BridgingScheme",
    "BridgingWorld",
    "ScenarioResult",
    "UploadArtifacts",
    "make_world",
    "BothScheme",
    "NeitherScheme",
    "PlainScheme",
    "SksScheme",
    "TacScheme",
    "TacDeposit",
    "TacService",
    "ALL_SCHEMES",
]
