"""§3.3 — With TAC but without SKS: signatures escrowed with a third
authority.

Uploading session:
  1. user -> provider: data + MD5 + MSU;
  2. provider verifies; provider -> user: MD5 + MSP;
  3. **MSU and MSP are sent to the TAC**, which verifies and escrows
     them.

Dispute: either party "can prove its innocence by presenting the MSU
and MSP stored at the TAC" — the judge queries the TAC instead of
trusting either disputant's files.
"""

from __future__ import annotations

from ..crypto import rsa
from ..errors import DisputeError
from .base import BridgingScheme, UploadArtifacts
from .tac import MSP_DOMAIN, MSU_DOMAIN

__all__ = ["TacScheme"]


class TacScheme(BridgingScheme):
    """Signed digests in third-party escrow."""

    name = "tac"
    needs_tac = True
    unilateral_forgery_possible = False

    def upload(self, data: bytes) -> UploadArtifacts:
        transaction_id = self.new_transaction_id()
        md5 = self.md5(data)
        world = self.world
        msu = rsa.sign(world.user.private_key, MSU_DOMAIN + md5)
        self.store_data(transaction_id, data)
        msp = rsa.sign(world.provider.private_key, MSP_DOMAIN + md5)
        # 3: both signatures go to the TAC (one combined deposit here).
        world.tac.deposit_signatures(
            transaction_id, world.user.name, world.provider.name, md5, msu, msp
        )
        return UploadArtifacts(
            transaction_id=transaction_id,
            agreed_md5=md5,
            user_holds={"md5": md5},
            provider_holds={"md5": md5},
            tac_holds=True,
            upload_messages=3,  # data+MD5+MSU; MD5+MSP; deposit to TAC
        )

    def download(self, artifacts: UploadArtifacts) -> tuple[bytes, bytes, int]:
        data = self.fetch_data(artifacts.transaction_id)
        return data, artifacts.agreed_md5, 2

    def agreed_digest_provable(self, artifacts: UploadArtifacts) -> bool:
        return self.world.tac.holds(artifacts.transaction_id)

    def dispute(self, artifacts: UploadArtifacts, downloaded: bytes) -> tuple[str, int]:
        world = self.world
        try:
            deposit = world.tac.produce(artifacts.transaction_id)  # 1 message
        except DisputeError:
            return "unresolved", 1
        msu_ok = rsa.verify(
            world.registry.lookup(world.user.name), MSU_DOMAIN + deposit.md5, deposit.msu
        )
        msp_ok = rsa.verify(
            world.registry.lookup(world.provider.name), MSP_DOMAIN + deposit.md5, deposit.msp
        )
        if not (msu_ok and msp_ok):
            return "unresolved", 1
        stored = self.fetch_data(artifacts.transaction_id)
        if self.md5(stored) != deposit.md5:
            return "provider-at-fault", 1
        return "claim-rejected", 1
