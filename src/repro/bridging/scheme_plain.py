"""The status-quo control scheme: authenticated sessions, no receipts.

"When the identity is authenticated, the trust is established" — the
method the paper says current platforms actually use.  The user keeps
nothing signed; the provider returns a digest recomputed from storage
(the AWS behaviour of §2.4).  Consequently in-storage tampering is
undetectable, and every dispute is word against word.
"""

from __future__ import annotations

from .base import BridgingScheme, UploadArtifacts

__all__ = ["PlainScheme"]


class PlainScheme(BridgingScheme):
    """No TAC, no SKS, no signatures — the §2 baseline."""

    name = "plain"
    needs_tac = False
    unilateral_forgery_possible = True

    def upload(self, data: bytes) -> UploadArtifacts:
        transaction_id = self.new_transaction_id()
        md5 = self.md5(data)
        # 1: user -> provider: data + MD5 (session-checked, then forgotten)
        self.store_data(transaction_id, data)
        # 2: provider -> user: OK
        return UploadArtifacts(
            transaction_id=transaction_id,
            agreed_md5=md5,  # known to the framework, *not retained by the user*
            user_holds={},
            provider_holds={},
            tac_holds=False,
            upload_messages=2,
        )

    def download(self, artifacts: UploadArtifacts) -> tuple[bytes, bytes, int]:
        # 1: request; 2: data + MD5 recomputed from storage
        data = self.fetch_data(artifacts.transaction_id)
        return data, self.md5(data), 2

    def detect(self, artifacts: UploadArtifacts, downloaded: bytes, provider_md5: bytes) -> bool:
        # Session-level check only: data vs the digest the provider
        # just computed — which matches by construction.
        return self.md5(downloaded) != provider_md5

    def agreed_digest_provable(self, artifacts: UploadArtifacts) -> bool:
        return False

    def dispute(self, artifacts: UploadArtifacts, downloaded: bytes) -> tuple[str, int]:
        # Nobody can prove what was agreed: the repudiation deadlock.
        return "unresolved", 0
