"""Shared framework for the §3 bridging schemes.

Each scheme subclasses :class:`BridgingScheme` and implements the
upload session, the download session, and dispute resolution.  A
:class:`BridgingWorld` bundles the participants (user, provider with
its blob store, optional TAC) so schemes differ only in what extra
material the sessions exchange and store.

The framework runs the full Fig.-5-style scenario: upload -> optional
in-storage tamper -> download -> (if warranted) dispute, and scores the
outcome on the axes the paper's §3 discussion cares about:

* **detected** — did the user notice the data changed?
* **agreed digest provable** — can the honest party establish what
  digest both sides originally agreed on (the "missing link")?
* **unilateral forgery possible** — can one side later assert a
  different digest without the other's cooperation?
* verdicts for the tampering dispute and the blackmail counter-claim.

Message counts per session are recorded so the S3 benchmark can report
the overhead column.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import CertificateAuthority, Identity, KeyRegistry
from ..storage.blobstore import BlobStore
from ..storage.tamper import TamperMode, apply_tamper
from .tac import TacService

__all__ = ["BridgingWorld", "UploadArtifacts", "ScenarioResult", "BridgingScheme", "make_world"]

_CONTAINER = "bridged"


@dataclass
class BridgingWorld:
    """Participants shared by every scheme."""

    user: Identity
    provider: Identity
    registry: KeyRegistry
    rng: HmacDrbg
    store: BlobStore
    tac: TacService


def make_world(seed: bytes | str = b"bridging", key_bits: int = 512) -> BridgingWorld:
    """Deterministic participant setup."""
    rng = HmacDrbg(seed)
    ca = CertificateAuthority("bridging-ca", rng.fork("ca"), bits=key_bits)
    registry = KeyRegistry(ca)
    user = Identity.generate("alice", rng, bits=key_bits)
    provider = Identity.generate("eve", rng, bits=key_bits)
    registry.enroll(user)
    registry.enroll(provider)
    return BridgingWorld(
        user=user,
        provider=provider,
        registry=registry,
        rng=rng,
        store=BlobStore("bridging-store"),
        tac=TacService("tac", registry, rng),
    )


@dataclass
class UploadArtifacts:
    """What the upload session left behind, per scheme."""

    transaction_id: str
    agreed_md5: bytes
    user_holds: dict[str, bytes] = field(default_factory=dict)
    provider_holds: dict[str, bytes] = field(default_factory=dict)
    tac_holds: bool = False
    upload_messages: int = 0


@dataclass
class ScenarioResult:
    """Scorecard for one (scheme x tamper x claim) scenario."""

    scheme: str
    tamper_mode: TamperMode
    detected: bool
    agreed_digest_provable: bool
    unilateral_forgery_possible: bool
    tamper_verdict: str  # what the dispute over real tampering yields
    blackmail_verdict: str  # what a false claim yields
    upload_messages: int
    download_messages: int
    dispute_messages: int
    user_storage_items: int
    provider_storage_items: int
    needs_tac: bool


class BridgingScheme(abc.ABC):
    """One of the four §3 solutions (or the status-quo control)."""

    #: short name used in reports
    name: str = "abstract"
    #: whether the scheme requires the third authority
    needs_tac: bool = False
    #: can a party unilaterally assert a different agreed digest?
    unilateral_forgery_possible: bool = False

    def __init__(self, world: BridgingWorld) -> None:
        self.world = world
        self._txn_counter = 0

    # -- hooks -----------------------------------------------------------------

    @abc.abstractmethod
    def upload(self, data: bytes) -> UploadArtifacts:
        """Run the scheme's uploading session."""

    @abc.abstractmethod
    def download(self, artifacts: UploadArtifacts) -> tuple[bytes, bytes, int]:
        """Run the downloading session.

        Returns ``(data, md5_from_provider, messages_used)``.
        """

    @abc.abstractmethod
    def dispute(self, artifacts: UploadArtifacts, downloaded: bytes) -> tuple[str, int]:
        """Resolve a tampering dispute.

        Returns ``(verdict, messages_used)``; verdict is one of
        "provider-at-fault", "claim-rejected", "agreement-established",
        "unresolved".
        """

    # -- shared plumbing ----------------------------------------------------------

    def new_transaction_id(self) -> str:
        self._txn_counter += 1
        return f"{self.name}-{self._txn_counter:04d}"

    def store_data(self, transaction_id: str, data: bytes) -> None:
        self.world.store.put(_CONTAINER, transaction_id, data)

    def fetch_data(self, transaction_id: str) -> bytes:
        return self.world.store.get(_CONTAINER, transaction_id).data

    def md5(self, data: bytes) -> bytes:
        return digest("md5", data)

    # -- the full scenario ---------------------------------------------------------

    def run_scenario(self, data: bytes, tamper_mode: TamperMode) -> ScenarioResult:
        """Upload, tamper, download, dispute — and a blackmail probe.

        The blackmail probe re-runs the dispute for an *untampered*
        twin transaction where the user claims tampering anyway.
        """
        artifacts = self.upload(data)
        if tamper_mode is not TamperMode.NONE:
            apply_tamper(
                self.world.store, _CONTAINER, artifacts.transaction_id,
                tamper_mode, self.world.rng,
            )
        downloaded, provider_md5, download_messages = self.download(artifacts)
        detected = self.detect(artifacts, downloaded, provider_md5)
        if detected:
            tamper_verdict, dispute_messages = self.dispute(artifacts, downloaded)
        elif tamper_mode is not TamperMode.NONE:
            tamper_verdict, dispute_messages = "undetected", 0
        else:
            tamper_verdict, dispute_messages = "no-dispute", 0
        # Blackmail probe on a clean transaction.
        clean = self.upload(data)
        clean_downloaded, _clean_md5, _ = self.download(clean)
        blackmail_verdict, blackmail_messages = self.dispute(clean, clean_downloaded)
        return ScenarioResult(
            scheme=self.name,
            tamper_mode=tamper_mode,
            detected=detected,
            agreed_digest_provable=self.agreed_digest_provable(artifacts),
            unilateral_forgery_possible=self.unilateral_forgery_possible,
            tamper_verdict=tamper_verdict,
            blackmail_verdict=blackmail_verdict,
            upload_messages=artifacts.upload_messages,
            download_messages=download_messages,
            dispute_messages=max(dispute_messages, blackmail_messages),
            user_storage_items=len(artifacts.user_holds),
            provider_storage_items=len(artifacts.provider_holds),
            needs_tac=self.needs_tac,
        )

    def detect(self, artifacts: UploadArtifacts, downloaded: bytes, provider_md5: bytes) -> bool:
        """Default detection: compare against the user's record of the
        agreed digest (every §3 scheme gives the user that much)."""
        return self.md5(downloaded) != artifacts.agreed_md5

    def agreed_digest_provable(self, artifacts: UploadArtifacts) -> bool:
        """Can the honest party *prove* the agreed digest to a judge?"""
        return bool(artifacts.user_holds or artifacts.tac_holds)

    @staticmethod
    def judge_requires(condition: bool, verdict_if_true: str, verdict_if_false: str) -> str:
        return verdict_if_true if condition else verdict_if_false
