"""Replicated multi-backend storage with fork-consistency verification.

The paper binds each transaction to a single provider; production
stores replicate.  This package makes the three platform models of
§2 (:mod:`repro.storage.s3like` / ``azurelike`` / ``gaelike``) the
replica set of one :class:`ReplicatedStore` — quorum-acked fan-out
writes, deterministic replica selection, hedged verified reads,
read-repair — and layers the Venus-style
:class:`ForkConsistencyVerifier` ("Don't Trust the Cloud, Verify",
arXiv:1502.04496) on top, so forking, stale reads, and silent
divergence by any replica become *findings* that flow into forensic
timelines and dispute dossiers.

:class:`ReplicationCampaignRunner` proves the RP1 contract — every
injected replica fault is masked by the quorum or detected by the
verifier, never silently absorbed — and :func:`migrate_backend`
performs live s3like→azurelike migration under which the NRO/NRR
evidence chain provably survives (RP2).
"""

from .campaign import (
    ReplicationCampaignRunner,
    ReplicationOutcome,
    ReplicationReport,
)
from .migration import MigrationRecord, migrate_backend, verify_migration_chain
from .store import (
    AzureReplicaAdapter,
    GaeReplicaAdapter,
    ReplicaAdapter,
    ReplicaEvent,
    ReplicaHandle,
    ReplicatedStore,
    ReplicationError,
    S3ReplicaAdapter,
    attach_replication,
    default_replicas,
)
from .verify import (
    ForkConsistencyVerifier,
    ReplicaAttestation,
    TrustedVersion,
    VerifierFinding,
    attestation_payload,
    sign_attestation,
)

__all__ = [
    "ReplicationError",
    "ReplicaEvent",
    "ReplicaAdapter",
    "S3ReplicaAdapter",
    "AzureReplicaAdapter",
    "GaeReplicaAdapter",
    "default_replicas",
    "ReplicaHandle",
    "ReplicatedStore",
    "attach_replication",
    "ForkConsistencyVerifier",
    "ReplicaAttestation",
    "TrustedVersion",
    "VerifierFinding",
    "attestation_payload",
    "sign_attestation",
    "ReplicationCampaignRunner",
    "ReplicationOutcome",
    "ReplicationReport",
    "MigrationRecord",
    "migrate_backend",
    "verify_migration_chain",
]
