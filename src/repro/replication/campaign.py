"""The RP1 campaign: every replica fault masked or detected, never silent.

:class:`ReplicationCampaignRunner` sweeps seeded
:class:`~repro.net.faults.FaultPlan`\\ s carrying ``replica_faults``
over fresh :class:`~repro.replication.store.ReplicatedStore` instances
(one per plan, three platform replicas, quorum 2).  Each plan drives a
seeded op sequence (writes + verified reads over a small key set),
injects its faults at the declared op points, heals partitions, and
runs the full Venus-style audit sweep.  Then each injected fault is
classified:

* **detected** — the verifier produced an error finding naming the
  faulted replica (divergence / fork / stale read / bad attestation);
* **masked** — no finding, but every read the workload issued returned
  the quorum-correct bytes (the fault never surfaced: lagging replicas
  hedged around, tampered copies overwritten by later writes);
* **silent** — neither: the fault corrupted observable state without a
  finding.  This is a violation, and the RP1 acceptance criterion is
  that it never happens.

Clean control plans must produce *zero* findings of any severity — the
verifier's false-positive guarantee.

Outcomes duck-type :func:`repro.obs.campaign.class_breakdown`, so the
per-fault-class breakdown table renders ``replica-divergence`` /
``split-brain`` / ``lagging-replica`` / ``byzantine-replica`` rows
exactly like FC1 renders ``drop`` / ``crash``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..net.faults import FaultPlan, ReplicaFault, ReplicaFaultMode
from .store import ReplicatedStore, ReplicationError

__all__ = [
    "ReplicationOutcome",
    "ReplicationReport",
    "ReplicationCampaignRunner",
]

#: Sim-seconds charged per workload op (keeps elapsed deterministic).
_OP_COST = 0.01


@dataclass
class ReplicationOutcome:
    """One plan's end-to-end result plus fault-accounting verdicts."""

    index: int
    plan: FaultPlan
    status: str  # "clean" | "masked" | "detected" | "silent"
    detail: str
    injected: int
    masked: int
    detected: int
    reads: int
    writes: int
    wrong_reads: int
    rejected_writes: int
    # Telemetry fields the per-fault-class breakdown expects; named to
    # line up with CampaignOutcome (retransmits = hedged reads,
    # recoveries = read-repairs).
    retransmits: int = 0
    recoveries: int = 0
    ttp_involved: bool = False
    wal_replayed: int = 0
    elapsed: float = 0.0
    violations: tuple[str, ...] = ()
    findings: tuple = ()  # VerifierFinding objects (all severities)

    def row(self) -> tuple:
        return (
            self.index,
            self.plan.name,
            self.plan.describe(),
            self.status,
            self.detail,
            self.injected,
            self.masked,
            self.detected,
            self.reads,
            self.writes,
            self.retransmits,
            self.recoveries,
            "; ".join(self.violations) if self.violations else "-",
        )


@dataclass
class ReplicationReport:
    """All outcomes of one replication campaign."""

    seed: str
    scenario: str = "replication"
    outcomes: list[ReplicationOutcome] = field(default_factory=list)

    HEADERS = (
        "#", "plan", "faults", "status", "detail", "inj", "masked",
        "det", "reads", "writes", "hedged", "repairs", "violations",
    )

    @property
    def violation_count(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def finding_count(self) -> int:
        return sum(len(o.findings) for o in self.outcomes)

    @property
    def injected_faults(self) -> int:
        return sum(o.injected for o in self.outcomes)

    @property
    def masked_faults(self) -> int:
        return sum(o.masked for o in self.outcomes)

    @property
    def detected_faults(self) -> int:
        return sum(o.detected for o in self.outcomes)

    @property
    def silent_faults(self) -> int:
        return self.injected_faults - self.masked_faults - self.detected_faults

    def finding_categories(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            for f in o.findings:
                counts[f.category] = counts.get(f.category, 0) + 1
        return dict(sorted(counts.items()))

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return dict(sorted(counts.items()))

    def clean_plan_findings(self) -> int:
        """Findings (any severity) on plans that injected nothing."""
        return sum(len(o.findings) for o in self.outcomes if o.injected == 0)

    def signature(self) -> str:
        """SHA-256 over every outcome row — byte-stable per seed."""
        body = "\n".join(repr(o.row()) for o in self.outcomes)
        return hashlib.sha256(body.encode()).hexdigest()

    def render(self) -> str:
        from ..analysis.report import render_table
        from ..obs.campaign import breakdown_table

        table = render_table(
            self.HEADERS,
            [o.row() for o in self.outcomes],
            title=f"RP1 replication campaign — seed={self.seed} "
            f"({len(self.outcomes)} plans, {self.injected_faults} faults: "
            f"{self.masked_faults} masked, {self.detected_faults} detected, "
            f"{self.silent_faults} silent)",
        )
        return table + "\n" + breakdown_table(self)


class ReplicationCampaignRunner:
    """Sweep replica-fault plans over fresh replicated stores."""

    def __init__(
        self,
        seed: bytes | str = b"replication-campaign",
        scenario: str = "replication",
        quorum: int = 2,
        ops_per_plan: int = 8,
        object_count: int = 3,
        container: str = "repl",
    ) -> None:
        self.seed = seed if isinstance(seed, bytes) else seed.encode()
        self.scenario = scenario
        self.quorum = quorum
        self.ops_per_plan = ops_per_plan
        self.object_count = object_count
        self.container = container

    def run(self, plans: list[FaultPlan]) -> ReplicationReport:
        report = ReplicationReport(
            seed=self.seed.decode("latin-1"), scenario=self.scenario)
        for index, plan in enumerate(plans):
            report.outcomes.append(self._run_plan(index, plan))
        return report

    # -- one plan ------------------------------------------------------------

    def _run_plan(self, index: int, plan: FaultPlan) -> ReplicationOutcome:
        rng = HmacDrbg(self.seed,
                       personalization=b"replication-run/" + plan.name.encode())
        store = ReplicatedStore(
            seed=self.seed + b"/" + plan.name.encode(), quorum=self.quorum)
        keys = [f"obj-{i}" for i in range(self.object_count)]
        expected: dict[str, bytes] = {}
        faults_at: dict[int, list[ReplicaFault]] = {}
        for fault in plan.replica_faults:
            faults_at.setdefault(fault.at_op, []).append(fault)

        # Pre-seed every key so op-1 faults have objects to corrupt.
        clock = 0.0
        for key in keys:
            data = rng.generate(32)
            store.put(self.container, key, data, at_time=clock)
            expected[key] = data
            clock += _OP_COST

        reads = writes = wrong_reads = rejected_writes = 0
        for op in range(1, self.ops_per_plan + 1):
            for fault in faults_at.get(op, ()):
                self._inject(store, fault, rng, keys, clock)
            clock += _OP_COST
            key = rng.choice(keys)
            if rng.random() < 0.5:
                data = rng.generate(32)
                try:
                    store.put(self.container, key, data, at_time=clock)
                except ReplicationError:
                    rejected_writes += 1  # quorum lost: loud refusal
                else:
                    expected[key] = data
                writes += 1
            else:
                try:
                    obj = store.get(self.container, key)
                except ReplicationError:
                    wrong_reads += 1  # no verified copy at all
                else:
                    if obj.data != expected[key]:
                        wrong_reads += 1
                reads += 1

        # Partitions heal; the full Venus-style sweep then cross-checks
        # every replica's (possibly forked) private history.
        for name in store.replica_names:
            store.heal_replica(name)
        store.audit()

        findings = tuple(store.verifier.findings)
        error_replicas = {f.replica for f in findings if f.is_error}
        masked = detected = 0
        violations: list[str] = []
        for fault in plan.replica_faults:
            if fault.replica in error_replicas:
                detected += 1
            elif wrong_reads == 0:
                masked += 1
            else:
                violations.append(f"silent-absorption: {fault.describe()}")
        if wrong_reads:
            violations.append(f"unverified-data-served x{wrong_reads}")
        if not plan.replica_faults and findings:
            violations.append(
                f"false-positive-findings x{len(findings)} on a clean plan")

        if violations:
            status = "silent"
        elif detected:
            status = "detected"
        elif masked:
            status = "masked"
        else:
            status = "clean"
        detail = (
            f"{len(store.verifier.error_findings())} error findings; "
            f"{store.read_repairs} repairs"
        )
        return ReplicationOutcome(
            index=index,
            plan=plan,
            status=status,
            detail=detail,
            injected=len(plan.replica_faults),
            masked=masked,
            detected=detected,
            reads=reads,
            writes=writes,
            wrong_reads=wrong_reads,
            rejected_writes=rejected_writes,
            retransmits=store.hedged_reads,
            recoveries=store.read_repairs,
            elapsed=round(clock + _OP_COST * len(keys), 6),
            violations=tuple(violations),
            findings=findings,
        )

    def _inject(self, store: ReplicatedStore, fault: ReplicaFault,
                rng: HmacDrbg, keys: list[str], clock: float) -> None:
        key = rng.choice(keys)
        if fault.mode is ReplicaFaultMode.DIVERGENCE:
            store.tamper_replica(fault.replica, self.container, key,
                                 rng.generate(24))
        elif fault.mode is ReplicaFaultMode.SPLIT_BRAIN:
            store.fault_replica(fault.replica, "partitioned")
            store.minority_write(fault.replica, self.container, key,
                                 rng.generate(24), at_time=clock)
        elif fault.mode is ReplicaFaultMode.LAGGING:
            store.fault_replica(fault.replica, "lagging")
        elif fault.mode is ReplicaFaultMode.BYZANTINE:
            store.tamper_replica(fault.replica, self.container, key,
                                 rng.generate(24),
                                 forge_attestation=fault.forge_attestation)
        else:  # pragma: no cover - enum is closed
            raise ReplicationError(f"unhandled fault mode {fault.mode}")
