"""A replicated store fanning out to the three platform models.

:class:`ReplicatedStore` presents the same surface as
:class:`~repro.storage.blobstore.BlobStore` — ``put``/``get``/
``exists``/``list_keys``/``overwrite_raw`` and friends — so it can
stand in for a provider's backing store inside a TPNR deployment.
Underneath, every write fans out to the configured replicas (each a
:class:`ReplicaAdapter` over one platform's *authenticated native
path*: S3-style object API, Azure-style signed REST blocks, GAE-style
datastore), commits on a write quorum of acks, and every read is
verified against the :class:`~repro.replication.verify.ForkConsistencyVerifier`
before a byte is returned:

* **deterministic replica selection** — reads probe replicas in an
  HMAC-ranked order per (container, key), so load spreads but replay
  is exact;
* **hedged fallback** — a read that a replica cannot serve verifiably
  (divergent bytes, stale version, forged attestation, unreachable)
  falls through to the next replica in rank order;
* **read-repair** — replicas that failed verification on the way are
  rewritten with the quorum copy once a verified copy is served;
* **graceful degradation** — writes succeed while a quorum of
  replicas acknowledges; a lost quorum *rejects* the write loudly
  (:class:`ReplicationError`) rather than silently under-replicating.

Fault hooks (:meth:`fault_replica`, :meth:`tamper_replica`,
:meth:`minority_write`) let the RP1 campaign inject divergence,
split-brain, lag, and byzantine tamper; :meth:`audit` is the full
Venus-style sweep that cross-checks every replica's view of every
object against the trusted log.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.hmac_ import hmac_digest
from ..errors import NoSuchObjectError, ReproError, StorageError
from ..obs.metrics import NULL_METRICS
from ..obs.profiler import NULL_PROFILER
from ..storage.azurelike import AzureLikeClient, AzureLikeService
from ..storage.blobstore import BlobStore, ObjectStat, StoredObject
from ..storage.gaelike import GaeLikeService
from ..storage.rest import RestRequest
from ..storage.s3like import S3LikeService
from .verify import ForkConsistencyVerifier, ReplicaAttestation, sign_attestation

__all__ = [
    "ReplicationError",
    "ReplicaEvent",
    "ReplicaAdapter",
    "S3ReplicaAdapter",
    "AzureReplicaAdapter",
    "GaeReplicaAdapter",
    "default_replicas",
    "ReplicaHandle",
    "ReplicatedStore",
    "attach_replication",
]


class ReplicationError(StorageError):
    """A replicated operation could not complete safely."""


@dataclass(frozen=True)
class ReplicaEvent:
    """One entry of the store's replica-level event log.

    These are the "replica" source of forensic timelines: write acks,
    skipped writes, rejected reads, read-repairs, migration steps.
    """

    time: float
    replica: str
    action: str
    container: str
    key: str
    version: int = 0
    detail: str = ""


# ---------------------------------------------------------------------------
# Per-platform adapters (the authenticated native path of each backend)
# ---------------------------------------------------------------------------

class ReplicaAdapter:
    """Uniform surface over one platform service.

    Concrete adapters go through each platform's *front door* — the
    same authenticated path an application would use — never the raw
    blob store (that path is reserved for fault injection).
    """

    name: str
    platform: str

    @property
    def blobs(self) -> BlobStore:  # pragma: no cover - abstract
        raise NotImplementedError

    def put(self, container: str, key: str, data: bytes,
            at_time: float = 0.0) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def get(self, container: str, key: str) -> bytes:  # pragma: no cover
        raise NotImplementedError

    def delete(self, container: str, key: str) -> None:
        self.blobs.delete(container, key)

    def exists(self, container: str, key: str) -> bool:
        return self.blobs.exists(container, key)

    def list_keys(self, container: str) -> list[str]:
        return self.blobs.list_keys(container)

    def stat(self, container: str, key: str) -> ObjectStat:
        return self.blobs.stat(container, key, backend=self.name)


class S3ReplicaAdapter(ReplicaAdapter):
    """AWS-style replica: direct object API under an account."""

    platform = "s3like"

    def __init__(self, rng: HmacDrbg, name: str = "s3like") -> None:
        self.name = name
        self.service = S3LikeService(rng, name=name)
        self.account = self.service.create_account(f"{name}-owner")

    @property
    def blobs(self) -> BlobStore:
        return self.service.blobs

    def put(self, container: str, key: str, data: bytes,
            at_time: float = 0.0) -> None:
        self.service.put_object(self.account, container, key, data,
                                at_time=at_time)

    def get(self, container: str, key: str) -> bytes:
        return self.service.get_object(self.account, container, key)[0]


class AzureReplicaAdapter(ReplicaAdapter):
    """Azure-style replica: SharedKey-signed block blob protocol."""

    platform = "azurelike"

    def __init__(self, rng: HmacDrbg, name: str = "azurelike") -> None:
        self.name = name
        self.service = AzureLikeService(rng, name=name)
        self.account = self.service.create_account(f"{name}-owner")
        self.client = AzureLikeClient(self.service, self.account)

    @property
    def blobs(self) -> BlobStore:
        return self.service.blobs

    def put(self, container: str, key: str, data: bytes,
            at_time: float = 0.0) -> None:
        self.client.put_blob(container, key, data, at_time=at_time)

    def get(self, container: str, key: str) -> bytes:
        # verify=False: the fork-consistency verifier (not the naive
        # returned-MD5 check §2.4 breaks) decides whether to trust this.
        return self.client.get_blob(container, key, verify=False)

    def delete(self, container: str, key: str) -> None:
        request = self.client._signed(RestRequest(
            method="DELETE",
            path=f"/{self.account.name}/{container}/{key}",
        ))
        response = self.service.handle(request)
        if response.status == 404:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        if not response.ok:
            raise StorageError(
                f"DELETE failed ({response.status}): {response.body.decode()}")


class GaeReplicaAdapter(ReplicaAdapter):
    """GAE-style replica: the datastore GET/PUT lower API."""

    platform = "gaelike"

    def __init__(self, rng: HmacDrbg, name: str = "gaelike") -> None:
        self.name = name
        self.service = GaeLikeService(rng, name=name)

    @property
    def blobs(self) -> BlobStore:
        return self.service.blobs

    def put(self, container: str, key: str, data: bytes,
            at_time: float = 0.0) -> None:
        self.service.datastore_put(container, key, data, at_time=at_time)

    def get(self, container: str, key: str) -> bytes:
        return self.service.datastore_get(container, key)


def default_replicas(seed: bytes | str) -> tuple[ReplicaAdapter, ...]:
    """One adapter per platform model, each on its own DRBG stream."""
    rng = HmacDrbg(seed, personalization=b"replica-backends")
    return (
        S3ReplicaAdapter(rng.fork("s3like")),
        AzureReplicaAdapter(rng.fork("azurelike")),
        GaeReplicaAdapter(rng.fork("gaelike")),
    )


# ---------------------------------------------------------------------------
# The replicated store
# ---------------------------------------------------------------------------

class ReplicaHandle:
    """Coordinator-side state for one replica: adapter + attestations."""

    def __init__(self, adapter: ReplicaAdapter, mac_key: bytes) -> None:
        self.adapter = adapter
        self.name = adapter.name
        self.mac_key = mac_key
        self.status = "up"  # "up" | "partitioned" | "lagging"
        self.versions: dict[tuple[str, str], int] = {}
        self.vectors: dict[tuple[str, str], dict[str, int]] = {}
        self.forged: set[tuple[str, str]] = set()

    def attest(self, container: str, key: str, data: bytes) -> ReplicaAttestation:
        """The attestation this replica returns for *data* it served.

        A byzantine replica marked ``forged`` for this object signs
        with a corrupted key — the verifier's MAC check catches it.
        """
        mac_key = self.mac_key
        if (container, key) in self.forged:
            mac_key = hmac_digest(b"forged-replica-key", self.mac_key)
        vector = tuple(sorted(self.vectors.get((container, key), {}).items()))
        return sign_attestation(
            mac_key, self.name, container, key, data,
            self.versions.get((container, key), 0), vector,
        )


class ReplicatedStore:
    """BlobStore-compatible facade over k quorum-replicated backends."""

    def __init__(
        self,
        seed: bytes | str = b"replicated-store",
        replicas: tuple[ReplicaAdapter, ...] | None = None,
        quorum: int | None = None,
        name: str = "replicated",
        clock=None,
        metrics=None,
    ) -> None:
        self.seed = seed if isinstance(seed, bytes) else seed.encode()
        self.name = name
        self.clock = clock  # callable -> sim time, set by attach_replication
        # A MetricsRegistry or the shared no-op; attach_replication
        # swaps in the deployment's live registry when observed.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Region-profiler seat, same contract: NULL until a deployment
        # with an enabled profiler is attached.
        self.profiler = NULL_PROFILER
        adapters = tuple(replicas) if replicas is not None else default_replicas(seed)
        if not adapters:
            raise ReplicationError("a replicated store needs at least one replica")
        self._handles: dict[str, ReplicaHandle] = {}
        for adapter in adapters:
            self._handles[adapter.name] = ReplicaHandle(
                adapter, self._derive_mac_key(adapter.name))
        self.quorum = quorum if quorum is not None else len(adapters) // 2 + 1
        if not (1 <= self.quorum <= len(adapters)):
            raise ReplicationError(
                f"quorum {self.quorum} impossible with {len(adapters)} replicas")
        self._rank_key = HmacDrbg(
            self.seed, personalization=b"replica-rank").generate(32)
        self.verifier = ForkConsistencyVerifier(
            {h.name: h.mac_key for h in self._handles.values()})
        self.events: list[ReplicaEvent] = []
        self.put_count = 0
        self.get_count = 0
        self.hedged_reads = 0
        self.read_repairs = 0
        self.rejected_writes = 0
        self._op_seq = 0
        # Injection time per (replica, container, key), so the first
        # finding that exposes the fault yields a detection latency.
        self._fault_marks: dict[tuple[str, str, str], float] = {}

    def _derive_mac_key(self, replica_name: str) -> bytes:
        return HmacDrbg(
            self.seed,
            personalization=b"replica-key/" + replica_name.encode(),
        ).generate(32)

    # -- membership ----------------------------------------------------------

    @property
    def replica_names(self) -> tuple[str, ...]:
        return tuple(self._handles)

    def handle(self, name: str) -> ReplicaHandle:
        try:
            return self._handles[name]
        except KeyError as exc:
            raise ReplicationError(f"unknown replica {name!r}") from exc

    def add_replica(self, adapter: ReplicaAdapter) -> ReplicaHandle:
        """Join a new replica (empty — migration copies data in)."""
        if adapter.name in self._handles:
            raise ReplicationError(f"replica {adapter.name!r} already joined")
        joined = ReplicaHandle(adapter, self._derive_mac_key(adapter.name))
        self._handles[adapter.name] = joined
        self.verifier.register_replica(joined.name, joined.mac_key)
        self._emit(joined.name, "join", "-", "-")
        return joined

    def remove_replica(self, name: str) -> ReplicaHandle:
        """Retire a replica from the fan-out set."""
        retired = self.handle(name)
        if len(self._handles) - 1 < self.quorum:
            raise ReplicationError(
                f"retiring {name!r} would leave fewer replicas than the "
                f"write quorum ({self.quorum})")
        del self._handles[name]
        self._emit(name, "retire", "-", "-")
        return retired

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        if callable(self.clock):
            return float(self.clock())
        return self._op_seq * 1e-3

    def _emit(self, replica: str, action: str, container: str, key: str,
              version: int = 0, detail: str = "") -> None:
        self._op_seq += 1
        self.events.append(ReplicaEvent(
            self._now(), replica, action, container, key, version, detail))

    def _observe_finding(self, finding) -> None:
        """Mirror one verifier finding into the metrics seat, and close
        out its fork-detection-latency measurement if this finding is
        the first to expose an injected fault."""
        if finding is None:
            return
        mark = self._fault_marks.pop(
            (finding.replica, finding.container, finding.key), None)
        if self.metrics.enabled:
            self.metrics.counter(
                "replication.findings", category=finding.category).inc()
            if mark is not None:
                self.metrics.sketch(
                    "replication.fork_detection_seconds"
                ).observe(max(0.0, self._now() - mark))

    def read_order(self, container: str, key: str) -> list[str]:
        """Replica preference order for one object: HMAC-ranked, so it
        is deterministic per key but spreads across keys."""
        def rank(name: str) -> str:
            return hmac_digest(
                self._rank_key, f"{name}|{container}|{key}".encode()).hex()

        return sorted(self._handles, key=rank)

    # -- BlobStore-compatible data path --------------------------------------

    def put(
        self,
        container: str,
        key: str,
        data: bytes,
        content_md5: bytes | None = None,
        metadata: dict[str, str] | None = None,
        at_time: float = 0.0,
    ) -> StoredObject:
        """Fan the write out; commit on a quorum of acknowledgements."""
        with self.profiler.region("replication/put"):
            return self._put_inner(container, key, data, content_md5,
                                   metadata, at_time)

    def _put_inner(
        self,
        container: str,
        key: str,
        data: bytes,
        content_md5: bytes | None,
        metadata: dict[str, str] | None,
        at_time: float,
    ) -> StoredObject:
        if not container or not key:
            raise StorageError("container and key must be non-empty")
        data = bytes(data)
        latest = self.verifier.latest(container, key)
        version = latest.version + 1 if latest else 1
        md5 = content_md5 if content_md5 is not None else digest("md5", data)
        up = [h for h in self._handles.values() if h.status == "up"]
        if len(up) < self.quorum:
            # Reject before dirtying any replica: an under-quorum write
            # must never leave a minority holding uncommitted versions.
            self.rejected_writes += 1
            if self.metrics.enabled:
                self.metrics.counter("replication.rejected_writes").inc()
            self._emit("-", "write-rejected", container, key, version,
                       detail=f"{len(up)}/{self.quorum} reachable")
            raise ReplicationError(
                f"write quorum lost for {container}/{key}: "
                f"{len(up)}/{self.quorum} replicas reachable")
        acked: list[str] = []
        for handle in self._handles.values():
            if handle.status != "up":
                self._emit(handle.name, "write-skipped", container, key,
                           version, detail=handle.status)
                continue
            handle.adapter.put(container, key, data, at_time=at_time)
            handle.versions[(container, key)] = version
            handle.forged.discard((container, key))
            acked.append(handle.name)
            self._emit(handle.name, "write-ack", container, key, version)
        for name in acked:
            vector = self._handles[name].vectors.setdefault((container, key), {})
            for other in acked:
                vector[other] = version
        self.verifier.commit(container, key, version,
                             digest("sha256", data).hex(), md5.hex(),
                             len(data), at_time, acked)
        self.put_count += 1
        if self.metrics.enabled:
            self.metrics.counter("replication.writes").inc()
        return StoredObject(
            container=container, key=key, data=data, content_md5=md5,
            metadata=dict(metadata or {}), created_at=at_time, version=version,
        )

    def get(self, container: str, key: str) -> StoredObject:
        """Serve a *verified* copy: probe in rank order, hedge past any
        replica whose attestation the verifier rejects, then repair the
        stragglers with the quorum copy."""
        with self.profiler.region("replication/get"):
            return self._get_inner(container, key)

    def _get_inner(self, container: str, key: str) -> StoredObject:
        latest = self.verifier.latest(container, key)
        if latest is None:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        repair: list[str] = []
        attempts = 0
        for name in self.read_order(container, key):
            handle = self._handles[name]
            if handle.status == "partitioned":
                self._emit(name, "read-skip", container, key,
                           detail="partitioned")
                continue
            attempts += 1
            try:
                payload = handle.adapter.get(container, key)
            except ReproError as exc:
                self._emit(name, "read-miss", container, key, detail=str(exc))
                self._observe_finding(
                    self.verifier.check_missing(name, container, key))
                repair.append(name)
                continue
            with self.profiler.region("replication/attest-verify"):
                attestation = handle.attest(container, key, payload)
                finding = self.verifier.check_read(attestation)
            if finding is None:
                if attempts > 1:
                    self.hedged_reads += 1
                    if self.metrics.enabled:
                        self.metrics.counter("replication.hedged_reads").inc()
                self._emit(name, "read", container, key, attestation.version)
                self._read_repair(container, key, payload, latest, repair)
                self.get_count += 1
                if self.metrics.enabled:
                    self.metrics.counter(
                        "replication.reads",
                        outcome="repaired" if repair else "clean",
                    ).inc()
                return StoredObject(
                    container=container, key=key, data=payload,
                    content_md5=bytes.fromhex(latest.md5),
                    created_at=latest.created_at, version=latest.version,
                )
            self._emit(name, "read-reject", container, key,
                       attestation.version, detail=finding.category)
            self._observe_finding(finding)
            repair.append(name)
        raise ReplicationError(
            f"no replica served a verified copy of {container}/{key}")

    def _read_repair(self, container: str, key: str, data: bytes,
                     latest, repair: list[str]) -> None:
        for name in repair:
            handle = self._handles[name]
            if handle.status != "up":
                continue  # cannot repair a partitioned/lagging process
            handle.adapter.put(container, key, data,
                               at_time=latest.created_at)
            handle.versions[(container, key)] = latest.version
            handle.vectors.setdefault((container, key), {})[name] = latest.version
            handle.forged.discard((container, key))
            self.verifier.mark_acked(container, key, name, latest.version)
            self.read_repairs += 1
            if self.metrics.enabled:
                self.metrics.counter("replication.read_repairs").inc()
            self._emit(name, "read-repair", container, key, latest.version)

    def delete(self, container: str, key: str) -> None:
        if self.verifier.latest(container, key) is None:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        for handle in self._handles.values():
            if handle.status != "up":
                continue
            try:
                handle.adapter.delete(container, key)
            except ReproError:
                continue
            handle.versions.pop((container, key), None)
            handle.vectors.pop((container, key), None)
            self._emit(handle.name, "delete", container, key)
        self.verifier.delete(container, key)

    def exists(self, container: str, key: str) -> bool:
        return self.verifier.latest(container, key) is not None

    def list_keys(self, container: str) -> list[str]:
        return sorted(k for (c, k) in self.verifier.live_keys()
                      if c == container)

    def objects(self) -> list[StoredObject]:
        return [self.get(c, k) for c, k in self.verifier.live_keys()]

    def total_bytes(self) -> int:
        total = 0
        for container, key in self.verifier.live_keys():
            latest = self.verifier.latest(container, key)
            total += latest.size if latest else 0
        return total

    def __len__(self) -> int:
        return len(self.verifier.live_keys())

    # -- parity surface ------------------------------------------------------

    def stat(self, container: str, key: str,
             backend: str | None = None) -> ObjectStat:
        latest = self.verifier.latest(container, key)
        if latest is None:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        return ObjectStat(
            backend=backend if backend is not None else self.name,
            container=container, key=key, size=latest.size,
            version=latest.version, created_at=latest.created_at,
            content_digest=latest.digest, stored_md5=latest.md5,
        )

    def content_digest(self, container: str, key: str) -> str:
        return self.stat(container, key).content_digest

    # -- provider-side (malicious) path --------------------------------------

    def overwrite_raw(
        self,
        container: str,
        key: str,
        data: bytes | None = None,
        content_md5: bytes | None = None,
    ) -> StoredObject:
        """The §2.4 tamper path, replicated: the party *running* this
        store rewrites the bytes on every replica and fixes its own
        trusted log, so replica-level checks cannot object.  Only the
        client-held NRO/NRR evidence still can."""
        latest = self.verifier.latest(container, key)
        if latest is None:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        current = self.get(container, key)
        new_data = bytes(data) if data is not None else current.data
        new_md5 = content_md5 if content_md5 is not None else current.content_md5
        for handle in self._handles.values():
            try:
                handle.adapter.blobs.overwrite_raw(
                    container, key, data=new_data, content_md5=new_md5)
            except ReproError:
                continue
            self._emit(handle.name, "overwrite-raw", container, key,
                       latest.version)
        self.verifier.rewrite_history(
            container, key, digest("sha256", new_data).hex(),
            new_md5.hex(), len(new_data))
        return StoredObject(
            container=container, key=key, data=new_data, content_md5=new_md5,
            created_at=latest.created_at, version=latest.version,
        )

    # -- fault hooks (RP1 campaign) ------------------------------------------

    def fault_replica(self, name: str, mode: str) -> None:
        """Mark a replica ``partitioned`` or ``lagging``."""
        if mode not in ("partitioned", "lagging"):
            raise ReplicationError(f"unknown replica fault mode {mode!r}")
        self.handle(name).status = mode
        self._emit(name, f"fault-{mode}", "-", "-")

    def heal_replica(self, name: str) -> None:
        self.handle(name).status = "up"
        self._emit(name, "heal", "-", "-")

    def tamper_replica(self, name: str, container: str, key: str,
                       data: bytes, forge_attestation: bool = False) -> None:
        """Byzantine/divergence injection: rewrite one replica's copy
        behind the coordinator's back, with the platform MD5 fixed up
        (so single-backend checks pass); optionally forge the
        attestation key too."""
        handle = self.handle(name)
        handle.adapter.blobs.overwrite_raw(
            container, key, data=bytes(data),
            content_md5=digest("md5", data))
        if forge_attestation:
            handle.forged.add((container, key))
        self._fault_marks[(name, container, key)] = self._now()
        self._emit(name, "tampered", container, key,
                   handle.versions.get((container, key), 0),
                   detail="forged-mac" if forge_attestation else "fixup-md5")

    def minority_write(self, name: str, container: str, key: str,
                       data: bytes, at_time: float = 0.0) -> None:
        """Split-brain injection: a partitioned replica accepts a write
        the quorum never sees, advancing its private history."""
        handle = self.handle(name)
        handle.adapter.put(container, key, bytes(data), at_time=at_time)
        forked_version = handle.versions.get((container, key), 0) + 1
        handle.versions[(container, key)] = forked_version
        handle.vectors.setdefault((container, key), {})[name] = forked_version
        self._fault_marks[(name, container, key)] = self._now()
        self._emit(name, "minority-write", container, key, forked_version)

    # -- the Venus-style audit sweep -----------------------------------------

    def audit(self) -> list:
        """Cross-check every replica's view of every live object against
        the trusted log; returns the findings this sweep produced."""
        before = len(self.verifier.findings)
        for container, key in self.verifier.live_keys():
            for handle in self._handles.values():
                if handle.status == "partitioned":
                    self._emit(handle.name, "audit-unreachable", container, key)
                    continue
                try:
                    payload = handle.adapter.get(container, key)
                except ReproError:
                    self._observe_finding(
                        self.verifier.check_missing(handle.name, container, key))
                    continue
                self._observe_finding(self.verifier.check_read(
                    handle.attest(container, key, payload)))
        self._emit("-", "audit", "-", "-",
                   detail=f"{len(self.verifier.findings) - before} findings")
        return self.verifier.findings[before:]

    def stats(self) -> dict[str, int]:
        return {
            "replicas": len(self._handles),
            "quorum": self.quorum,
            "objects": len(self),
            "puts": self.put_count,
            "gets": self.get_count,
            "hedged_reads": self.hedged_reads,
            "read_repairs": self.read_repairs,
            "rejected_writes": self.rejected_writes,
            "events": len(self.events),
            "findings": len(self.verifier.findings),
        }


def attach_replication(deployment, store: ReplicatedStore) -> ReplicatedStore:
    """Swap a deployment's provider onto *store* and expose it for
    forensics (the ``replica`` timeline source and the auditor's
    replication check read ``deployment.replication``)."""
    store.clock = lambda: deployment.sim.now
    if getattr(deployment.obs, "enabled", False):
        store.metrics = deployment.obs.metrics
        store.profiler = deployment.obs.profiler
    deployment.provider.store = store
    deployment.replication = store
    return store
