"""Venus-style fork-consistency verification for replicated storage.

"Don't Trust the Cloud, Verify" (arXiv:1502.04496) showed that a
client-side verifier over commodity object stores can detect a
misbehaving provider by checking *signed version vectors and digests*
against a trusted log of its own writes.  This module is that checker
for the replicated deployments:

* every replica read comes back with a :class:`ReplicaAttestation` —
  the replica's name, its current version of the object, the SHA-256
  of the bytes it served, its version vector for the key, and an HMAC
  over all of it under a per-replica key;
* the :class:`ForkConsistencyVerifier` keeps the coordinator's trusted
  log (version history, digests, which replica acknowledged what) and
  classifies each attestation:

  - ``replica-bad-attestation`` — the MAC does not verify (forged);
  - ``replica-fork`` — the replica claims a version or vector the
    write quorum never committed (split-brain minority history);
  - ``replica-divergence`` — right version, wrong bytes (silent
    in-storage change with the platform MD5 fixed up);
  - ``replica-stale-read`` — the replica acknowledged a newer version
    and then served an older one (a rollback, hiding the new write);
  - ``replica-lag`` — an old version from a replica that never
    acknowledged the newer write: *info*, masked by the quorum, not an
    integrity violation.

Error-severity findings are the new evidence surface: they convert to
:class:`~repro.obs.forensics.AuditFinding` rows and flow into dispute
dossiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..crypto.hashes import digest
from ..crypto.hmac_ import constant_time_equals, hmac_digest

__all__ = [
    "ReplicaAttestation",
    "TrustedVersion",
    "VerifierFinding",
    "ForkConsistencyVerifier",
    "attestation_payload",
    "sign_attestation",
]


@dataclass(frozen=True)
class ReplicaAttestation:
    """One replica's signed claim about one object it served."""

    replica: str
    container: str
    key: str
    version: int
    digest: str  # SHA-256 hex of the bytes served
    vector: tuple[tuple[str, int], ...]  # replica -> version, sorted
    mac: bytes

    def describe(self) -> str:
        vec = ",".join(f"{r}:{v}" for r, v in self.vector)
        return (f"{self.replica} {self.container}/{self.key} "
                f"v{self.version} {self.digest[:12]}... [{vec}]")


def attestation_payload(replica: str, container: str, key: str,
                        version: int, digest_hex: str,
                        vector: tuple[tuple[str, int], ...]) -> bytes:
    vec = ",".join(f"{r}:{v}" for r, v in vector)
    return "|".join(
        ["replica-attest-v1", replica, container, key,
         str(version), digest_hex, vec]
    ).encode()


def sign_attestation(mac_key: bytes, replica: str, container: str, key: str,
                     data: bytes, version: int,
                     vector: tuple[tuple[str, int], ...]) -> ReplicaAttestation:
    """Build the attestation a replica returns alongside *data*."""
    digest_hex = digest("sha256", data).hex()
    payload = attestation_payload(replica, container, key, version,
                                  digest_hex, vector)
    return ReplicaAttestation(
        replica=replica,
        container=container,
        key=key,
        version=version,
        digest=digest_hex,
        vector=vector,
        mac=hmac_digest(mac_key, payload),
    )


@dataclass(frozen=True)
class TrustedVersion:
    """The coordinator's record of one committed write."""

    version: int
    digest: str  # SHA-256 hex
    md5: str  # platform MD5 metadata, hex
    size: int
    created_at: float


@dataclass(frozen=True)
class VerifierFinding:
    """One verifier verdict about one replica's view of one object."""

    category: str
    replica: str
    container: str
    key: str
    detail: str
    severity: str = "error"  # "error" | "info"

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def describe(self) -> str:
        return (f"[{self.severity}] {self.category}: {self.replica} "
                f"{self.container}/{self.key} — {self.detail}")


@dataclass
class _KeyLog:
    """Per-object trusted history: digests by version, acks by replica."""

    history: dict[int, str] = field(default_factory=dict)
    latest: TrustedVersion | None = None
    acked: dict[str, int] = field(default_factory=dict)
    deleted: bool = False


class ForkConsistencyVerifier:
    """The client-side trusted log + attestation checker."""

    def __init__(self, replica_keys: Mapping[str, bytes] | None = None) -> None:
        self._keys: dict[str, bytes] = dict(replica_keys or {})
        self._log: dict[tuple[str, str], _KeyLog] = {}
        self.findings: list[VerifierFinding] = []

    # -- trusted-log maintenance (coordinator side) -------------------------

    def register_replica(self, name: str, mac_key: bytes) -> None:
        self._keys[name] = mac_key

    def commit(self, container: str, key: str, version: int, digest_hex: str,
               md5_hex: str, size: int, created_at: float,
               acked: Iterable[str]) -> None:
        """Record one quorum-committed write in the trusted log."""
        log = self._log.setdefault((container, key), _KeyLog())
        log.history[version] = digest_hex
        log.latest = TrustedVersion(version, digest_hex, md5_hex, size, created_at)
        for replica in acked:
            log.acked[replica] = max(log.acked.get(replica, 0), version)
        log.deleted = False

    def mark_acked(self, container: str, key: str, replica: str,
                   version: int) -> None:
        """Record that *replica* now holds *version* (read-repair, join)."""
        log = self._log.get((container, key))
        if log is not None:
            log.acked[replica] = max(log.acked.get(replica, 0), version)

    def rewrite_history(self, container: str, key: str, digest_hex: str,
                        md5_hex: str, size: int) -> None:
        """The coordinator (i.e. the provider) rewrites its own books.

        This is the §2.4 cover-up translated to replication: the party
        running the store tampers with the data *and* fixes the trusted
        log, so replica-level checks stay green.  The TPNR evidence
        chain — held by the client, not the store — is what still
        catches it.
        """
        log = self._log.get((container, key))
        if log is None or log.latest is None:
            return
        log.history[log.latest.version] = digest_hex
        log.latest = TrustedVersion(
            log.latest.version, digest_hex, md5_hex, size,
            log.latest.created_at,
        )

    def delete(self, container: str, key: str) -> None:
        log = self._log.get((container, key))
        if log is not None:
            log.deleted = True

    # -- queries ------------------------------------------------------------

    def latest(self, container: str, key: str) -> TrustedVersion | None:
        log = self._log.get((container, key))
        if log is None or log.deleted:
            return None
        return log.latest

    def acked_version(self, container: str, key: str, replica: str) -> int:
        log = self._log.get((container, key))
        return log.acked.get(replica, 0) if log is not None else 0

    def live_keys(self) -> list[tuple[str, str]]:
        return sorted(k for k, log in self._log.items()
                      if not log.deleted and log.latest is not None)

    def error_findings(self) -> list[VerifierFinding]:
        return [f for f in self.findings if f.is_error]

    def findings_for(self, key: str | None = None,
                     replica: str | None = None) -> list[VerifierFinding]:
        return [
            f for f in self.findings
            if (key is None or f.key == key)
            and (replica is None or f.replica == replica)
        ]

    # -- the checker --------------------------------------------------------

    def _record(self, finding: VerifierFinding) -> VerifierFinding:
        self.findings.append(finding)
        return finding

    def check_read(self, att: ReplicaAttestation) -> VerifierFinding | None:
        """Classify one attestation against the trusted log.

        Returns ``None`` for a clean, up-to-date read; otherwise records
        and returns the finding (``replica-lag`` is info severity — the
        quorum masks it — everything else is an error).
        """
        log = self._log.get((att.container, att.key))
        if log is None or log.latest is None:
            return self._record(VerifierFinding(
                "replica-fork", att.replica, att.container, att.key,
                f"attests v{att.version} of an object the quorum never wrote"))
        mac_key = self._keys.get(att.replica)
        payload = attestation_payload(att.replica, att.container, att.key,
                                      att.version, att.digest, att.vector)
        if mac_key is None or not constant_time_equals(
                hmac_digest(mac_key, payload), att.mac):
            return self._record(VerifierFinding(
                "replica-bad-attestation", att.replica, att.container, att.key,
                "attestation MAC does not verify under the replica's key"))
        latest = log.latest
        if att.version > latest.version:
            return self._record(VerifierFinding(
                "replica-fork", att.replica, att.container, att.key,
                f"attests v{att.version} but the quorum committed only "
                f"v{latest.version} (minority history)"))
        if att.version == latest.version:
            if att.digest != latest.digest:
                return self._record(VerifierFinding(
                    "replica-divergence", att.replica, att.container, att.key,
                    f"v{att.version} digest {att.digest[:12]}... != trusted "
                    f"{latest.digest[:12]}..."))
            for replica, version in att.vector:
                if version > log.acked.get(replica, 0):
                    return self._record(VerifierFinding(
                        "replica-fork", att.replica, att.container, att.key,
                        f"vector claims {replica} at v{version}, never "
                        f"acknowledged to the quorum"))
            return None
        # att.version < latest.version: old view — rollback, divergence
        # on the historical version, or plain lag.
        trusted_old = log.history.get(att.version)
        if trusted_old is not None and att.digest != trusted_old:
            return self._record(VerifierFinding(
                "replica-divergence", att.replica, att.container, att.key,
                f"v{att.version} digest {att.digest[:12]}... != trusted "
                f"history {trusted_old[:12]}..."))
        if log.acked.get(att.replica, 0) > att.version:
            return self._record(VerifierFinding(
                "replica-stale-read", att.replica, att.container, att.key,
                f"served v{att.version} after acknowledging "
                f"v{log.acked[att.replica]} (rollback)"))
        return self._record(VerifierFinding(
            "replica-lag", att.replica, att.container, att.key,
            f"behind at v{att.version} (quorum at v{latest.version}), "
            "never acknowledged the newer write", severity="info"))

    def check_missing(self, replica: str, container: str,
                      key: str) -> VerifierFinding:
        """A replica cannot produce an object the trusted log holds."""
        log = self._log.get((container, key))
        if log is not None and log.acked.get(replica, 0) > 0:
            return self._record(VerifierFinding(
                "replica-divergence", replica, container, key,
                f"object vanished after acknowledging v{log.acked[replica]}"))
        return self._record(VerifierFinding(
            "replica-lag", replica, container, key,
            "object not yet replicated (no acknowledged write)",
            severity="info"))
