"""Live cross-provider migration with evidence continuity (RP2).

:func:`migrate_backend` moves a :class:`~repro.replication.store.ReplicatedStore`
off one replica (say ``s3like``) and onto a new one (say
``azurelike``) *while reads keep flowing*:

1. the destination joins the replica set (empty);
2. every live object is read through the store's own verified read
   path — hedged, fork-checked — and copied onto the destination via
   its authenticated native path, with the per-object digest recorded;
3. the destination is marked caught-up in the trusted log and the
   source replica is retired.

Evidence continuity is the point: the caller passes the NRO/NRR
bundle (:func:`repro.core.archive.export_store`) exported *before*
the move, the record binds its SHA-256 into the migration chain
digest, and :func:`repro.core.archive.verify_bundle` re-verifies every
item against the key registry *after* the move.  A dispute raised
post-migration is then argued from exactly the evidence minted
pre-migration — the Arbitrator never notices the provider switched
platforms, which is what "the NRO/NRR chain survives the move" means.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import ReproError
from .store import ReplicaAdapter, ReplicatedStore, ReplicationError

__all__ = ["MigrationRecord", "migrate_backend", "verify_migration_chain"]


@dataclass(frozen=True)
class MigrationRecord:
    """The signed-off manifest of one completed migration."""

    source: str
    destination: str
    started_at: float
    completed_at: float
    objects: tuple[tuple[str, str, int, str], ...]  # (container, key, version, digest)
    evidence_bundle_sha256: str  # "" when no bundle travelled
    evidence_verified: int  # items re-verified at the destination
    chain: str  # rolling SHA-256 over object lines + bundle hash

    @property
    def object_count(self) -> int:
        return len(self.objects)

    def manifest(self) -> str:
        """Canonical JSON form (sorted keys) for archival."""
        return json.dumps(
            {
                "format": "repro-migration-record-v1",
                "source": self.source,
                "destination": self.destination,
                "started_at": self.started_at,
                "completed_at": self.completed_at,
                "objects": [list(entry) for entry in self.objects],
                "evidence_bundle_sha256": self.evidence_bundle_sha256,
                "evidence_verified": self.evidence_verified,
                "chain": self.chain,
            },
            sort_keys=True,
            indent=2,
        )


def _chain_digest(objects: tuple[tuple[str, str, int, str], ...],
                  bundle_sha256: str) -> str:
    lines = [f"{c}|{k}|{v}|{d}" for c, k, v, d in objects]
    lines.append(f"evidence|{bundle_sha256}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def verify_migration_chain(record: MigrationRecord) -> bool:
    """Recompute the chain digest from the record's own entries."""
    return record.chain == _chain_digest(
        record.objects, record.evidence_bundle_sha256)


def migrate_backend(
    store: ReplicatedStore,
    source: str,
    destination: ReplicaAdapter,
    evidence_blob: str | None = None,
    registry=None,
    at_time: float = 0.0,
) -> MigrationRecord:
    """Migrate *store* off replica *source* and onto *destination*.

    Reads stay live throughout: each object is fetched through the
    store's verified read path (which may be served by any surviving
    replica) and written to the destination before the source retires.
    Raises :class:`ReplicationError` if a copied object's digest does
    not match the trusted log — a migration must never launder
    divergence into the new backend.
    """
    store.handle(source)  # existence check before any copying
    joined = store.add_replica(destination)
    copied: list[tuple[str, str, int, str]] = []
    for container, key in store.verifier.live_keys():
        obj = store.get(container, key)  # live, verified, hedged
        trusted = store.verifier.latest(container, key)
        copy_digest = hashlib.sha256(obj.data).hexdigest()
        if trusted is None or copy_digest != trusted.digest:
            raise ReplicationError(
                f"migration copy of {container}/{key} diverges from the "
                f"trusted log ({copy_digest[:12]}... != "
                f"{(trusted.digest if trusted else '?')[:12]}...)")
        joined.adapter.put(container, key, obj.data, at_time=at_time)
        joined.versions[(container, key)] = trusted.version
        joined.vectors.setdefault((container, key), {})[joined.name] = trusted.version
        store.verifier.mark_acked(container, key, joined.name, trusted.version)
        store._emit(joined.name, "migrate-copy", container, key,
                    trusted.version, detail=f"from={source}")
        copied.append((container, key, trusted.version, trusted.digest))
    store.remove_replica(source)

    bundle_sha256 = ""
    verified_items = 0
    if evidence_blob is not None:
        bundle_sha256 = hashlib.sha256(evidence_blob.encode()).hexdigest()
        if registry is not None:
            from ..core.archive import verify_bundle

            try:
                verified_items = len(verify_bundle(evidence_blob, registry))
            except ReproError as exc:
                raise ReplicationError(
                    f"evidence bundle failed re-verification at the "
                    f"destination: {exc}") from exc

    objects = tuple(copied)
    return MigrationRecord(
        source=source,
        destination=destination.name,
        started_at=at_time,
        completed_at=at_time,
        objects=objects,
        evidence_bundle_sha256=bundle_sha256,
        evidence_verified=verified_items,
        chain=_chain_digest(objects, bundle_sha256),
    )
