"""repro — reproduction of *"Analysis of Integrity Vulnerabilities and a
Non-repudiation Protocol for Cloud Data Storage Platforms"* (Feng,
Chen, Ku, Liu — ICPP/SCC 2010).

Subpackages
-----------

``repro.crypto``
    From-scratch crypto substrate: MD5/SHA-256, HMAC, ChaCha20+AEAD,
    RSA, DH, RSA-KEM hybrid encryption, DSA, Shamir secret sharing, a
    deterministic DRBG, and a miniature PKI.
``repro.net``
    Deterministic discrete-event network simulation with adversary
    interception hooks and a miniature TLS.
``repro.storage``
    The three commercial platform models of paper §2 (Azure-like,
    AWS-like, GAE/SDC-like), device shipping, and tampering behaviours.
``repro.bridging``
    The four §3 bridging schemes (TAC x SKS) plus the status-quo
    control.
``repro.core``
    The paper's contribution: the TPNR protocol (Normal / Abort /
    Resolve), evidence (NRO/NRR), TTP, and the dispute Arbitrator.
``repro.baselines``
    The traditional four-step NR protocol (Zhou-Gollmann style) and the
    SSL-only status quo.
``repro.attacks``
    The §5 attack classes and the gauntlet harness.
``repro.analysis``
    Experiment runners for every table/figure and report rendering.
``repro.scenarios``
    The scenario control plane: declarative specs, PT-002 seed
    derivation, content-addressed run keys, and the fail-closed
    benchmark promotion gate.

Quickstart
----------

>>> from repro import make_deployment, run_session, TxStatus
>>> dep = make_deployment(seed=b"quickstart")
>>> outcome = run_session(dep, b"the company financial data")
>>> outcome.upload_status is TxStatus.COMPLETED
True
>>> outcome.download.verified
True
"""

from . import analysis, attacks, baselines, bridging, core, crypto, errors, net, obs, scenarios, storage
from .core import (
    Arbitrator,
    Deployment,
    ProviderBehavior,
    Ruling,
    SessionOutcome,
    TpnrClient,
    TpnrPolicy,
    TpnrProvider,
    TrustedThirdParty,
    TxStatus,
    Verdict,
    dispute_missing_receipt,
    dispute_tampering,
    make_deployment,
    run_abort,
    run_download,
    run_session,
    run_shared_download,
    run_upload,
)
from .errors import ReproError

__version__ = "1.5.0"

__all__ = [
    "analysis",
    "attacks",
    "baselines",
    "bridging",
    "core",
    "crypto",
    "errors",
    "net",
    "obs",
    "scenarios",
    "storage",
    "Arbitrator",
    "Deployment",
    "ProviderBehavior",
    "Ruling",
    "SessionOutcome",
    "TpnrClient",
    "TpnrPolicy",
    "TpnrProvider",
    "TrustedThirdParty",
    "TxStatus",
    "Verdict",
    "dispute_missing_receipt",
    "dispute_tampering",
    "make_deployment",
    "run_abort",
    "run_download",
    "run_session",
    "run_shared_download",
    "run_upload",
    "ReproError",
    "__version__",
]
