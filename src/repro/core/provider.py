"""Bob — the TPNR cloud-storage-provider role (paper §4).

An honest Bob verifies each upload's hash and NRO, stores the data,
and answers with an NRR; serves downloads with a fresh NRR over exactly
the bytes he returns; answers Abort requests; and replies to TTP
Resolve queries.

:class:`ProviderBehavior` configures the *dishonest* variants the
paper's scenarios need: the silent provider that pockets the NRO and
never sends the NRR (the fairness attack the Resolve model exists
for), the provider that tampers with stored data (Fig. 5 / the
Eve-tampers dispute), and the provider that stonewalls the TTP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import Identity, KeyRegistry
from ..net.network import Envelope
from ..storage.auditlog import AuditLog
from ..storage.blobstore import BlobStore
from ..storage.tamper import TamperMode, apply_tamper
from .messages import Flag, ResolveAction, TpnrMessage
from .party import TpnrParty
from .policy import DEFAULT_POLICY, TpnrPolicy
from .transaction import TransactionRecord, TxStatus

__all__ = ["ProviderBehavior", "TpnrProvider"]

_CONTAINER = "tpnr-data"


@dataclass(frozen=True)
class ProviderBehavior:
    """Dishonesty knobs; the default is a fully honest provider."""

    silent_on_upload: bool = False  # keep NRO, never send NRR (unfairness)
    silent_on_download: bool = False
    silent_to_ttp: bool = False  # ignore Resolve queries
    reject_abort: bool = False
    tamper_mode: TamperMode = TamperMode.NONE  # applied after upload completes
    resolve_action: ResolveAction = ResolveAction.CONTINUE

    @property
    def honest(self) -> bool:
        return (
            not self.silent_on_upload
            and not self.silent_on_download
            and not self.silent_to_ttp
            and not self.reject_abort
            and self.tamper_mode is TamperMode.NONE
        )


HONEST = ProviderBehavior()


class TpnrProvider(TpnrParty):
    """The cloud storage provider role ("Eve"/"Bob" in the paper)."""

    def __init__(
        self,
        identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        ttp_name: str = "ttp",
        policy: TpnrPolicy = DEFAULT_POLICY,
        behavior: ProviderBehavior = HONEST,
        audit_log: "AuditLog | None" = None,
    ) -> None:
        super().__init__(identity, registry, rng, ttp_name, policy)
        self.behavior = behavior
        self.store = BlobStore(f"{identity.name}/store")
        self.withheld_receipts: list[str] = []  # txns where NRR was withheld
        self.grants: dict[str, set[str]] = {}  # txn -> authorized downloaders
        self.duplicate_requests = 0  # retransmitted uploads answered idempotently
        self._download_acked: set[tuple[str, str]] = set()  # (txn, requester)
        # Optional hash-chained audit trail.  Note what it can and
        # cannot witness: the *service path* (uploads stored, bytes
        # served) is logged; raw in-storage tampering bypasses the
        # service and is only caught when the tampered bytes are next
        # served — which is exactly the forensic narrowing the audit
        # log exists for.
        self.audit_log = audit_log

    def _audit(self, operation: str, key: str, data: bytes) -> None:
        if self.audit_log is not None:
            self.audit_log.append(operation, _CONTAINER, key, data, at_time=self.now)

    def stats(self) -> dict[str, int]:
        """Deterministic service-side tallies for engine/experiment reports."""
        return {
            "transactions": len(self.transactions),
            "stored_blobs": sum(
                1 for txn in self.transactions if self.store.exists(_CONTAINER, txn)
            ),
            "duplicate_requests": self.duplicate_requests,
            "withheld_receipts": len(self.withheld_receipts),
            "rejected_messages": len(self.rejected_messages),
            "retransmits_sent": self.retransmits_sent,
            "evidence_held": len(self.evidence_store),
        }

    def _wipe_role_state(self) -> None:
        # withheld_receipts / duplicate_requests survive: observability.
        # The audit log also survives — it models the storage layer's
        # own persistent trail, not this process's memory.
        self.store = BlobStore(f"{self.name}/store")
        self.grants = {}
        self._download_acked = set()

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if self.corrupted_inbound(envelope):
            return
        message = envelope.payload
        if not isinstance(message, TpnrMessage):
            self.reject(envelope.kind, "not a TPNR message")
            return
        try:
            opened = self.validate_and_open(message)
        except Exception as exc:
            self.reject(envelope.kind, f"{type(exc).__name__}: {exc}")
            return
        flag = message.header.flag
        if flag is Flag.UPLOAD:
            self._handle_upload(message, opened)
        elif flag is Flag.DOWNLOAD_REQUEST:
            self._handle_download_request(message, opened)
        elif flag is Flag.DOWNLOAD_ACK:
            self.archive_evidence(opened)
            self._download_acked.add(
                (message.header.transaction_id, message.header.sender_id)
            )
            self.cancel_retransmit(
                ("serve", message.header.transaction_id, message.header.sender_id)
            )
            self.span_event(message.header.transaction_id, "download.acked",
                            requester=message.header.sender_id)
        elif flag is Flag.GRANT:
            self._handle_grant(message, opened)
        elif flag is Flag.ABORT:
            self._handle_abort(message, opened)
        elif flag is Flag.RESOLVE_QUERY:
            self._handle_resolve_query(message, opened)
        else:
            self.reject(envelope.kind, f"unexpected flag {flag.value}")

    # -- upload ---------------------------------------------------------------

    def _handle_upload(self, message: TpnrMessage, opened) -> None:
        header = message.header
        data = message.data or b""
        if digest("sha256", data) != header.data_hash:
            # "Service Provider verifies the data with MD5; if it is
            # valid..." — here with SHA-256; invalid uploads are refused.
            self.reject("tpnr.upload", "payload hash mismatch")
            return
        transaction_id = header.transaction_id
        existing = self.transactions.get(transaction_id)
        if existing is None:
            self.span_begin(
                ("store", transaction_id), transaction_id, "provider.upload",
                data_size=len(data),
            )
        if existing is not None:
            if existing.data_hash != header.data_hash:
                self.reject("tpnr.upload", "transaction ID reuse with different data")
                return
            # A retransmission of an upload we already hold: answer
            # idempotently.  Never re-store (that would overwrite the
            # at-rest blob — including any post-upload state the client
            # must be able to dispute) and never re-issue the receipt's
            # transaction state; just repeat the NRR so the sender can
            # stop retransmitting.
            self.duplicate_requests += 1
            obs = self.obs
            if obs.enabled:
                obs.metrics.counter(
                    "party.duplicates_answered", party=self.name
                ).inc()
            self.span_event(transaction_id, "upload.duplicate")
            self.archive_evidence(opened)  # a fresh NRO is still evidence
            if existing.status is TxStatus.ABORTED or self.behavior.silent_on_upload:
                return
            self._send_upload_receipt(transaction_id)
            return
        self.archive_evidence(opened)  # Alice's NRO
        self.store.put(_CONTAINER, transaction_id, data, at_time=self.now)
        self._audit("put", transaction_id, data)
        record = TransactionRecord(
            transaction_id=transaction_id,
            role="provider",
            peer=header.sender_id,
            data_hash=header.data_hash,
            data_size=len(data),
            started_at=self.now,
        )
        self.transactions[transaction_id] = record
        if self.behavior.tamper_mode is not TamperMode.NONE:
            apply_tamper(self.store, _CONTAINER, transaction_id,
                         self.behavior.tamper_mode, self.rng)
        # Journal what the disk actually holds (post-tamper: the WAL
        # witnesses the storage layer, it does not launder it honest)
        # before the receipt can be issued.
        self.journal_txn(record)
        if self.journal is not None:
            self.journal.log(
                "provider.blob",
                txn=transaction_id,
                container=_CONTAINER,
                key=transaction_id,
                data=self.store.get(_CONTAINER, transaction_id).data,
            )
        if self.behavior.silent_on_upload:
            # Bob pockets the NRO and never answers — the unfair move
            # the Resolve sub-protocol exists to punish.
            self.withheld_receipts.append(transaction_id)
            self.span_end(("store", transaction_id), status="receipt-withheld")
            return
        self._send_upload_receipt(transaction_id)
        self.finish_txn(record, TxStatus.COMPLETED)
        self.span_end(("store", transaction_id), status="ok")

    def _send_upload_receipt(self, transaction_id: str) -> None:
        record = self.transactions[transaction_id]
        receipt_header = self.make_header(
            Flag.UPLOAD_RECEIPT, record.peer, transaction_id, record.data_hash
        )
        self.send(record.peer, "tpnr.upload.receipt", self.make_message(receipt_header))

    # -- download ----------------------------------------------------------------

    def _handle_grant(self, message: TpnrMessage, opened) -> None:
        """Record a signed access grant from the transaction's owner."""
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        if record is None or record.peer != message.header.sender_id:
            self.reject("tpnr.grant", "grant not from the transaction owner")
            return
        grantee = message.annotation("grantee")
        if not grantee:
            self.reject("tpnr.grant", "grant missing grantee")
            return
        self.archive_evidence(opened)  # owner-signed grant (non-repudiable)
        self.grants.setdefault(transaction_id, set()).add(grantee)
        if self.journal is not None:
            self.journal.log("provider.grant", txn=transaction_id, grantee=grantee)
        ack_header = self.make_header(
            Flag.GRANT_ACK, record.peer, transaction_id, record.data_hash
        )
        self.send(record.peer, "tpnr.grant.ack",
                  self.make_message(ack_header, annotations=(("grantee", grantee),)))

    def _handle_download_request(self, message: TpnrMessage, opened) -> None:
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        if record is None:
            self.reject("tpnr.download.request", f"unknown transaction {transaction_id}")
            return
        requester = message.header.sender_id
        if requester != record.peer and requester not in self.grants.get(transaction_id, ()):
            self.reject("tpnr.download.request",
                        f"{requester} is not authorized for {transaction_id}")
            return
        self.archive_evidence(opened)  # the requester's download NRO
        if self.behavior.silent_on_download:
            self.withheld_receipts.append(transaction_id)
            return
        requester = message.header.sender_id
        # The serve span covers building + sending the response; the
        # requester's ack lands later as a root-span event (the ack may
        # never come, and a span must not stay open on a maybe).
        serve_span = self.span_begin(
            ("serve", transaction_id, requester), transaction_id,
            "provider.serve", requester=requester,
        )
        self._download_acked.discard((transaction_id, requester))
        self._serve_download(transaction_id, requester)
        if serve_span is not None:
            self.span_end(("serve", transaction_id, requester), status="ok")
        self.arm_retransmit(
            ("serve", transaction_id, requester),
            requester,
            "tpnr.download.response",
            lambda: self._build_download_response(transaction_id, requester),
            lambda: (transaction_id, requester) not in self._download_acked,
        )

    def _build_download_response(self, transaction_id: str, requester: str) -> TpnrMessage:
        obj = self.store.get(_CONTAINER, transaction_id)
        served = obj.data
        self._audit("get", transaction_id, served)
        # Bob signs the hash of *exactly what he serves* — an honest
        # signature over possibly-tampered bytes, which is precisely
        # what lets the Arbitrator attribute fault later.
        response_header = self.make_header(
            Flag.DOWNLOAD_RESPONSE,
            requester,
            transaction_id,
            digest("sha256", served),
        )
        return self.make_message(response_header, data=served)

    def _serve_download(self, transaction_id: str, requester: str) -> None:
        self.send(
            requester,
            "tpnr.download.response",
            self._build_download_response(transaction_id, requester),
        )

    # -- abort (§4.2) ---------------------------------------------------------------

    def _handle_abort(self, message: TpnrMessage, opened) -> None:
        transaction_id = message.header.transaction_id
        client = message.header.sender_id
        record = self.transactions.get(transaction_id)
        if record is None or record.data_hash != message.header.data_hash:
            # Inconsistent request: ask Alice to double-check the
            # parameters, regenerate, and resubmit (§4.2).
            error_header = self.make_header(
                Flag.ABORT_ERROR, client, transaction_id, message.header.data_hash
            )
            self.send(client, "tpnr.abort.reply", self.make_message(error_header))
            return
        self.archive_evidence(opened)  # the abort NRO
        decision_flag = Flag.ABORT_REJECT if self.behavior.reject_abort else Flag.ABORT_ACCEPT
        if decision_flag is Flag.ABORT_ACCEPT and record.status is TxStatus.PENDING:
            # Log-before-act: the abort must be durable before Alice
            # can hold an ABORT_ACCEPT we might later deny.
            self.finish_txn(record, TxStatus.ABORTED, "abort accepted")
        elif decision_flag is Flag.ABORT_ACCEPT and record.status is TxStatus.COMPLETED:
            # Upload already finished on Bob's side; record the abort
            # agreement without rewriting history.
            record.detail = "abort accepted post-completion"
        reply_header = self.make_header(decision_flag, client, transaction_id, record.data_hash)
        self.send(client, "tpnr.abort.reply", self.make_message(reply_header))

    # -- resolve (§4.3) -----------------------------------------------------------------

    def _handle_resolve_query(self, message: TpnrMessage, opened) -> None:
        """The TTP asks on Alice's behalf; answer through the TTP."""
        transaction_id = message.header.transaction_id
        self.archive_evidence(opened)  # TTP's signed query (with timestamp)
        if self.behavior.silent_to_ttp:
            return
        client = message.annotation("requester")
        record = self.transactions.get(transaction_id)
        if record is None:
            action = ResolveAction.RESTART  # never saw the upload: restart session
            data_hash = message.header.data_hash
        elif client != record.peer and client not in self.grants.get(transaction_id, ()):
            # A stranger must not be able to extract an NRR (or even
            # the data hash) for someone else's transaction by filing
            # a resolve request with the TTP.
            action = ResolveAction.REFUSE
            data_hash = message.header.data_hash
        else:
            action = self.behavior.resolve_action
            data_hash = record.data_hash
        # The NRR must be readable by *Alice*, so it is encrypted to
        # her even though the message travels via the TTP.
        reply_header = self.make_header(
            Flag.RESOLVE_REPLY, self.ttp_name, transaction_id, data_hash
        )
        reply = self.make_message(
            reply_header,
            annotations=(("action", action.value), ("requester", client)),
            evidence_recipient=client if client else None,
        )
        self.send(self.ttp_name, "tpnr.resolve.reply", reply)
        if record is not None and record.status is TxStatus.PENDING:
            self.finish_txn(record, TxStatus.RESOLVED, "resolved via TTP")
