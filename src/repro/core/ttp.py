"""The Trusted Third Party — in-line only in Resolve mode (paper §4.3).

Invoked when one party cannot obtain the peer's evidence directly.  On
a valid Resolve request the TTP sends the counterparty a time-stamped
Resolve query and waits; the counterparty's reply (whose evidence is
encrypted to the *requester*, not the TTP) is relayed back embedded in
a RESOLVE_RESULT.  If the counterparty stays silent past the TTP's
time-out, the TTP issues a RESOLVE_FAILED statement — itself signed
evidence that "this session is failed and Bob did not respond".

Two design rules from the paper are enforced mechanically:

* the TTP never stores or forwards bulk data ("normally the size of
  the data set is very large, which is not feasible to be stored
  and/or forwarded by the TTP") — requests with payloads above
  ``policy.ttp_max_payload`` are rejected;
* the TTP acts only when asked: Normal and Abort modes never touch it
  (asserted by the Fig. 6 trace tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity, KeyRegistry
from ..net.events import ScheduledEvent
from ..net.network import Envelope
from ..errors import ReplayError
from .messages import Flag, TpnrMessage
from .party import TpnrParty
from .policy import DEFAULT_POLICY, TpnrPolicy

__all__ = ["TrustedThirdParty"]


@dataclass
class _PendingResolve:
    transaction_id: str
    requester: str
    counterparty: str
    report: str
    data_hash: bytes
    timeout_event: ScheduledEvent


class TrustedThirdParty(TpnrParty):
    """The reliable arbiter-adjacent server of Resolve mode."""

    is_ttp = True  # role marker: analysis derives TTP attribution from this

    def __init__(
        self,
        identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        policy: TpnrPolicy = DEFAULT_POLICY,
    ) -> None:
        super().__init__(identity, registry, rng, ttp_name=identity.name, policy=policy)
        self._pending: dict[str, _PendingResolve] = {}
        self.resolves_handled = 0
        self.failures_declared = 0
        self.bulk_rejections = 0
        self.duplicate_requests = 0  # retransmitted requests for in-flight resolves

    def _wipe_role_state(self) -> None:
        # The counters survive (observability); the pending-resolve
        # table dies with the process and is re-opened from the WAL.
        self._pending = {}

    def stats(self) -> dict[str, int]:
        """Deterministic tallies; all-zero on a clean Normal-mode run —
        the off-line-TTP property the throughput experiment asserts."""
        return {
            "resolves_handled": self.resolves_handled,
            "failures_declared": self.failures_declared,
            "bulk_rejections": self.bulk_rejections,
            "duplicate_requests": self.duplicate_requests,
            "pending_resolves": len(self._pending),
            "rejected_messages": len(self.rejected_messages),
        }

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if self.corrupted_inbound(envelope):
            return
        message = envelope.payload
        if not isinstance(message, TpnrMessage):
            self.reject(envelope.kind, "not a TPNR message")
            return
        if message.data is not None and len(message.data) > self.policy.ttp_max_payload:
            self.bulk_rejections += 1
            self.reject(envelope.kind, "bulk data not accepted by the TTP")
            return
        flag = message.header.flag
        if flag is Flag.RESOLVE_REQUEST:
            self._handle_resolve_request(message)
        elif flag is Flag.RESOLVE_REPLY:
            self._handle_resolve_reply(message)
        else:
            self.reject(envelope.kind, f"unexpected flag {flag.value}")

    # -- requester side --------------------------------------------------------

    def _handle_resolve_request(self, message: TpnrMessage) -> None:
        try:
            opened = self.validate_and_open(message)
        except Exception as exc:
            self.reject("tpnr.resolve.request", f"{type(exc).__name__}: {exc}")
            return
        header = message.header
        counterparty = message.annotation("counterparty")
        if not counterparty:
            self.reject("tpnr.resolve.request", "missing counterparty annotation")
            return
        transaction_id = header.transaction_id
        pending = self._pending.get(transaction_id)
        if pending is not None and pending.requester == header.sender_id:
            # A retransmitted resolve request while the counterparty
            # query is already in flight: absorb it.  Starting a second
            # query would double the TTP's workload and risk issuing
            # two verdicts for one session.
            self.duplicate_requests += 1
            self.archive_evidence(opened)
            return
        self.archive_evidence(opened)  # requester's NRO + anomaly report
        self.resolves_handled += 1
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("ttp.resolves_handled").inc()
        self._open_resolve(
            transaction_id,
            requester=header.sender_id,
            counterparty=counterparty,
            report=message.annotation("report"),
            data_hash=header.data_hash,
        )

    def _open_resolve(
        self,
        transaction_id: str,
        requester: str,
        counterparty: str,
        report: str,
        data_hash: bytes,
    ) -> None:
        """Open (or re-open, after a crash) one pending resolve: journal
        it, query the counterparty, arm the retransmit loop + timeout."""
        self.span_begin(
            ("resolve", transaction_id), transaction_id, "ttp.resolve",
            requester=requester, counterparty=counterparty,
        )
        if self.journal is not None:
            self.journal.log(
                "ttp.pending",
                txn=transaction_id,
                requester=requester,
                counterparty=counterparty,
                report=report,
                data_hash=data_hash,
            )

        def rebuild() -> TpnrMessage:
            # Time-stamped query to the counterparty (§4.3) — fresh
            # header and timestamp on every (re)transmission.
            query_header = self.make_header(
                Flag.RESOLVE_QUERY, counterparty, transaction_id, data_hash
            )
            return self.make_message(
                query_header,
                annotations=(
                    ("requester", requester),
                    ("timestamp", f"{self.now:.6f}"),
                    ("report", report),
                ),
            )

        timeout = self.set_timeout(
            self.policy.ttp_response_timeout,
            lambda: self._on_counterparty_timeout(transaction_id),
        )
        self._pending[transaction_id] = _PendingResolve(
            transaction_id=transaction_id,
            requester=requester,
            counterparty=counterparty,
            report=report,
            data_hash=data_hash,
            timeout_event=timeout,
        )
        self.send(counterparty, "tpnr.resolve.query", rebuild())
        self.arm_retransmit(
            ("query", transaction_id),
            counterparty,
            "tpnr.resolve.query",
            rebuild,
            lambda: transaction_id in self._pending,
        )

    def reopen_resolve(
        self,
        transaction_id: str,
        requester: str,
        counterparty: str,
        report: str,
        data_hash: bytes,
    ) -> None:
        """Crash recovery found this resolve pending in the journal:
        pick it up again with a fresh query and a fresh timeout."""
        if transaction_id in self._pending:
            return
        self._open_resolve(
            transaction_id,
            requester=requester,
            counterparty=counterparty,
            report=report,
            data_hash=data_hash,
        )

    # -- counterparty side ---------------------------------------------------------

    def _handle_resolve_reply(self, message: TpnrMessage) -> None:
        """Relay the counterparty's reply to the requester.

        The reply's evidence is encrypted to the requester, so the TTP
        runs only the header-level checks (addressing, time limit,
        sequence, nonce) and forwards the evidence opaquely.
        """
        header = message.header
        if header.recipient_id != self.name:
            self.reject("tpnr.resolve.reply", "misaddressed reply")
            return
        if self.policy.enforce_time_limit and self.now > header.time_limit:
            self.reject("tpnr.resolve.reply", "reply past its time limit")
            return
        try:
            self.peer_state(header.sender_id).check_receive(
                header.sequence_number,
                header.nonce,
                enforce_sequence=self.policy.enforce_sequence,
                enforce_nonce=self.policy.enforce_nonce,
            )
        except ReplayError as exc:
            self.reject("tpnr.resolve.reply", str(exc))
            return
        pending = self._pending.pop(header.transaction_id, None)
        if pending is None:
            self.reject("tpnr.resolve.reply", f"no pending resolve for {header.transaction_id}")
            return
        pending.timeout_event.cancel()
        self.cancel_retransmit(("query", header.transaction_id))
        self.span_end(("resolve", header.transaction_id), status="relayed")
        if self.journal is not None:
            self.journal.log("ttp.done", txn=header.transaction_id, outcome="relayed")
        result_header = self.make_header(
            Flag.RESOLVE_RESULT, pending.requester, header.transaction_id, header.data_hash
        )
        result = self.make_message(
            result_header,
            annotations=(
                ("action", message.annotation("action")),
                ("counterparty", pending.counterparty),
            ),
        )
        # Embed the counterparty's whole reply so the requester can
        # open the NRR that was encrypted to them.
        result = TpnrMessage(
            header=result.header,
            data=None,
            evidence=result.evidence,
            annotations=result.annotations,
            embedded=(TpnrMessage(header=header, data=None, evidence=message.evidence,
                                  annotations=message.annotations),),
        )
        self.send(pending.requester, "tpnr.resolve.result", result)

    # -- timeout ---------------------------------------------------------------------

    def _on_counterparty_timeout(self, transaction_id: str) -> None:
        pending = self._pending.pop(transaction_id, None)
        if pending is None:
            return
        self.cancel_retransmit(("query", transaction_id))
        self.failures_declared += 1
        self.span_end(("resolve", transaction_id), status="failure-declared")
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("ttp.failures_declared").inc()
        if self.journal is not None:
            self.journal.log("ttp.done", txn=transaction_id, outcome="failure declared")
        failed_header = self.make_header(
            Flag.RESOLVE_FAILED, pending.requester, transaction_id, b"\x00" * 32
        )
        statement = self.make_message(
            failed_header,
            annotations=(
                ("verdict", "session failed: counterparty did not respond"),
                ("counterparty", pending.counterparty),
                ("timestamp", f"{self.now:.6f}"),
            ),
        )
        self.send(pending.requester, "tpnr.resolve.failed", statement)
