"""TPNR policy knobs: timeouts, limits, and ablation switches.

The enforcement booleans exist for the §5 robustness experiments: each
one disables exactly one defence the paper credits with stopping one
attack class, so the attack harness can demonstrate necessity (the
weakened variant falls to its attack, the full protocol does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError

__all__ = ["TpnrPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class TpnrPolicy:
    """Protocol configuration shared by the TPNR roles.

    :param response_timeout: seconds Alice/Bob wait for the peer before
        initiating Resolve (§4.3 "pre-set time-out limit").
    :param message_time_limit: seconds a message stays acceptable after
        sending — the §5.5 "time limit field ... to limit the reception
        time of a message".
    :param ttp_response_timeout: how long the TTP waits for Bob's
        Resolve reply before declaring the session failed.
    :param ttp_max_payload: the TTP never stores/forwards bulk data
        (§4.3); messages through the TTP above this size are rejected.
    :param max_retransmits: how many times an unacknowledged message is
        re-sent (with a fresh sequence number, nonce, and time limit —
        the §4 machinery that makes a retransmission distinguishable
        from a replay) before the sender escalates to Abort/Resolve.
    :param retransmit_initial: delay before the first retransmission.
    :param retransmit_backoff: multiplier applied to the delay after
        each retransmission (capped exponential backoff).
    :param retransmit_cap: upper bound on the inter-retransmit delay.
    :param encrypt_evidence: outer public-key encryption of evidence.
    :param enforce_sequence: reject non-monotonic sequence numbers.
    :param enforce_nonce: reject reused nonces.
    :param enforce_time_limit: reject messages past their deadline.
    :param verify_evidence: verify evidence on receipt (disabling this
        models the status-quo platforms that only authenticate).
    """

    response_timeout: float = 5.0
    message_time_limit: float = 30.0
    ttp_response_timeout: float = 5.0
    ttp_max_payload: int = 64 * 1024
    max_retransmits: int = 3
    retransmit_initial: float = 0.6
    retransmit_backoff: float = 2.0
    retransmit_cap: float = 2.5
    encrypt_evidence: bool = True
    enforce_sequence: bool = True
    enforce_nonce: bool = True
    enforce_time_limit: bool = True
    verify_evidence: bool = True

    def __post_init__(self) -> None:
        if self.response_timeout <= 0 or self.ttp_response_timeout <= 0:
            raise ProtocolError("timeouts must be positive")
        if self.message_time_limit <= 0:
            raise ProtocolError("message time limit must be positive")
        if self.ttp_max_payload < 1024:
            raise ProtocolError("TTP payload cap unreasonably small")
        if self.max_retransmits < 0:
            raise ProtocolError("max_retransmits must be non-negative")
        if self.retransmit_initial <= 0:
            raise ProtocolError("retransmit_initial must be positive")
        if self.retransmit_backoff < 1.0:
            raise ProtocolError("retransmit_backoff must be >= 1")
        if self.retransmit_cap < self.retransmit_initial:
            raise ProtocolError("retransmit_cap must be >= retransmit_initial")

    def weakened(self, **switches: bool) -> "TpnrPolicy":
        """A copy with named defences turned off (attack experiments)."""
        from dataclasses import replace

        return replace(self, **switches)


DEFAULT_POLICY = TpnrPolicy()
