"""Long-term evidence archival.

Disputes can arise long after a transaction — §2.4's blackmail scenario
plays out when Alice "later" downloads.  Evidence must therefore
survive process restarts and travel between parties (Alice mails her
NRR to Bob, both parties mail bundles to the Arbitrator).  This module
serializes :class:`~repro.core.evidence.OpenedEvidence` to a stable
JSON form and back, with integrity guarded by re-verification rather
than trust in the file: a tampered archive simply stops verifying.
"""

from __future__ import annotations

import json

from ..crypto.pki import KeyRegistry
from ..errors import EvidenceError
from .evidence import OpenedEvidence, verify_opened_evidence
from .messages import Flag, Header
from .transaction import EvidenceStore

__all__ = [
    "evidence_to_dict",
    "evidence_from_dict",
    "export_store",
    "import_bundle",
    "verify_bundle",
]

_FORMAT = "repro-evidence-bundle-v1"


def evidence_to_dict(evidence: OpenedEvidence) -> dict:
    """Stable dict form of one piece of evidence."""
    header = evidence.header
    return {
        "flag": header.flag.value,
        "sender_id": header.sender_id,
        "recipient_id": header.recipient_id,
        "ttp_id": header.ttp_id,
        "transaction_id": header.transaction_id,
        "sequence_number": header.sequence_number,
        "nonce": header.nonce.hex(),
        "time_limit": header.time_limit,
        "data_hash": header.data_hash.hex(),
        "signature_over_data_hash": evidence.signature_over_data_hash.hex(),
        "signature_over_header": evidence.signature_over_header.hex(),
        "signer": evidence.signer,
    }


def evidence_from_dict(payload: dict) -> OpenedEvidence:
    """Inverse of :func:`evidence_to_dict`; validates field shapes."""
    try:
        header = Header(
            flag=Flag(payload["flag"]),
            sender_id=payload["sender_id"],
            recipient_id=payload["recipient_id"],
            ttp_id=payload["ttp_id"],
            transaction_id=payload["transaction_id"],
            sequence_number=int(payload["sequence_number"]),
            nonce=bytes.fromhex(payload["nonce"]),
            time_limit=float(payload["time_limit"]),
            data_hash=bytes.fromhex(payload["data_hash"]),
        )
        return OpenedEvidence(
            header=header,
            signature_over_data_hash=bytes.fromhex(payload["signature_over_data_hash"]),
            signature_over_header=bytes.fromhex(payload["signature_over_header"]),
            signer=payload["signer"],
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise EvidenceError(f"malformed archived evidence: {exc}") from exc


def export_store(store: EvidenceStore, transaction_id: str | None = None) -> str:
    """Serialize a party's evidence (optionally one transaction) to JSON."""
    transactions = [transaction_id] if transaction_id else store.transactions()
    items = [
        evidence_to_dict(item)
        for txn in transactions
        for item in store.for_transaction(txn)
    ]
    return json.dumps({"format": _FORMAT, "owner": store.owner, "evidence": items},
                      indent=2, sort_keys=True)


def import_bundle(blob: str) -> tuple[str, list[OpenedEvidence]]:
    """Parse a bundle; returns (owner, evidence list).

    Parsing does NOT imply validity — run :func:`verify_bundle` (or the
    Arbitrator, which re-verifies everything anyway) before relying on
    the contents.
    """
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise EvidenceError(f"bundle is not valid JSON: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise EvidenceError(f"unknown bundle format {payload.get('format')!r}")
    items = [evidence_from_dict(item) for item in payload.get("evidence", [])]
    return payload.get("owner", "?"), items


def verify_bundle(blob: str, registry: KeyRegistry) -> list[OpenedEvidence]:
    """Parse and cryptographically re-verify every item.

    Returns only the verifying evidence; raises if *none* of a
    non-empty bundle verifies (a wholly forged or corrupted archive).
    """
    _owner, items = import_bundle(blob)
    verified = [item for item in items if verify_opened_evidence(item, registry)]
    if items and not verified:
        raise EvidenceError("no evidence in the bundle verifies against the registry")
    return verified
