"""TPNR over the encrypted transport — composing the two layers.

The paper assumes SSL underneath ("The integrity of the data in the
transmission can be guaranteed by the SSL protocol").  This module
makes that composition concrete: a :class:`SecureConduit` owns one
mini-TLS session pair between two parties and moves whole TPNR messages
through it — codec-encoded, sealed into records, opened and decoded on
the far side.

Used by the tests to show (a) the layers compose losslessly, and
(b) what each layer catches: the record layer rejects in-flight
tampering and replay *of the transport frames*, while the TPNR evidence
layer is what survives past the session — the paper's whole point is
that transport security alone ends when the session does.
"""

from __future__ import annotations

from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity, KeyRegistry
from ..net.securechannel import ClientEndpoint, Record, SecureSession, ServerEndpoint, establish_session
from .codec import decode_message, encode_message
from .messages import TpnrMessage

__all__ = ["SecureConduit"]


class SecureConduit:
    """A bidirectional encrypted pipe for TPNR messages.

    One side plays the TLS client, the other the server; both ends can
    send.  ``transfer`` moves one message and returns what the far side
    decodes, so tests can interpose on the raw record in between.
    """

    def __init__(
        self,
        client_identity: Identity,
        server_identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        at_time: float = 0.0,
    ) -> None:
        server_cert = registry.certificate(server_identity.name)
        endpoint_c = ClientEndpoint(
            client_identity.name, rng.fork("conduit-c"), registry,
            expected_server=server_identity.name,
        )
        endpoint_s = ServerEndpoint(server_identity, server_cert, rng.fork("conduit-s"))
        self.client_session, self.server_session = establish_session(
            endpoint_c, endpoint_s, at_time
        )
        self.records_moved = 0

    def _sessions(self, sender_is_client: bool) -> tuple[SecureSession, SecureSession]:
        if sender_is_client:
            return self.client_session, self.server_session
        return self.server_session, self.client_session

    def seal(self, message: TpnrMessage, sender_is_client: bool = True) -> Record:
        """Encode and seal one message into a transport record."""
        sender, _ = self._sessions(sender_is_client)
        return sender.seal(encode_message(message))

    def open(self, record: Record, sender_is_client: bool = True) -> TpnrMessage:
        """Open and decode a record on the receiving side."""
        _, receiver = self._sessions(sender_is_client)
        return decode_message(receiver.open(record))

    def transfer(self, message: TpnrMessage, sender_is_client: bool = True) -> TpnrMessage:
        """Seal + open in one step (the honest-network fast path)."""
        record = self.seal(message, sender_is_client)
        self.records_moved += 1
        return self.open(record, sender_is_client)
