"""High-level TPNR orchestration: deployments and scenario runners.

A :class:`Deployment` wires the four Fig. 6(a) roles — client, cloud
storage provider, TTP, arbitrator — onto one simulated network with a
shared PKI.  The ``run_*`` helpers drive complete scenarios and return
plain result records; they are the API the examples, tests, and
benchmarks call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..crypto.pki import CertificateAuthority, Identity, KeyRegistry
from ..net.channel import PERFECT, ChannelSpec
from ..net.events import Simulator
from ..net.network import Network
from ..obs import NULL_OBS, Observability
from .arbitrator import Arbitrator, Ruling
from .client import DownloadResult, TpnrClient
from .messages import Flag
from .policy import DEFAULT_POLICY, TpnrPolicy
from .provider import HONEST, ProviderBehavior, TpnrProvider
from .transaction import TxStatus
from .ttp import TrustedThirdParty

__all__ = [
    "Deployment",
    "make_deployment",
    "run_upload",
    "run_download",
    "run_abort",
    "run_session",
    "SessionOutcome",
]

DEFAULT_KEY_BITS = 512


@dataclass
class Deployment:
    """One wired-up TPNR world."""

    sim: Simulator
    network: Network
    registry: KeyRegistry
    rng: HmacDrbg
    client: TpnrClient
    provider: TpnrProvider
    ttp: TrustedThirdParty
    arbitrator: Arbitrator
    extra_clients: dict[str, TpnrClient] = field(default_factory=dict)
    stable: object | None = None  # StableStore when built with durable=True
    obs: Observability = NULL_OBS  # live when built with observe=True
    replication: object | None = None  # ReplicatedStore when attached
    ledger: object | None = None  # BatchLedger when built with batch_size

    def run(self, until: float | None = None) -> None:
        self.network.sim.run(until)

    def any_client(self, name: str) -> TpnrClient:
        """Look up the primary or an extra client by name."""
        if name == self.client.name:
            return self.client
        return self.extra_clients[name]

    def parties(self):
        return (self.client, self.provider, self.ttp, *self.extra_clients.values())

    def settle_batches(self, strict: bool = True) -> dict:
        """End-of-run batched-evidence settlement.

        Seals every emitter's partial batch, then resolves each party's
        pending batched evidence against the ledger.  Returns
        ``{"resolved": n, "failed": n, "batches": n}``.  With *strict*
        (the default) any failure — an item whose covering batch never
        sealed or whose inclusion proof does not verify — raises
        :class:`~repro.errors.EvidenceError`: unsettled evidence must
        never pass silently.  ``strict=False`` is for dispute flows
        that want to convict from the failures instead.
        """
        if self.ledger is None:
            return {"resolved": 0, "failed": 0, "batches": 0}
        from ..errors import EvidenceError

        for party in self.parties():
            if party.batcher is not None:
                party.batcher.seal()
        resolved = failed = 0
        for party in self.parties():
            got, bad = party.settle_batched_evidence()
            resolved += got
            failed += bad
        if strict and failed:
            losers = [
                (p.name, e.header.transaction_id)
                for p in self.parties() for e in p.batched_failures
            ]
            raise EvidenceError(
                f"{failed} batched evidence item(s) failed settlement: {losers}"
            )
        return {
            "resolved": resolved,
            "failed": failed,
            "batches": len(self.ledger.batches),
        }

    # -- forensics -----------------------------------------------------------
    # Imported lazily: repro.obs.forensics reaches back into core for
    # evidence verification, so module-level imports would cycle.

    def timeline(self, transaction_id: str, exclusive_trace: bool = False):
        """Reconstruct the cross-surface timeline of one transaction."""
        from ..obs.forensics import TimelineReconstructor

        return TimelineReconstructor.for_deployment(
            self, exclusive_trace=exclusive_trace
        ).reconstruct(transaction_id)

    def forensic_audit(self, transaction_id: str, exclusive_trace: bool = False):
        """Cross-source consistency findings for one transaction."""
        from ..obs.forensics import ConsistencyAuditor

        return ConsistencyAuditor.for_deployment(
            self, exclusive_trace=exclusive_trace
        ).audit(transaction_id)

    def dossier(self, transaction_id: str, claimant_name: str | None = None,
                exclusive_trace: bool = False):
        """Build a :class:`~repro.obs.forensics.DisputeDossier`."""
        from ..obs.forensics import DisputeDossier

        return DisputeDossier.build(
            self, transaction_id,
            claimant_name=claimant_name,
            exclusive_trace=exclusive_trace,
        )


@dataclass
class SessionOutcome:
    """Summary of one upload(+download) session."""

    transaction_id: str
    upload_status: TxStatus
    upload_detail: str
    download: DownloadResult | None = None
    steps: int = 0
    bytes_on_wire: int = 0
    elapsed: float = 0.0
    ttp_involved: bool = False
    client_evidence: int = 0
    provider_evidence: int = 0


def make_deployment(
    seed: bytes | str = b"tpnr-deployment",
    channel: ChannelSpec = PERFECT,
    policy: TpnrPolicy = DEFAULT_POLICY,
    behavior: ProviderBehavior = HONEST,
    key_bits: int = DEFAULT_KEY_BITS,
    client_name: str = "alice",
    provider_name: str = "bob",
    ttp_name: str = "ttp",
    extra_client_names: tuple[str, ...] = (),
    topology=None,
    durable: bool = False,
    snapshot_interval: int = 48,
    observe: bool = False,
    identities: "dict[str, Identity] | None" = None,
    batch_size: int | None = None,
) -> Deployment:
    """Build a client + provider + TTP + arbitrator world.

    *extra_client_names* adds further user roles (for the cross-user
    sharing scenarios).  When a :class:`repro.net.topology.Topology` is
    given, its compiled per-pair channels override *channel* for every
    host pair it covers (all role names must be hosts of the topology).
    All keys derive from *seed*; identical seeds give bit-identical runs.

    *identities* supplies pre-generated :class:`Identity` objects by
    name; any role found there skips key generation (the dominant cost
    of building a world).  The throughput harness uses this to amortize
    keygen across sweep points — note that skipping generation advances
    the deployment RNG differently, so runs with and without a given
    identity are not bit-comparable.

    With ``durable=True`` every party gets a
    :class:`~repro.durability.journal.PartyJournal` over a shared
    :class:`~repro.durability.wal.StableStore` (``Deployment.stable``),
    making amnesia-crash windows recoverable.

    With ``observe=True`` a live :class:`repro.obs.Observability` —
    metrics registry + span tracer, both on the simulation clock — is
    seated on the network; every node reports through it, and it is
    exposed as ``Deployment.obs``.  Off by default: the seat then holds
    the shared no-op and instrumented code costs one branch.

    *batch_size* switches evidence to the Merkle-batched form: every
    party commits evidence leaves into per-signer batches of that size
    (one RSA signature per batch) published on a shared
    :class:`~repro.crypto.batch.BatchLedger` (``Deployment.ledger``);
    call :meth:`Deployment.settle_batches` after driving the run.
    ``None`` (the default) keeps the classic two-signatures-per-message
    evidence — byte-identical to previous releases.
    """
    rng = HmacDrbg(seed)
    sim = Simulator()
    network = Network(sim, rng, default_channel=channel)
    if observe:
        network.obs = Observability(clock=lambda: sim.now)
    ca = CertificateAuthority("repro-ca", rng.fork("ca"), bits=key_bits)
    registry = KeyRegistry(ca)
    def _identity(name: str) -> Identity:
        if identities is not None and name in identities:
            return identities[name]
        return Identity.generate(name, rng, bits=key_bits)

    client_id = _identity(client_name)
    provider_id = _identity(provider_name)
    ttp_id = _identity(ttp_name)
    extra_ids = [_identity(name) for name in extra_client_names]
    for identity in (client_id, provider_id, ttp_id, *extra_ids):
        registry.enroll(identity)
    client = TpnrClient(client_id, registry, rng, ttp_name=ttp_name, policy=policy)
    provider = TpnrProvider(
        provider_id, registry, rng, ttp_name=ttp_name, policy=policy, behavior=behavior
    )
    ttp = TrustedThirdParty(ttp_id, registry, rng, policy=policy)
    extra_clients = {
        identity.name: TpnrClient(identity, registry, rng, ttp_name=ttp_name, policy=policy)
        for identity in extra_ids
    }
    ledger = None
    if batch_size is not None:
        from ..crypto.batch import BatchLedger, EvidenceBatcher

        ledger = BatchLedger()
        for party in (client, provider, ttp, *extra_clients.values()):
            party.configure_batching(
                ledger, EvidenceBatcher(party.identity, batch_size, ledger)
            )
    for node in (client, provider, ttp, *extra_clients.values()):
        network.add_node(node)
    if topology is not None:
        topology.install(network)
    stable = None
    if durable:
        # Imported lazily: repro.durability imports core modules, so a
        # module-level import here would cycle.
        from ..durability.journal import PartyJournal
        from ..durability.wal import StableStore

        stable = StableStore("deployment")
        roles = [(client, "client"), (provider, "provider"), (ttp, "ttp")]
        roles += [(extra, "client") for extra in extra_clients.values()]
        for party, role in roles:
            party.attach_journal(
                PartyJournal(
                    stable,
                    f"{party.name}.wal",
                    role,
                    snapshot_interval=snapshot_interval,
                )
            )
    return Deployment(
        sim=sim,
        network=network,
        registry=registry,
        rng=rng,
        client=client,
        provider=provider,
        ttp=ttp,
        arbitrator=Arbitrator(registry, ledger=ledger),
        extra_clients=extra_clients,
        stable=stable,
        obs=network.obs,
        ledger=ledger,
    )


def _summarize(dep: Deployment, transaction_id: str, started_at: float) -> SessionOutcome:
    # The record is absent only when the client took an amnesia crash
    # with no durable journal to recover from: report the loss rather
    # than pretending the session never started.
    record = dep.client.transactions.get(transaction_id)
    trace = dep.network.trace
    tpnr_sends = trace.sends("tpnr.")
    ttp_kinds = {"tpnr.resolve.request", "tpnr.resolve.query",
                 "tpnr.resolve.reply", "tpnr.resolve.result", "tpnr.resolve.failed"}
    return SessionOutcome(
        transaction_id=transaction_id,
        upload_status=record.status if record else TxStatus.FAILED,
        upload_detail=record.detail if record
        else "transaction record lost (crash without durable journal)",
        download=dep.client.downloads.get(transaction_id),
        steps=len(tpnr_sends),
        bytes_on_wire=sum(e.size_bytes for e in tpnr_sends),
        elapsed=dep.sim.now - started_at,
        ttp_involved=any(e.kind in ttp_kinds for e in tpnr_sends),
        client_evidence=len(dep.client.evidence_store.for_transaction(transaction_id)),
        provider_evidence=len(dep.provider.evidence_store.for_transaction(transaction_id)),
    )


def run_upload(dep: Deployment, data: bytes, auto_resolve: bool = True) -> SessionOutcome:
    """Drive one upload to quiescence and summarize it."""
    with dep.obs.profiler.region("core/upload"):
        started = dep.sim.now
        dep.network.trace.clear()
        transaction_id = dep.client.upload(dep.provider.name, data,
                                           auto_resolve=auto_resolve)
        dep.run()
        return _summarize(dep, transaction_id, started)


def run_download(dep: Deployment, transaction_id: str) -> DownloadResult:
    """Drive one download of a previously uploaded transaction."""
    with dep.obs.profiler.region("core/download"):
        dep.client.download(transaction_id)
        dep.run()
        result = dep.client.downloads[transaction_id]
        return result


def run_abort(dep: Deployment, data: bytes, abort_delay: float | None = None) -> SessionOutcome:
    """Upload, then invoke the Abort sub-protocol (§4.2).

    The abort fires *abort_delay* seconds after the upload (default:
    half the response time-out — i.e. Alice gives up before escalating
    to the TTP).  Against an honest instant provider the transaction
    completes first and the abort is acknowledged post-completion;
    against a provider withholding the receipt the transaction ends
    ABORTED — no TTP involved either way, as Fig. 6(b) requires.
    """
    with dep.obs.profiler.region("core/abort"):
        started = dep.sim.now
        dep.network.trace.clear()
        if abort_delay is None:
            abort_delay = dep.client.policy.response_timeout / 2
        transaction_id = dep.client.upload(dep.provider.name, data, auto_resolve=False)
        dep.sim.schedule(abort_delay, lambda: dep.client.abort(transaction_id))
        dep.run()
        return _summarize(dep, transaction_id, started)


def run_session(dep: Deployment, data: bytes) -> SessionOutcome:
    """Full Normal-mode session: upload then download."""
    outcome = run_upload(dep, data)
    if outcome.upload_status in (TxStatus.COMPLETED, TxStatus.RESOLVED):
        outcome.download = run_download(dep, outcome.transaction_id)
        trace = dep.network.trace
        tpnr_sends = trace.sends("tpnr.")
        outcome.steps = len(tpnr_sends)
        outcome.bytes_on_wire = sum(e.size_bytes for e in tpnr_sends)
        outcome.elapsed = dep.sim.now
    return outcome


def run_shared_download(
    dep: Deployment, transaction_id: str, downloader_name: str
) -> DownloadResult:
    """The paper's cross-user scenario: the uploader grants access and
    shares ``(txn, hash, NRR)``; another user downloads and verifies.

    Returns the downloader's :class:`DownloadResult`; upload-to-download
    integrity holds across users because the served hash is checked
    against the *uploader's* hash.
    """
    uploader = dep.client
    downloader = dep.any_client(downloader_name)
    handle = uploader.uploads[transaction_id]
    # 1. The uploader authorizes the downloader with the provider.
    uploader.grant(transaction_id, downloader_name)
    dep.run()
    # 2. The uploader shares the transaction facts + her NRR out of band.
    receipt = uploader.evidence_store.latest(transaction_id, Flag.UPLOAD_RECEIPT)
    downloader.import_transaction(
        transaction_id,
        handle.provider,
        handle.data_hash,
        handle.data_size,
        shared_receipt=receipt,
    )
    # 3. The downloader runs the normal download session.
    downloader.download(transaction_id)
    dep.run()
    return downloader.downloads[transaction_id]


def dispute_tampering(dep: Deployment, transaction_id: str) -> Ruling:
    """Both parties submit their evidence; the arbitrator rules."""
    return dep.arbitrator.rule_on_tampering(
        transaction_id,
        dep.provider.name,
        dep.client.evidence_store.for_transaction(transaction_id),
        dep.provider.evidence_store.for_transaction(transaction_id),
    )


def dispute_missing_receipt(dep: Deployment, transaction_id: str) -> Ruling:
    return dep.arbitrator.rule_on_missing_receipt(
        transaction_id,
        dep.provider.name,
        dep.ttp.name,
        dep.client.evidence_store.for_transaction(transaction_id),
        dep.provider.evidence_store.for_transaction(transaction_id),
    )
