"""Alice — the TPNR client role (paper §4).

Implements the client side of all three models:

* **Normal** (§4.1, Fig. 6b): two-message upload — Alice sends
  ``data + NRO`` and receives ``NRR``; two-message download — request
  + response.  Off-line TTP: the TTP is never contacted.
* **Abort** (§4.2): Alice may cancel a pending transaction by sending
  the transaction ID with an abort-NRO; Bob answers Accept/Reject with
  an NRR, or Error (regenerate and resubmit — handled automatically,
  once).
* **Resolve** (§4.3): when Bob's response does not arrive within the
  time-out, Alice sends the TTP the transaction ID, her NRO, and an
  anomaly report; the TTP queries Bob in-line and either relays Bob's
  NRR (transaction resolved) or returns a signed failure statement
  (evidence of Bob's non-response).

Every piece of received evidence lands in the evidence store — that is
what Alice brings to the Arbitrator if a dispute arises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import Identity, KeyRegistry
from ..errors import ProtocolError
from ..net.events import ScheduledEvent
from ..net.network import Envelope
from .evidence import OpenedEvidence, open_evidence
from .messages import Flag, ResolveAction, TpnrMessage
from .party import TpnrParty
from .policy import DEFAULT_POLICY, TpnrPolicy
from .transaction import TransactionRecord, TxStatus, new_transaction_id

__all__ = ["TpnrClient", "UploadHandle", "DownloadResult"]


@dataclass
class UploadHandle:
    """Client-side bookkeeping for one upload transaction."""

    transaction_id: str
    provider: str
    data_hash: bytes
    data_size: int
    auto_resolve: bool = True
    timeout_event: ScheduledEvent | None = None
    abort_deadline_event: ScheduledEvent | None = None
    abort_replied: bool = False
    abort_retries_left: int = 1
    pending_abort_after_error: bool = False
    data: bytes | None = None  # retained while restarts remain
    restarts_left: int = 1
    aborting: bool = False  # an abort request is (durably) in flight


@dataclass
class DownloadResult:
    """Outcome of one download attempt."""

    transaction_id: str
    data: bytes | None = None
    verified: bool = False
    tampering_detected: bool = False
    detail: str = ""
    evidence_flags: list[str] = field(default_factory=list)


class TpnrClient(TpnrParty):
    """The user role ("Alice, a company CFO...")."""

    def __init__(
        self,
        identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        ttp_name: str = "ttp",
        policy: TpnrPolicy = DEFAULT_POLICY,
    ) -> None:
        super().__init__(identity, registry, rng, ttp_name, policy)
        self.uploads: dict[str, UploadHandle] = {}
        self.downloads: dict[str, DownloadResult] = {}
        self.resolve_outcomes: dict[str, str] = {}
        # Harness hook: called with the DownloadResult once a download
        # reaches a terminal outcome (data verified, tampering found,
        # hash mismatch, or timeout).  The throughput engine uses it to
        # close out a tenant's session without polling.
        self.on_download_complete = None

    def _wipe_role_state(self) -> None:
        # resolve_outcomes survives: it is the harness's notebook, not
        # process state (same rule as the rejection/retransmit counters).
        self.uploads = {}
        self.downloads = {}

    # ------------------------------------------------------------------
    # Upload (Normal mode, message 1 of 2)
    # ------------------------------------------------------------------

    def upload(
        self,
        provider: str,
        data: bytes,
        auto_resolve: bool = True,
        transaction_id: str | None = None,
    ) -> str:
        """Start an upload transaction; returns the transaction ID.

        Sends ``{header, data, NRO}`` and arms the response time-out.
        An explicit *transaction_id* lets deterministic harnesses (the
        throughput engine) avoid the process-global ID counter, whose
        value depends on how many transactions ran earlier in the
        process.
        """
        if transaction_id is None:
            transaction_id = new_transaction_id()
        elif transaction_id in self.transactions:
            raise ProtocolError(f"transaction {transaction_id!r} already exists")
        data_hash = digest("sha256", data)
        header = self.make_header(Flag.UPLOAD, provider, transaction_id, data_hash)
        message = self.make_message(header, data=data)
        record = TransactionRecord(
            transaction_id=transaction_id,
            role="client",
            peer=provider,
            data_hash=data_hash,
            data_size=len(data),
            started_at=self.now,
        )
        self.transactions[transaction_id] = record
        handle = UploadHandle(
            transaction_id=transaction_id,
            provider=provider,
            data_hash=data_hash,
            data_size=len(data),
            auto_resolve=auto_resolve,
            data=bytes(data),
        )
        self.uploads[transaction_id] = handle
        obs = self.obs
        if obs.enabled:
            # The root span of the transaction's tree: every later
            # phase span (resolve, abort, download, recovery) and every
            # other party's span parents under it via the trace id.
            obs.tracer.start(
                transaction_id, "tpnr.transaction",
                party=self.name, provider=provider, data_size=len(data),
            )
        # Journal the intent (payload included) before the wire sees
        # anything — a crash after this point can re-send the upload.
        self.journal_txn(record)
        if self.journal is not None:
            self.journal.log(
                "client.upload",
                txn=transaction_id,
                provider=provider,
                data=bytes(data),
                data_hash=data_hash,
                data_size=len(data),
                auto_resolve=auto_resolve,
            )
        self.send(provider, "tpnr.upload", message)
        self._arm_upload_retransmit(transaction_id)
        handle.timeout_event = self.set_timeout(
            self.policy.response_timeout, lambda: self._on_upload_timeout(transaction_id)
        )
        return transaction_id

    def _arm_upload_retransmit(self, transaction_id: str) -> None:
        handle = self.uploads[transaction_id]
        record = self.transactions[transaction_id]

        def rebuild() -> TpnrMessage:
            assert handle.data is not None
            header = self.make_header(
                Flag.UPLOAD, handle.provider, transaction_id, handle.data_hash
            )
            return self.make_message(header, data=handle.data)

        self.arm_retransmit(
            ("upload", transaction_id),
            handle.provider,
            "tpnr.upload",
            rebuild,
            lambda: record.status is TxStatus.PENDING and handle.data is not None,
        )

    def resume_upload(self, transaction_id: str) -> None:
        """Re-send an in-flight UPLOAD (fresh sequence number, nonce,
        and time limit; same transaction ID and data) and re-arm its
        retransmit loop + timeout.  Used both for provider-requested
        session restarts and by crash recovery."""
        handle = self.uploads[transaction_id]
        assert handle.data is not None
        record = self.transactions[transaction_id]
        if record.status is not TxStatus.PENDING:
            record.status = TxStatus.PENDING
            self.journal_txn(record)
        self.span_event(transaction_id, "upload.resumed")
        header = self.make_header(Flag.UPLOAD, handle.provider, transaction_id, handle.data_hash)
        message = self.make_message(header, data=handle.data)
        self.send(handle.provider, "tpnr.upload", message)
        self._arm_upload_retransmit(transaction_id)
        handle.timeout_event = self.set_timeout(
            self.policy.response_timeout, lambda: self._on_upload_timeout(transaction_id)
        )

    def _restart_upload(self, transaction_id: str) -> None:
        """Provider asked to restart the session (§4.2 Error path)."""
        self.uploads[transaction_id].restarts_left -= 1
        self.resume_upload(transaction_id)

    def _on_upload_timeout(self, transaction_id: str) -> None:
        record = self.transactions[transaction_id]
        if record.status is not TxStatus.PENDING:
            return
        self.cancel_retransmit(("upload", transaction_id))
        handle = self.uploads[transaction_id]
        self.span_event(transaction_id, "upload.timeout")
        if handle.auto_resolve and self.ttp_name:
            self.start_resolve(transaction_id, report="no upload receipt before time-out")
        else:
            self.finish_txn(record, TxStatus.FAILED, "timeout waiting for NRR")

    # ------------------------------------------------------------------
    # Download (Normal mode)
    # ------------------------------------------------------------------

    def download(self, transaction_id: str) -> None:
        """Request the data of a completed upload back from Bob."""
        handle = self.uploads.get(transaction_id)
        if handle is None:
            raise ProtocolError(f"no upload known for {transaction_id!r}")
        result = DownloadResult(transaction_id=transaction_id)
        self.downloads[transaction_id] = result
        self.span_begin(("download", transaction_id), transaction_id, "client.download")
        if self.journal is not None:
            self.journal.log("client.download", txn=transaction_id)
        self._send_download_request(transaction_id)
        self.arm_retransmit(
            ("download", transaction_id),
            handle.provider,
            "tpnr.download.request",
            lambda: self._build_download_request(transaction_id),
            lambda: result.data is None and not result.detail,
        )
        self.set_timeout(
            self.policy.response_timeout, lambda: self._on_download_timeout(transaction_id)
        )

    def _build_download_request(self, transaction_id: str) -> TpnrMessage:
        handle = self.uploads[transaction_id]
        header = self.make_header(
            Flag.DOWNLOAD_REQUEST, handle.provider, transaction_id, handle.data_hash
        )
        return self.make_message(header)

    def _send_download_request(self, transaction_id: str) -> None:
        handle = self.uploads[transaction_id]
        self.send(
            handle.provider, "tpnr.download.request", self._build_download_request(transaction_id)
        )

    def _on_download_timeout(self, transaction_id: str) -> None:
        result = self.downloads.get(transaction_id)
        if result is not None and result.data is None and not result.detail:
            self.cancel_retransmit(("download", transaction_id))
            result.detail = "timeout waiting for download response"
            self.span_end(("download", transaction_id), status="timeout")
            if self.on_download_complete is not None:
                self.on_download_complete(result)
            if self.uploads[transaction_id].auto_resolve and self.ttp_name:
                self.start_resolve(transaction_id, report="no download response before time-out")

    # ------------------------------------------------------------------
    # Cross-user sharing (the paper's Alice-uploads / Bob-downloads
    # scenario: "Bob, the company administration chairman, downloads
    # the data from the cloud")
    # ------------------------------------------------------------------

    def grant(self, transaction_id: str, grantee: str) -> None:
        """Authorize another user to download this transaction.

        Sends a signed GRANT to the provider; the provider records it
        and acknowledges with an NRR, so the grant itself is
        non-repudiable.
        """
        handle = self.uploads.get(transaction_id)
        if handle is None:
            raise ProtocolError(f"no upload known for {transaction_id!r}")
        header = self.make_header(Flag.GRANT, handle.provider, transaction_id, handle.data_hash)
        message = self.make_message(header, annotations=(("grantee", grantee),))
        self.send(handle.provider, "tpnr.grant", message)

    def import_transaction(
        self,
        transaction_id: str,
        provider: str,
        data_hash: bytes,
        data_size: int = 0,
        shared_receipt: "OpenedEvidence | None" = None,
    ) -> None:
        """Register a transaction someone else uploaded.

        The uploader shares ``(transaction_id, data_hash)`` — and
        ideally her provider-signed NRR (§4.1: "Alice owns the NRR
        signed by Bob, and she can send it to him") — out of band.
        After importing, :meth:`download` works and verifies the served
        bytes against the *uploader's* hash, closing the
        upload-to-download link across users.
        """
        if transaction_id in self.uploads:
            raise ProtocolError(f"transaction {transaction_id!r} already known")
        record = TransactionRecord(
            transaction_id=transaction_id,
            role="client",
            peer=provider,
            status=TxStatus.COMPLETED,
            data_hash=data_hash,
            data_size=data_size,
            started_at=self.now,
            detail="imported from uploader",
        )
        self.transactions[transaction_id] = record
        self.uploads[transaction_id] = UploadHandle(
            transaction_id=transaction_id,
            provider=provider,
            data_hash=data_hash,
            data_size=data_size,
        )
        self.journal_txn(record)
        if self.journal is not None:
            self.journal.log(
                "client.upload",
                txn=transaction_id,
                provider=provider,
                data=None,
                data_hash=data_hash,
                data_size=data_size,
                auto_resolve=True,
            )
        if shared_receipt is not None:
            self.archive_evidence(shared_receipt)

    # ------------------------------------------------------------------
    # Abort (§4.2)
    # ------------------------------------------------------------------

    def abort(self, transaction_id: str) -> None:
        """Request cancellation: transaction ID + abort-NRO to Bob."""
        handle = self.uploads.get(transaction_id)
        if handle is None:
            raise ProtocolError(f"no upload known for {transaction_id!r}")
        if handle.timeout_event is not None:
            handle.timeout_event.cancel()
        self.cancel_retransmit(("upload", transaction_id))
        record = self.transactions[transaction_id]
        handle.abort_replied = False
        self.span_begin(("abort", transaction_id), transaction_id, "client.abort")
        if not handle.aborting:
            handle.aborting = True
            if self.journal is not None:
                self.journal.log("client.abort", txn=transaction_id)

        def rebuild() -> TpnrMessage:
            header = self.make_header(
                Flag.ABORT, handle.provider, transaction_id, handle.data_hash
            )
            return self.make_message(header)

        self.send(handle.provider, "tpnr.abort", rebuild())
        self.arm_retransmit(
            ("abort", transaction_id),
            handle.provider,
            "tpnr.abort",
            rebuild,
            lambda: record.status is TxStatus.PENDING and not handle.abort_replied,
        )
        if handle.abort_deadline_event is not None:
            handle.abort_deadline_event.cancel()
        handle.abort_deadline_event = self.set_timeout(
            self.policy.response_timeout, lambda: self._on_abort_timeout(transaction_id)
        )

    def _on_abort_timeout(self, transaction_id: str) -> None:
        """No Accept/Reject/Error arrived: stop waiting (§5.5 finite
        termination) — the signed abort-NRO in hand still proves Alice
        tried to cancel."""
        record = self.transactions.get(transaction_id)
        handle = self.uploads.get(transaction_id)
        if record is None or handle is None or handle.abort_replied:
            return
        self.cancel_retransmit(("abort", transaction_id))
        self.span_end(("abort", transaction_id), status="timeout")
        if record.status is TxStatus.PENDING:
            self.finish_txn(record, TxStatus.FAILED, "abort unacknowledged by provider")

    # ------------------------------------------------------------------
    # Resolve (§4.3)
    # ------------------------------------------------------------------

    def start_resolve(self, transaction_id: str, report: str) -> None:
        """Escalate to the TTP with the NRO and an anomaly report."""
        if not self.ttp_name:
            raise ProtocolError("no TTP configured")
        record = self.transactions[transaction_id]
        record.status = TxStatus.RESOLVING
        self.span_begin(
            ("resolve", transaction_id), transaction_id, "client.resolve",
            report=report,
        )
        self.journal_txn(record)

        def rebuild() -> TpnrMessage:
            header = self.make_header(
                Flag.RESOLVE_REQUEST, self.ttp_name, transaction_id, record.data_hash
            )
            return self.make_message(
                header,
                annotations=(("report", report), ("counterparty", record.peer)),
            )

        self.send(self.ttp_name, "tpnr.resolve.request", rebuild())
        self.arm_retransmit(
            ("resolve", transaction_id),
            self.ttp_name,
            "tpnr.resolve.request",
            rebuild,
            lambda: record.status is TxStatus.RESOLVING,
        )
        # Even the resolve request can be lost; bound the wait so the
        # protocol always terminates in finite time (§5.5's fairness
        # requirement: "each party can stop the execution after a
        # finite time").
        budget = self.policy.response_timeout + self.policy.ttp_response_timeout + 1.0
        self.set_timeout(budget, lambda: self._on_resolve_timeout(transaction_id))

    def _on_resolve_timeout(self, transaction_id: str) -> None:
        record = self.transactions.get(transaction_id)
        if record is not None and record.status is TxStatus.RESOLVING:
            self.cancel_retransmit(("resolve", transaction_id))
            self.span_end(("resolve", transaction_id), status="timeout")
            self.finish_txn(record, TxStatus.FAILED, "resolve timed out (TTP unreachable?)")

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if self.corrupted_inbound(envelope):
            return
        message = envelope.payload
        if not isinstance(message, TpnrMessage):
            self.reject(envelope.kind, "not a TPNR message")
            return
        try:
            opened = self.validate_and_open(message)
        except Exception as exc:
            self.reject(envelope.kind, f"{type(exc).__name__}: {exc}")
            return
        flag = message.header.flag
        if flag is Flag.UPLOAD_RECEIPT:
            self._handle_upload_receipt(message, opened)
        elif flag is Flag.DOWNLOAD_RESPONSE:
            self._handle_download_response(message, opened)
        elif flag is Flag.GRANT_ACK:
            self.archive_evidence(opened)  # provider-signed grant receipt
        elif flag in (Flag.ABORT_ACCEPT, Flag.ABORT_REJECT, Flag.ABORT_ERROR):
            self._handle_abort_reply(message, opened)
        elif flag is Flag.RESOLVE_RESULT:
            self._handle_resolve_result(message, opened)
        elif flag is Flag.RESOLVE_FAILED:
            self._handle_resolve_failed(message, opened)
        else:
            self.reject(envelope.kind, f"unexpected flag {flag.value}")

    # -- handlers -------------------------------------------------------------

    def _handle_upload_receipt(self, message: TpnrMessage, opened) -> None:
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        handle = self.uploads.get(transaction_id)
        if record is None or handle is None:
            self.reject("tpnr.upload.receipt", f"unknown transaction {transaction_id}")
            return
        if message.header.data_hash != handle.data_hash:
            # Bob acknowledged different bytes than Alice sent.
            self.reject("tpnr.upload.receipt", "NRR hash mismatch")
            return
        self.archive_evidence(opened)  # the NRR
        if record.status in (TxStatus.PENDING, TxStatus.RESOLVING):
            if handle.timeout_event is not None:
                handle.timeout_event.cancel()
            self.cancel_retransmit(("upload", transaction_id))
            self.cancel_retransmit(("resolve", transaction_id))
            handle.data = None  # no restarts needed anymore
            self.span_end(("resolve", transaction_id), status="ok")
            self.finish_txn(record, TxStatus.COMPLETED)

    def _handle_download_response(self, message: TpnrMessage, opened) -> None:
        transaction_id = message.header.transaction_id
        result = self.downloads.get(transaction_id)
        handle = self.uploads.get(transaction_id)
        if result is None or handle is None:
            self.reject("tpnr.download.response", f"unknown transaction {transaction_id}")
            return
        self.cancel_retransmit(("download", transaction_id))
        self.archive_evidence(opened)  # Bob's NRR over what he served
        result.evidence_flags.append(message.header.flag.value)
        data = message.data or b""
        served_hash = digest("sha256", data)
        if served_hash != message.header.data_hash:
            # Transmission integrity failure — not (yet) a dispute.
            result.detail = "served data does not match its own signed hash"
            self._journal_download_result(result)
            self.span_end(("download", transaction_id), status="hash-mismatch")
            if self.on_download_complete is not None:
                self.on_download_complete(result)
            return
        result.data = data
        if served_hash == handle.data_hash:
            result.verified = True
            result.detail = "upload-to-download integrity verified"
        else:
            # The critical missing link, now closed: the data Bob
            # served (and signed!) differs from what he acknowledged at
            # upload.  Alice holds both NRRs -> arbitration-ready.
            result.tampering_detected = True
            result.detail = "stored data differs from uploaded data (evidence retained)"
        # The verdict must be durable before Bob learns we have the
        # bytes — the ack is what stops his serve retransmits.
        self._journal_download_result(result)
        # Acknowledge receipt so Bob also ends with download evidence.
        ack_header = self.make_header(
            Flag.DOWNLOAD_ACK, handle.provider, transaction_id, served_hash
        )
        self.send(handle.provider, "tpnr.download.ack", self.make_message(ack_header))
        self.span_end(
            ("download", transaction_id),
            status="tampering-detected" if result.tampering_detected else "ok",
        )
        if self.on_download_complete is not None:
            self.on_download_complete(result)

    def _journal_download_result(self, result: DownloadResult) -> None:
        if self.journal is not None:
            self.journal.log(
                "client.download.result",
                txn=result.transaction_id,
                data=result.data,
                verified=result.verified,
                tampering=result.tampering_detected,
                detail=result.detail,
                flags=list(result.evidence_flags),
            )

    def _handle_abort_reply(self, message: TpnrMessage, opened) -> None:
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        handle = self.uploads.get(transaction_id)
        if record is None or handle is None:
            self.reject("tpnr.abort.reply", f"unknown transaction {transaction_id}")
            return
        self.archive_evidence(opened)
        handle.abort_replied = True
        self.cancel_retransmit(("abort", transaction_id))
        if handle.abort_deadline_event is not None:
            handle.abort_deadline_event.cancel()
            handle.abort_deadline_event = None
        flag = message.header.flag
        if flag is Flag.ABORT_ACCEPT:
            handle.aborting = False
            self.span_end(("abort", transaction_id), status="accepted")
            if record.status is TxStatus.PENDING:
                self.finish_txn(record, TxStatus.ABORTED, "abort accepted")
        elif flag is Flag.ABORT_REJECT:
            handle.aborting = False
            record.detail = "abort rejected by provider"
            self.span_end(("abort", transaction_id), status="rejected")
        else:  # ABORT_ERROR: double-check parameters, regenerate, resubmit
            if handle.abort_retries_left > 0:
                handle.abort_retries_left -= 1
                self.abort(transaction_id)
            elif record.status is TxStatus.PENDING:
                self.span_end(("abort", transaction_id), status="failed")
                self.finish_txn(record, TxStatus.FAILED, "abort failed after retry")
            else:
                record.detail = "abort failed after retry"
                self.span_end(("abort", transaction_id), status="failed")

    def _handle_resolve_result(self, message: TpnrMessage, opened) -> None:
        """TTP relayed Bob's answer; the embedded NRR restores fairness."""
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        if record is None:
            self.reject("tpnr.resolve.result", f"unknown transaction {transaction_id}")
            return
        self.archive_evidence(opened)
        # Open the embedded counterparty reply — its evidence (the NRR)
        # was encrypted to us even though it travelled via the TTP.
        for relayed in message.embedded:
            try:
                embedded_evidence = open_evidence(
                    self.identity,
                    self.registry.lookup(relayed.header.sender_id),
                    relayed.header.sender_id,
                    relayed.header,
                    relayed.evidence,
                )
            except Exception as exc:
                self.reject("tpnr.resolve.result", f"embedded evidence invalid: {exc}")
                continue
            self.archive_evidence(embedded_evidence)
        action = message.annotation("action", ResolveAction.CONTINUE.value)
        self.resolve_outcomes[transaction_id] = action
        self.cancel_retransmit(("resolve", transaction_id))
        if record.status is not TxStatus.RESOLVING:
            return
        self.span_end(("resolve", transaction_id), status=f"result:{action}")
        handle = self.uploads.get(transaction_id)
        if action == ResolveAction.CONTINUE.value:
            self.finish_txn(record, TxStatus.RESOLVED, "resolved via TTP: provider continued")
        elif action == ResolveAction.RESTART.value:
            if handle is not None and handle.data is not None and handle.restarts_left > 0:
                self._restart_upload(transaction_id)
            else:
                self.finish_txn(record, TxStatus.FAILED, "provider requested session restart")
        else:
            self.finish_txn(record, TxStatus.FAILED, f"provider action: {action}")

    def _handle_resolve_failed(self, message: TpnrMessage, opened) -> None:
        """TTP statement: Bob never answered — signed evidence for Alice."""
        transaction_id = message.header.transaction_id
        record = self.transactions.get(transaction_id)
        if record is None:
            self.reject("tpnr.resolve.failed", f"unknown transaction {transaction_id}")
            return
        self.archive_evidence(opened)  # the TTP's signed failure statement
        self.resolve_outcomes[transaction_id] = "failed: provider unresponsive"
        self.cancel_retransmit(("resolve", transaction_id))
        if record.status is TxStatus.RESOLVING:
            self.span_end(("resolve", transaction_id), status="ttp-failure-statement")
            self.finish_txn(record, TxStatus.FAILED, "TTP: provider did not respond")
