"""The Arbitrator — settles disputes from evidence alone (Fig. 6d).

"If disputation happens, the Arbitrator can ask Alice and Bob to
provide evidence for judging."  The arbitrator holds no protocol state:
every ruling re-verifies the submitted :class:`OpenedEvidence` against
the public key registry and then applies the decision rules below.

Decision rules (per dispute type):

**Tampering claim** (client says downloaded ≠ uploaded):
  * the provider-signed UPLOAD_RECEIPT (NRR) fixes the uploaded hash;
  * the provider-signed DOWNLOAD_RESPONSE evidence fixes the served
    hash;
  * both signed by the provider -> mismatch proves the change happened
    *inside the provider's custody*: PROVIDER_FAULT;
  * equality proves the provider served exactly what it acknowledged:
    the claim is rejected (this is the §2.4 blackmail scenario);
  * a claimant who cannot produce the receipts has no case: the
    provider may rebut with the client's own DOWNLOAD_ACK.

**Missing receipt** (client says provider never answered):
  * a TTP-signed RESOLVE_FAILED statement is proof the provider
    ignored an in-line query: PROVIDER_FAULT;
  * a provider-signed receipt presented by either side defeats the
    claim.

**Upload content dispute** (provider says client uploaded bad data):
  * the client-signed UPLOAD NRO fixes what the client sent; the
    provider holding it proves origin — the client "cannot deny
    his/her activity".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..crypto.pki import KeyRegistry
from .evidence import OpenedEvidence, verify_opened_evidence
from .messages import Flag

__all__ = ["Verdict", "Ruling", "Arbitrator"]


class Verdict(enum.Enum):
    PROVIDER_FAULT = "provider-at-fault"
    CLIENT_FAULT = "client-at-fault"
    CLAIM_REJECTED = "claim-rejected"
    NO_FAULT = "no-fault"
    UNRESOLVED = "unresolved"


@dataclass(frozen=True)
class Ruling:
    verdict: Verdict
    transaction_id: str
    rationale: str
    evidence_admitted: int
    evidence_rejected: int


class Arbitrator:
    """Stateless evidence judge.

    *ledger* (optional) is the deployment's published batch-commitment
    log: it lets the arbitrator resolve inclusion proofs for batched
    evidence whose proof was not attached at submission time.  Batched
    items verify through the same :func:`verify_opened_evidence` door
    as classic two-signature evidence — an item whose inclusion proof
    fails is rejected even when its batch signature is fine.
    """

    def __init__(self, registry: KeyRegistry, ledger=None) -> None:
        self.registry = registry
        self.ledger = ledger
        self.rulings: list[Ruling] = []

    # -- helpers ---------------------------------------------------------------

    def _admit(
        self, transaction_id: str, submissions: list[OpenedEvidence]
    ) -> tuple[list[OpenedEvidence], int]:
        """Cryptographically re-verify evidence; drop forgeries and
        evidence for other transactions."""
        admitted = []
        rejected = 0
        for item in submissions:
            if item.header.transaction_id != transaction_id:
                rejected += 1
                continue
            if not verify_opened_evidence(item, self.registry, self.ledger):
                rejected += 1
                continue
            admitted.append(item)
        return admitted, rejected

    @staticmethod
    def _latest(
        evidence: list[OpenedEvidence], flag: Flag, signer: str | None = None
    ) -> OpenedEvidence | None:
        matches = [
            e
            for e in evidence
            if e.header.flag is flag and (signer is None or e.signer == signer)
        ]
        return matches[-1] if matches else None

    def _finish(self, ruling: Ruling) -> Ruling:
        self.rulings.append(ruling)
        return ruling

    # -- dispute types --------------------------------------------------------------

    def rule_on_tampering(
        self,
        transaction_id: str,
        provider_name: str,
        claimant_evidence: list[OpenedEvidence],
        respondent_evidence: list[OpenedEvidence] | None = None,
    ) -> Ruling:
        """Client claims the data came back different than it went in."""
        respondent_evidence = respondent_evidence or []
        admitted, rejected = self._admit(
            transaction_id, claimant_evidence + respondent_evidence
        )
        receipt = self._latest(admitted, Flag.UPLOAD_RECEIPT, signer=provider_name)
        served = self._latest(admitted, Flag.DOWNLOAD_RESPONSE, signer=provider_name)
        if receipt is not None and served is not None:
            if served.header.data_hash != receipt.header.data_hash:
                return self._finish(
                    Ruling(
                        Verdict.PROVIDER_FAULT,
                        transaction_id,
                        "provider-signed receipt and provider-signed download "
                        "response carry different data hashes: the data changed "
                        "in the provider's custody",
                        len(admitted),
                        rejected,
                    )
                )
            return self._finish(
                Ruling(
                    Verdict.CLAIM_REJECTED,
                    transaction_id,
                    "provider served exactly the acknowledged bytes; the "
                    "tampering claim is unfounded (blackmail scenario)",
                    len(admitted),
                    rejected,
                )
            )
        # No download evidence from the claimant; check the rebuttal.
        ack = self._latest(admitted, Flag.DOWNLOAD_ACK)
        if receipt is not None and ack is not None:
            if ack.header.data_hash == receipt.header.data_hash:
                return self._finish(
                    Ruling(
                        Verdict.CLAIM_REJECTED,
                        transaction_id,
                        "the claimant's own signed download acknowledgement "
                        "matches the uploaded hash",
                        len(admitted),
                        rejected,
                    )
                )
            return self._finish(
                Ruling(
                    Verdict.PROVIDER_FAULT,
                    transaction_id,
                    "claimant-signed acknowledgement shows received bytes "
                    "differ from the provider-acknowledged upload",
                    len(admitted),
                    rejected,
                )
            )
        return self._finish(
            Ruling(
                Verdict.UNRESOLVED,
                transaction_id,
                "insufficient evidence: need the provider-signed receipt plus "
                "either the download response or the download acknowledgement",
                len(admitted),
                rejected,
            )
        )

    def rule_on_missing_receipt(
        self,
        transaction_id: str,
        provider_name: str,
        ttp_name: str,
        claimant_evidence: list[OpenedEvidence],
        respondent_evidence: list[OpenedEvidence] | None = None,
    ) -> Ruling:
        """Client claims the provider withheld the NRR."""
        respondent_evidence = respondent_evidence or []
        admitted, rejected = self._admit(
            transaction_id, claimant_evidence + respondent_evidence
        )
        receipt = self._latest(admitted, Flag.UPLOAD_RECEIPT, signer=provider_name)
        if receipt is None:
            receipt = self._latest(admitted, Flag.RESOLVE_REPLY, signer=provider_name)
        if receipt is not None:
            return self._finish(
                Ruling(
                    Verdict.CLAIM_REJECTED,
                    transaction_id,
                    "a provider-signed receipt for this transaction exists",
                    len(admitted),
                    rejected,
                )
            )
        statement = self._latest(admitted, Flag.RESOLVE_FAILED, signer=ttp_name)
        if statement is not None:
            return self._finish(
                Ruling(
                    Verdict.PROVIDER_FAULT,
                    transaction_id,
                    "TTP-signed statement: provider did not respond to the "
                    "in-line resolve query",
                    len(admitted),
                    rejected,
                )
            )
        return self._finish(
            Ruling(
                Verdict.UNRESOLVED,
                transaction_id,
                "no receipt and no TTP statement submitted",
                len(admitted),
                rejected,
            )
        )

    def rule_on_upload_content(
        self,
        transaction_id: str,
        client_name: str,
        provider_evidence: list[OpenedEvidence],
    ) -> Ruling:
        """Provider proves what the client originally uploaded (NRO)."""
        admitted, rejected = self._admit(transaction_id, provider_evidence)
        origin = self._latest(admitted, Flag.UPLOAD, signer=client_name)
        if origin is not None:
            return self._finish(
                Ruling(
                    Verdict.NO_FAULT,
                    transaction_id,
                    f"client-signed NRO fixes the uploaded hash to "
                    f"{origin.header.data_hash.hex()[:16]}...; origin is undeniable",
                    len(admitted),
                    rejected,
                )
            )
        return self._finish(
            Ruling(
                Verdict.UNRESOLVED,
                transaction_id,
                "provider could not produce the client's NRO",
                len(admitted),
                rejected,
            )
        )
