"""Shared machinery for TPNR protocol roles.

:class:`TpnrParty` extends the network :class:`~repro.net.node.Node`
with everything every role needs: an identity + key registry, the
policy, per-peer anti-replay state, an evidence store, and helpers to
build outbound messages (allocating sequence numbers and nonces,
stamping time limits, attaching evidence) and to validate inbound ones
(time limit, sequence, nonce, evidence verification).

It also hosts the retransmission engine every role shares: an
unacknowledged message is rebuilt (fresh sequence number, nonce, and
time limit — the §4 header machinery is exactly what distinguishes a
legitimate retransmission from a replay) and re-sent with capped
exponential backoff until the role-level acknowledgement arrives or the
retry budget runs out, at which point the role's own timeout escalates
to Abort/Resolve instead of hanging.

Durability (PR 2): a party may carry a
:class:`~repro.durability.journal.PartyJournal`.  When it does, every
evidence-bearing transition is logged **before** it is acted on —
outbound headers before the send (:meth:`send`), inbound anti-replay
consumption on acceptance (:meth:`validate_and_open`), evidence before
archiving (:meth:`archive_evidence`), status changes at the moment they
happen (:meth:`finish_txn`).  :meth:`begin_crash` with ``amnesia=True``
models a real process death: every timer dies with the process, the
journal's write buffer is lost, and volatile protocol state is wiped;
:func:`repro.durability.recovery.recover` rebuilds it at restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity, KeyRegistry
from ..errors import ProtocolError, ReplayError
from ..net.events import ScheduledEvent
from ..net.network import Envelope
from ..net.node import Node
from .evidence import (
    BatchedEvidence,
    OpenedEvidence,
    build_batched_evidence,
    build_evidence,
    open_evidence,
    verify_opened_evidence,
)
from .messages import Flag, Header, TpnrMessage
from .policy import DEFAULT_POLICY, TpnrPolicy
from .transaction import EvidenceStore, PeerState, TransactionRecord

__all__ = ["TpnrParty"]

_NONCE_SIZE = 16


@dataclass
class _RetransmitState:
    """One armed retransmission loop."""

    dst: str
    kind: str
    rebuild: Callable[[], TpnrMessage]
    still_needed: Callable[[], bool]
    attempts_left: int
    delay: float
    event: ScheduledEvent | None = None


class TpnrParty(Node):
    """Base class for Alice / Bob / the TTP."""

    def __init__(
        self,
        identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        ttp_name: str = "",
        policy: TpnrPolicy = DEFAULT_POLICY,
    ) -> None:
        super().__init__(identity.name)
        self.identity = identity
        self.registry = registry
        self.policy = policy
        self.ttp_name = ttp_name
        self.rng = rng.fork(f"tpnr/{identity.name}")
        self.evidence_store = EvidenceStore(identity.name)
        self.transactions: dict[str, TransactionRecord] = {}
        self._peers: dict[str, PeerState] = {}
        self.rejected_messages: list[tuple[str, str]] = []  # (kind, reason)
        self._retransmits: dict[Hashable, _RetransmitState] = {}
        self.retransmits_sent = 0
        # Durability hooks (None/False until a journal is attached or a
        # crash window hits this node).
        self.journal = None  # PartyJournal | None
        self.crashed = False
        self.recoveries = 0
        self._live_timers: list[ScheduledEvent] = []
        # Open observability spans keyed by phase, e.g.
        # ("resolve", txn).  Volatile on purpose: an amnesia crash
        # closes them (status "crashed") and wipes the map.
        self._obs_spans: dict[Hashable, object] = {}
        # Harness hook: called with the TransactionRecord whenever one
        # of this party's transactions reaches a terminal status.  The
        # throughput engine chains follow-up work (downloads, latency
        # accounting) from here without polling the simulator.
        self.on_txn_terminal: Callable[[TransactionRecord], None] | None = None
        # Batched-evidence seats (None until configure_batching): the
        # shared ledger lets this party *resolve* inclusion proofs for
        # batched evidence it receives; the batcher (emitters only)
        # accumulates this party's own outbound evidence leaves.
        self.batch_ledger = None  # crypto.batch.BatchLedger | None
        self.batcher = None  # crypto.batch.EvidenceBatcher | None
        self._pending_batched: list[BatchedEvidence] = []
        self.batched_failures: list[BatchedEvidence] = []

    # -- batched evidence ----------------------------------------------------

    def configure_batching(self, ledger, batcher=None) -> None:
        """Join a batched-evidence world: *ledger* for resolving proofs
        on received items; *batcher* (emitters only) for committing own
        outbound evidence leaves."""
        self.batch_ledger = ledger
        self.batcher = batcher

    def _resolve_batched(self, opened: BatchedEvidence) -> str:
        """Try to resolve *opened*'s inclusion proof from the ledger.

        Returns ``"verified"`` (proof found and valid), ``"pending"``
        (covering batch not sealed yet — settle later), or
        ``"invalid"`` (a proof exists but does not verify: the item was
        tampered relative to what the signer committed).
        """
        if self.batch_ledger is None:
            return "pending"
        proof = self.batch_ledger.proof_for(opened.signer, opened.leaf)
        if proof is None:
            return "pending"
        opened.resolve(proof)
        if verify_opened_evidence(opened, self.registry):
            return "verified"
        return "invalid"

    def settle_batched_evidence(self) -> tuple[int, int]:
        """Resolve every pending batched item (end-of-run, after all
        signers sealed).  Returns ``(resolved, failed)``; failures —
        items whose batch never sealed or whose proof does not verify —
        land in :attr:`batched_failures`, never silently accepted.
        """
        resolved = failed = 0
        pending, self._pending_batched = self._pending_batched, []
        for opened in pending:
            if self._resolve_batched(opened) == "verified":
                resolved += 1
            else:
                failed += 1
                self.batched_failures.append(opened)
                self.reject("batched-evidence",
                            f"unsettled or invalid inclusion proof "
                            f"(txn {opened.header.transaction_id})")
        return resolved, failed

    # -- durability ----------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Adopt a :class:`~repro.durability.journal.PartyJournal`."""
        self.journal = journal
        journal.bind(self)

    def set_timeout(self, delay: float, callback) -> ScheduledEvent:
        """Track every timer so an amnesia crash can kill them all —
        a timer is process state; it cannot survive a process death."""
        event = super().set_timeout(delay, callback)
        self._live_timers.append(event)
        if len(self._live_timers) > 64:
            self._live_timers = [
                e for e in self._live_timers
                if not e.cancelled and e.time >= self.now
            ]
        return event

    def send(self, dst: str, kind: str, payload):
        """Log-before-send: the header (whose sequence number and nonce
        are already consumed) must be durable before the wire sees it,
        or a crash+restart would reuse the sequence number."""
        if self.journal is not None and isinstance(payload, TpnrMessage):
            self.journal.log_send(payload.header)
        envelope = super().send(dst, kind, payload)
        obs = self.obs
        if obs.enabled and isinstance(payload, TpnrMessage):
            # Correlate the span tree with the wire trace: the send
            # event carries the envelope's msg_id, which the
            # TraceRecorder indexes too.
            root = obs.tracer.root(payload.header.transaction_id)
            if root is not None:
                root.event(self.now, f"send:{kind}", msg_id=envelope.msg_id,
                           party=self.name)
        return envelope

    def archive_evidence(self, opened: OpenedEvidence) -> bool:
        """Journal (if new) then archive one piece of evidence.

        The WAL append precedes the store insert: once the in-memory
        archive holds it, the protocol may act on it (issue receipts,
        finish transactions), so it must already be durable.

        Batched evidence resolves its inclusion proof here if the
        covering batch has already sealed; an **invalid** proof (batch
        signature fine, item not under the root) is rejected outright —
        never archived, never silently accepted.  A still-pending item
        is archived and queued for :meth:`settle_batched_evidence`.
        """
        if isinstance(opened, BatchedEvidence) and opened.pending:
            status = self._resolve_batched(opened)
            if status == "invalid":
                self.reject("batched-evidence",
                            f"inclusion proof invalid "
                            f"(txn {opened.header.transaction_id})")
                self.batched_failures.append(opened)
                return False
            if status == "pending" and not self.evidence_store.holds(opened):
                self._pending_batched.append(opened)
        if self.journal is not None and not self.evidence_store.holds(opened):
            self.journal.log_evidence(opened)
        added = self.evidence_store.add(opened)
        obs = self.obs
        if obs.enabled and added:
            obs.metrics.counter(
                "party.evidence_archived",
                party=self.name, flag=opened.header.flag.value,
            ).inc()
            root = obs.tracer.root(opened.header.transaction_id)
            if root is not None:
                root.event(self.now, f"evidence:{opened.header.flag.value}",
                           party=self.name, signer=opened.signer)
        return added

    def journal_txn(self, record: TransactionRecord) -> None:
        if self.journal is not None:
            self.journal.log_txn(record)

    def finish_txn(
        self, record: TransactionRecord, status, detail: str = ""
    ) -> None:
        """Finish a transaction and journal the terminal status."""
        record.finish(status, self.now, detail)
        self.journal_txn(record)
        obs = self.obs
        if obs.enabled:
            root = obs.tracer.root(record.transaction_id)
            if root is not None:
                root.event(self.now, f"status:{status.value}",
                           party=self.name, detail=detail)
                # The client's record going terminal is the end of the
                # transaction; its root span closes with that status.
                if record.role == "client":
                    obs.tracer.finish(root, status=status.value)
            obs.metrics.counter(
                "txn.finished", role=record.role, status=status.value
            ).inc()
            if record.role == "client":
                obs.metrics.histogram("txn.duration_seconds").observe(
                    self.now - record.started_at
                )
        if self.on_txn_terminal is not None:
            self.on_txn_terminal(record)

    def begin_crash(self, amnesia: bool = False) -> None:
        """The process dies.  Always kill the retransmission loops (a
        dead process sends nothing); with *amnesia* also kill every
        timer, lose the journal's write buffer, and wipe volatile
        protocol state.  Observability counters survive — they model
        the test harness watching the node, not the node itself.
        """
        self.cancel_all_retransmits()
        if not amnesia:
            return
        self.crashed = True
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("party.crashes", party=self.name).inc()
            # Close this party's open phase spans: the work they were
            # timing died with the process.  (The spans themselves live
            # on the network's tracer, which is why they survive to be
            # closed at all.)
            for span in self._obs_spans.values():
                obs.tracer.finish(span, status="crashed")
        self._obs_spans = {}
        for event in self._live_timers:
            event.cancel()
        self._live_timers = []
        if self.journal is not None:
            self.journal.crash()
        self.transactions = {}
        self._peers = {}
        self._pending_batched = []
        duplicates = self.evidence_store.duplicates_suppressed
        self.evidence_store = EvidenceStore(self.name)
        self.evidence_store.duplicates_suppressed = duplicates
        self._wipe_role_state()

    def _wipe_role_state(self) -> None:
        """Role-specific volatile state lost in an amnesia crash."""

    def end_crash(self) -> None:
        """The process is back up (recovery runs separately)."""
        self.crashed = False

    # -- observability spans ------------------------------------------------

    def span_begin(self, key: Hashable, transaction_id: str, name: str, **attrs):
        """Open a phase span under the transaction's root span.

        No-op (returns None) when observation is off.  If a span with
        the same *key* is already open it is kept and a ``retry`` event
        is recorded instead — phases like Abort legitimately restart.
        """
        obs = self.obs
        if not obs.enabled:
            return None
        existing = self._obs_spans.get(key)
        if existing is not None and not existing.finished:
            existing.event(self.now, "retry")
            return existing
        span = obs.tracer.start(transaction_id, name, party=self.name, **attrs)
        self._obs_spans[key] = span
        return span

    def span_end(self, key: Hashable, status: str = "ok") -> None:
        """Close the phase span opened under *key*, if any."""
        span = self._obs_spans.pop(key, None)
        if span is not None:
            self.obs.tracer.finish(span, status=status)

    def span_event(self, transaction_id: str, name: str, **attrs) -> None:
        """Record an event on the transaction's root span, if any."""
        obs = self.obs
        if obs.enabled:
            root = obs.tracer.root(transaction_id)
            if root is not None:
                root.event(self.now, name, party=self.name, **attrs)

    # -- state helpers -------------------------------------------------------

    def peer_state(self, peer: str) -> PeerState:
        return self._peers.setdefault(peer, PeerState())

    def record(self, transaction_id: str) -> TransactionRecord:
        try:
            return self.transactions[transaction_id]
        except KeyError as exc:
            raise ProtocolError(
                f"{self.name} has no transaction {transaction_id!r}"
            ) from exc

    # -- outbound --------------------------------------------------------------

    def make_header(
        self,
        flag: Flag,
        recipient: str,
        transaction_id: str,
        data_hash: bytes,
    ) -> Header:
        """Allocate seq + nonce and stamp the time limit for one message."""
        return Header(
            flag=flag,
            sender_id=self.name,
            recipient_id=recipient,
            ttp_id=self.ttp_name,
            transaction_id=transaction_id,
            sequence_number=self.peer_state(recipient).allocate_seq(),
            nonce=self.rng.generate(_NONCE_SIZE),
            time_limit=self.now + self.policy.message_time_limit,
            data_hash=data_hash,
        )

    def make_message(
        self,
        header: Header,
        data: bytes | None = None,
        annotations: tuple[tuple[str, str], ...] = (),
        evidence_recipient: str | None = None,
    ) -> TpnrMessage:
        """Attach evidence (encrypted to *evidence_recipient*, default
        the header's recipient) and assemble the wire message."""
        if self.batcher is not None:
            # Batched mode: commit the evidence leaf instead of signing
            # per message — the wire carries the fixed-size leaf blob.
            blob = build_batched_evidence(self.identity, header, self.batcher)
        else:
            target = evidence_recipient or header.recipient_id
            blob = build_evidence(
                self.identity,
                self.registry.lookup(target),
                header,
                self.rng,
                encrypt=self.policy.encrypt_evidence,
            )
        return TpnrMessage(header=header, data=data, evidence=blob, annotations=annotations)

    # -- inbound ----------------------------------------------------------------

    def validate_and_open(self, message: TpnrMessage) -> OpenedEvidence:
        """Run the full §4.1/§5 inbound checks; returns opened evidence.

        Checks, in order: addressing, time limit (§5.5), sequence
        number monotonicity + nonce freshness (§5.3/§5.4), then the
        evidence signatures (§4.1).  Raises ReplayError / ProtocolError
        / EvidenceError; callers convert to rejections.
        """
        header = message.header
        if header.recipient_id != self.name:
            raise ProtocolError(
                f"message addressed to {header.recipient_id!r}, I am {self.name!r}"
            )
        if self.policy.enforce_time_limit and self.now > header.time_limit:
            raise ReplayError(
                f"message expired: now={self.now:.3f} > limit={header.time_limit:.3f}"
            )
        self.peer_state(header.sender_id).check_receive(
            header.sequence_number,
            header.nonce,
            enforce_sequence=self.policy.enforce_sequence,
            enforce_nonce=self.policy.enforce_nonce,
        )
        # The (seq, nonce) pair is consumed: journal it before anything
        # acts on the message, or a crash+restart would accept a replay.
        if self.journal is not None:
            self.journal.log_recv(header)
        if not self.policy.verify_evidence:
            # Status-quo ablation: accept without evidence (still store
            # an unverified placeholder so flows continue).
            return OpenedEvidence(
                header=header,
                signature_over_data_hash=b"",
                signature_over_header=b"",
                signer=header.sender_id,
            )
        opened = open_evidence(
            self.identity,
            self.registry.lookup(header.sender_id),
            header.sender_id,
            header,
            message.evidence,
        )
        return opened

    def reject(self, kind: str, reason: str) -> None:
        """Record a rejected inbound message (attack metrics read this)."""
        self.rejected_messages.append((kind, reason))
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("party.rejections", party=self.name, kind=kind).inc()

    def corrupted_inbound(self, envelope: Envelope) -> bool:
        """Reject an envelope flagged corrupted in transit; True if so.

        A corrupted message would fail signature/hash checks anyway;
        rejecting it up front keeps the rejection reason crisp and lets
        the sender's retransmission loop supply a clean copy.
        """
        if getattr(envelope, "corrupted", False):
            self.reject(envelope.kind, "payload corrupted in transit")
            return True
        return False

    # -- retransmission ---------------------------------------------------------

    def arm_retransmit(
        self,
        key: Hashable,
        dst: str,
        kind: str,
        rebuild: Callable[[], TpnrMessage],
        still_needed: Callable[[], bool],
    ) -> None:
        """Start a retransmission loop for one unacknowledged message.

        *rebuild* must construct a **fresh** message (new sequence
        number, nonce, and time limit) each time — re-sending the
        original bytes would trip the receiver's own anti-replay
        checks.  *still_needed* is consulted before every firing; the
        loop also stops when :meth:`cancel_retransmit` is called with
        the same *key* or the ``max_retransmits`` budget is spent.
        """
        self.cancel_retransmit(key)
        if self.policy.max_retransmits == 0:
            return
        state = _RetransmitState(
            dst=dst,
            kind=kind,
            rebuild=rebuild,
            still_needed=still_needed,
            attempts_left=self.policy.max_retransmits,
            delay=self.policy.retransmit_initial,
        )
        self._retransmits[key] = state
        state.event = self.set_timeout(state.delay, lambda: self._retransmit_fire(key))

    def cancel_retransmit(self, key: Hashable) -> None:
        state = self._retransmits.pop(key, None)
        if state is not None and state.event is not None:
            state.event.cancel()

    def cancel_all_retransmits(self) -> None:
        for key in list(self._retransmits):
            self.cancel_retransmit(key)

    def _retransmit_fire(self, key: Hashable) -> None:
        state = self._retransmits.get(key)
        if state is None:
            return
        if not state.still_needed() or state.attempts_left <= 0:
            self.cancel_retransmit(key)
            return
        state.attempts_left -= 1
        self.retransmits_sent += 1
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "party.retransmits", party=self.name, kind=state.kind
            ).inc()
        self.send(state.dst, state.kind, state.rebuild())
        if state.attempts_left <= 0:
            self.cancel_retransmit(key)
            return
        state.delay = min(
            state.delay * self.policy.retransmit_backoff, self.policy.retransmit_cap
        )
        state.event = self.set_timeout(state.delay, lambda: self._retransmit_fire(key))
