"""Shared machinery for TPNR protocol roles.

:class:`TpnrParty` extends the network :class:`~repro.net.node.Node`
with everything every role needs: an identity + key registry, the
policy, per-peer anti-replay state, an evidence store, and helpers to
build outbound messages (allocating sequence numbers and nonces,
stamping time limits, attaching evidence) and to validate inbound ones
(time limit, sequence, nonce, evidence verification).
"""

from __future__ import annotations

from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity, KeyRegistry
from ..errors import ProtocolError, ReplayError
from ..net.node import Node
from .evidence import OpenedEvidence, build_evidence, open_evidence
from .messages import Flag, Header, TpnrMessage
from .policy import DEFAULT_POLICY, TpnrPolicy
from .transaction import EvidenceStore, PeerState, TransactionRecord

__all__ = ["TpnrParty"]

_NONCE_SIZE = 16


class TpnrParty(Node):
    """Base class for Alice / Bob / the TTP."""

    def __init__(
        self,
        identity: Identity,
        registry: KeyRegistry,
        rng: HmacDrbg,
        ttp_name: str = "",
        policy: TpnrPolicy = DEFAULT_POLICY,
    ) -> None:
        super().__init__(identity.name)
        self.identity = identity
        self.registry = registry
        self.policy = policy
        self.ttp_name = ttp_name
        self.rng = rng.fork(f"tpnr/{identity.name}")
        self.evidence_store = EvidenceStore(identity.name)
        self.transactions: dict[str, TransactionRecord] = {}
        self._peers: dict[str, PeerState] = {}
        self.rejected_messages: list[tuple[str, str]] = []  # (kind, reason)

    # -- state helpers -------------------------------------------------------

    def peer_state(self, peer: str) -> PeerState:
        return self._peers.setdefault(peer, PeerState())

    def record(self, transaction_id: str) -> TransactionRecord:
        try:
            return self.transactions[transaction_id]
        except KeyError as exc:
            raise ProtocolError(
                f"{self.name} has no transaction {transaction_id!r}"
            ) from exc

    # -- outbound --------------------------------------------------------------

    def make_header(
        self,
        flag: Flag,
        recipient: str,
        transaction_id: str,
        data_hash: bytes,
    ) -> Header:
        """Allocate seq + nonce and stamp the time limit for one message."""
        return Header(
            flag=flag,
            sender_id=self.name,
            recipient_id=recipient,
            ttp_id=self.ttp_name,
            transaction_id=transaction_id,
            sequence_number=self.peer_state(recipient).allocate_seq(),
            nonce=self.rng.generate(_NONCE_SIZE),
            time_limit=self.now + self.policy.message_time_limit,
            data_hash=data_hash,
        )

    def make_message(
        self,
        header: Header,
        data: bytes | None = None,
        annotations: tuple[tuple[str, str], ...] = (),
        evidence_recipient: str | None = None,
    ) -> TpnrMessage:
        """Attach evidence (encrypted to *evidence_recipient*, default
        the header's recipient) and assemble the wire message."""
        target = evidence_recipient or header.recipient_id
        blob = build_evidence(
            self.identity,
            self.registry.lookup(target),
            header,
            self.rng,
            encrypt=self.policy.encrypt_evidence,
        )
        return TpnrMessage(header=header, data=data, evidence=blob, annotations=annotations)

    # -- inbound ----------------------------------------------------------------

    def validate_and_open(self, message: TpnrMessage) -> OpenedEvidence:
        """Run the full §4.1/§5 inbound checks; returns opened evidence.

        Checks, in order: addressing, time limit (§5.5), sequence
        number monotonicity + nonce freshness (§5.3/§5.4), then the
        evidence signatures (§4.1).  Raises ReplayError / ProtocolError
        / EvidenceError; callers convert to rejections.
        """
        header = message.header
        if header.recipient_id != self.name:
            raise ProtocolError(
                f"message addressed to {header.recipient_id!r}, I am {self.name!r}"
            )
        if self.policy.enforce_time_limit and self.now > header.time_limit:
            raise ReplayError(
                f"message expired: now={self.now:.3f} > limit={header.time_limit:.3f}"
            )
        self.peer_state(header.sender_id).check_receive(
            header.sequence_number,
            header.nonce,
            enforce_sequence=self.policy.enforce_sequence,
            enforce_nonce=self.policy.enforce_nonce,
        )
        if not self.policy.verify_evidence:
            # Status-quo ablation: accept without evidence (still store
            # an unverified placeholder so flows continue).
            return OpenedEvidence(
                header=header,
                signature_over_data_hash=b"",
                signature_over_header=b"",
                signer=header.sender_id,
            )
        opened = open_evidence(
            self.identity,
            self.registry.lookup(header.sender_id),
            header.sender_id,
            header,
            message.evidence,
        )
        return opened

    def reject(self, kind: str, reason: str) -> None:
        """Record a rejected inbound message (attack metrics read this)."""
        self.rejected_messages.append((kind, reason))
