"""Binary wire codec for TPNR messages.

The simulator passes Python objects around, which is fine for protocol
logic but dodges two real-system questions: what exactly goes on the
wire, and how do TPNR messages ride inside an encrypted transport
(:mod:`repro.net.securechannel`)?  This codec answers both: a compact,
versioned, length-prefixed binary encoding of
:class:`~repro.core.messages.TpnrMessage` — including recursively
embedded messages — with strict decoding (unknown versions, truncated
frames, and trailing garbage are all errors).

Frame layout (all integers big-endian)::

    magic "TPNR" | version u8
    header: flag u8 | 5x str16 | seq u32 | nonce b16 | time_limit f64 | hash b32
    data:   present u8 [| len u32 | bytes]
    evidence: len u32 | bytes
    annotations: count u16 | (key str16 | value str16)*
    embedded: count u16 | (frame len u32 | frame)*

``str16`` = u16 length + UTF-8 bytes; ``b16``/``b32`` fixed-size raw.
"""

from __future__ import annotations

import struct

from ..errors import ProtocolError
from .messages import Flag, Header, TpnrMessage

__all__ = ["encode_message", "decode_message", "CODEC_VERSION"]

_MAGIC = b"TPNR"
CODEC_VERSION = 1

_FLAG_IDS = {flag: i for i, flag in enumerate(Flag)}
_FLAGS_BY_ID = {i: flag for flag, i in _FLAG_IDS.items()}

_NONCE_SIZE = 16
_HASH_SIZE = 32


class _Writer:
    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack(">B", v))

    def u16(self, v: int) -> None:
        self.parts.append(struct.pack(">H", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack(">I", v))

    def f64(self, v: float) -> None:
        self.parts.append(struct.pack(">d", v))

    def raw(self, v: bytes) -> None:
        self.parts.append(v)

    def str16(self, v: str) -> None:
        encoded = v.encode()
        if len(encoded) > 0xFFFF:
            raise ProtocolError("string field too long for str16")
        self.u16(len(encoded))
        self.raw(encoded)

    def bytes32(self, v: bytes) -> None:
        self.u32(len(v))
        self.raw(v)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, buffer: bytes) -> None:
        self.buffer = buffer
        self.offset = 0

    def _take(self, n: int) -> bytes:
        if self.offset + n > len(self.buffer):
            raise ProtocolError("truncated TPNR frame")
        out = self.buffer[self.offset : self.offset + n]
        self.offset += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def str16(self) -> str:
        raw = self._take(self.u16())
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in string field: {exc}") from exc

    def bytes32(self) -> bytes:
        return self._take(self.u32())

    def done(self) -> bool:
        return self.offset == len(self.buffer)


def _encode_header(w: _Writer, header: Header) -> None:
    w.u8(_FLAG_IDS[header.flag])
    w.str16(header.sender_id)
    w.str16(header.recipient_id)
    w.str16(header.ttp_id)
    w.str16(header.transaction_id)
    w.u32(header.sequence_number)
    if len(header.nonce) != _NONCE_SIZE:
        raise ProtocolError(f"codec requires {_NONCE_SIZE}-byte nonces")
    w.raw(header.nonce)
    w.f64(header.time_limit)
    if len(header.data_hash) != _HASH_SIZE:
        raise ProtocolError(f"codec requires {_HASH_SIZE}-byte data hashes")
    w.raw(header.data_hash)


def _decode_header(r: _Reader) -> Header:
    flag_id = r.u8()
    if flag_id not in _FLAGS_BY_ID:
        raise ProtocolError(f"unknown flag id {flag_id}")
    return Header(
        flag=_FLAGS_BY_ID[flag_id],
        sender_id=r.str16(),
        recipient_id=r.str16(),
        ttp_id=r.str16(),
        transaction_id=r.str16(),
        sequence_number=r.u32(),
        nonce=r.raw(_NONCE_SIZE),
        time_limit=r.f64(),
        data_hash=r.raw(_HASH_SIZE),
    )


def _encode_body(message: TpnrMessage) -> bytes:
    w = _Writer()
    w.raw(_MAGIC)
    w.u8(CODEC_VERSION)
    _encode_header(w, message.header)
    if message.data is None:
        w.u8(0)
    else:
        w.u8(1)
        w.bytes32(message.data)
    w.bytes32(message.evidence)
    w.u16(len(message.annotations))
    for key, value in message.annotations:
        w.str16(key)
        w.str16(value)
    w.u16(len(message.embedded))
    for inner in message.embedded:
        frame = _encode_body(inner)
        w.bytes32(frame)
    return w.getvalue()


def encode_message(message: TpnrMessage) -> bytes:
    """Serialize a message (and its embedded messages) to wire bytes."""
    return _encode_body(message)


def _decode_body(r: _Reader) -> TpnrMessage:
    if r.raw(4) != _MAGIC:
        raise ProtocolError("bad TPNR frame magic")
    version = r.u8()
    if version != CODEC_VERSION:
        raise ProtocolError(f"unsupported codec version {version}")
    header = _decode_header(r)
    data = r.bytes32() if r.u8() else None
    evidence = r.bytes32()
    annotations = tuple((r.str16(), r.str16()) for _ in range(r.u16()))
    embedded = []
    for _ in range(r.u16()):
        frame = r.bytes32()
        embedded.append(decode_message(frame))
    return TpnrMessage(header=header, data=data, evidence=evidence,
                       annotations=annotations, embedded=tuple(embedded))


def decode_message(frame: bytes) -> TpnrMessage:
    """Strictly parse wire bytes back into a message.

    Raises :class:`ProtocolError` on truncation, bad magic/version, or
    trailing garbage.
    """
    r = _Reader(frame)
    message = _decode_body(r)
    if not r.done():
        raise ProtocolError("trailing bytes after TPNR frame")
    return message
