"""Client-side confidentiality (paper §2.4, concern 1).

"Although she is the storage service provider and has full access to
the data, Eve is considered as an untrustworthy third party and Alice
and Bob do not want reveal the data to her."  The paper answers this
with "robust encryption schemes" and moves on; this module supplies
that layer so the examples can run the *complete* scenario:

* the uploader seals the payload under a fresh data key (AEAD);
* the data key is wrapped to each authorized reader's public key
  (RSA-KEM), so sharing needs no out-of-band secret channel;
* the provider stores — and signs receipts for — ciphertext only.

The non-repudiation layer is completely unchanged: TPNR hashes and
signs whatever bytes it is given, so evidence now binds the parties to
the *ciphertext*, which is exactly what a dispute needs (the provider
can be convicted of tampering without anyone revealing plaintext).
"""

from __future__ import annotations

import struct

from ..crypto import aead, kem
from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity, KeyRegistry
from ..errors import DecryptionError

__all__ = ["seal_payload", "open_payload", "recipients_of"]

_MAGIC = b"repro-confidential-v1"
_KEY_LEN = 32


def seal_payload(
    plaintext: bytes,
    recipients: list[str],
    registry: KeyRegistry,
    rng: HmacDrbg,
) -> bytes:
    """Encrypt *plaintext* readable by every listed recipient.

    Format::

        MAGIC || n_recipients(2B)
        [ name_len(2B) || name || blob_len(4B) || wrapped_key_blob ]*
        sealed_payload
    """
    data_key = rng.generate(_KEY_LEN)
    nonce = rng.generate(12)
    parts = [_MAGIC, struct.pack(">H", len(recipients))]
    for name in recipients:
        wrapped = kem.hybrid_encrypt(registry.lookup(name), data_key, rng,
                                     aad=b"confidential-key|" + name.encode())
        encoded_name = name.encode()
        parts.append(struct.pack(">H", len(encoded_name)))
        parts.append(encoded_name)
        parts.append(struct.pack(">I", len(wrapped)))
        parts.append(wrapped)
    parts.append(aead.seal(data_key, nonce, plaintext, aad=_MAGIC))
    return b"".join(parts)


def _parse(blob: bytes) -> tuple[dict[str, bytes], bytes]:
    if not blob.startswith(_MAGIC):
        raise DecryptionError("not a confidential payload")
    offset = len(_MAGIC)
    (count,) = struct.unpack_from(">H", blob, offset)
    offset += 2
    wrapped_keys: dict[str, bytes] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from(">H", blob, offset)
        offset += 2
        name = blob[offset : offset + name_len].decode()
        offset += name_len
        (blob_len,) = struct.unpack_from(">I", blob, offset)
        offset += 4
        wrapped_keys[name] = blob[offset : offset + blob_len]
        offset += blob_len
    return wrapped_keys, blob[offset:]


def recipients_of(blob: bytes) -> list[str]:
    """Who can open this payload (metadata; no keys needed)."""
    wrapped_keys, _ = _parse(blob)
    return sorted(wrapped_keys)


def open_payload(blob: bytes, identity: Identity) -> bytes:
    """Decrypt a confidential payload as one of its recipients."""
    wrapped_keys, sealed = _parse(blob)
    wrapped = wrapped_keys.get(identity.name)
    if wrapped is None:
        raise DecryptionError(
            f"{identity.name!r} is not a recipient of this payload "
            f"(recipients: {sorted(wrapped_keys)})"
        )
    data_key = kem.hybrid_decrypt(identity.private_key, wrapped,
                                  aad=b"confidential-key|" + identity.name.encode())
    return aead.open_(data_key, sealed, aad=_MAGIC)
