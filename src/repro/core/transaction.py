"""Transaction state, evidence stores, and anti-replay bookkeeping.

Each TPNR role keeps a :class:`TransactionRecord` per transaction ID
and a :class:`PeerState` per counterparty carrying the monotonically
increasing sequence number ("The sequence number increases one by
one") and the set of seen nonces.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..errors import ProtocolError, ReplayError
from .evidence import OpenedEvidence

__all__ = [
    "TxStatus",
    "TransactionRecord",
    "PeerState",
    "EvidenceStore",
    "new_transaction_id",
]

_txn_counter = itertools.count(1)


def new_transaction_id(prefix: str = "TXN") -> str:
    """Process-unique transaction identifier."""
    return f"{prefix}-{next(_txn_counter):08d}"


class TxStatus(enum.Enum):
    """Lifecycle of one transaction as a party sees it."""

    PENDING = "pending"
    COMPLETED = "completed"
    ABORTED = "aborted"
    RESOLVING = "resolving"
    RESOLVED = "resolved"
    FAILED = "failed"


@dataclass
class TransactionRecord:
    """One party's view of one transaction."""

    transaction_id: str
    role: str  # "client" | "provider" | "ttp"
    peer: str
    status: TxStatus = TxStatus.PENDING
    data_hash: bytes = b""
    data_size: int = 0
    started_at: float = 0.0
    finished_at: float | None = None
    detail: str = ""

    def finish(self, status: TxStatus, at_time: float, detail: str = "") -> None:
        if self.status not in (TxStatus.PENDING, TxStatus.RESOLVING):
            raise ProtocolError(
                f"transaction {self.transaction_id} already {self.status.value}"
            )
        self.status = status
        self.finished_at = at_time
        if detail:
            self.detail = detail


@dataclass
class PeerState:
    """Anti-replay state for one (us, peer) direction pair."""

    next_send_seq: int = 0
    highest_recv_seq: int = -1
    seen_nonces: set[bytes] = field(default_factory=set)

    def allocate_seq(self) -> int:
        seq = self.next_send_seq
        self.next_send_seq += 1
        return seq

    def check_receive(
        self,
        seq: int,
        nonce: bytes,
        *,
        enforce_sequence: bool = True,
        enforce_nonce: bool = True,
    ) -> None:
        """Validate and consume an inbound (seq, nonce) pair.

        Sequence numbers must strictly increase; nonces must be fresh.
        Raises :class:`ReplayError` on violation (when enforced).
        """
        if enforce_sequence and seq <= self.highest_recv_seq:
            raise ReplayError(
                f"sequence number {seq} not above high-water mark {self.highest_recv_seq}"
            )
        if enforce_nonce and nonce in self.seen_nonces:
            raise ReplayError("nonce reuse detected")
        self.highest_recv_seq = max(self.highest_recv_seq, seq)
        self.seen_nonces.add(nonce)


class EvidenceStore:
    """Per-party archive of opened evidence, keyed by transaction.

    This is what a party brings to the Arbitrator.  Multiple pieces per
    transaction are normal (upload NRO/NRR, download NRR, abort NRR,
    TTP statements...).
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._by_txn: dict[str, list[OpenedEvidence]] = {}
        self._seen: set[tuple[str, bytes]] = set()
        self.duplicates_suppressed = 0

    def add(self, evidence: OpenedEvidence) -> bool:
        """Archive one piece of evidence; returns False for an exact
        duplicate (same signer, same signed header bytes) — duplicate
        deliveries and retransmission races must never double-issue a
        stored piece of evidence."""
        key = (evidence.signer, evidence.header.to_signed_bytes())
        if key in self._seen:
            self.duplicates_suppressed += 1
            return False
        self._seen.add(key)
        self._by_txn.setdefault(evidence.header.transaction_id, []).append(evidence)
        return True

    def holds(self, evidence: OpenedEvidence) -> bool:
        """True if this exact piece (same signer, same signed header
        bytes) is already archived — i.e. :meth:`add` would dedup it."""
        return (evidence.signer, evidence.header.to_signed_bytes()) in self._seen

    def seen_keys(self) -> set[tuple[str, bytes]]:
        """Identity keys of everything archived (durability audits
        compare these against what the journal says must survive)."""
        return set(self._seen)

    def all_entries(self):
        """Every archived piece, grouped by transaction."""
        for entries in self._by_txn.values():
            yield from entries

    def for_transaction(self, transaction_id: str) -> list[OpenedEvidence]:
        return list(self._by_txn.get(transaction_id, []))

    def latest(self, transaction_id: str, flag=None) -> OpenedEvidence | None:
        """Most recent evidence for a transaction, optionally by flag."""
        candidates = self._by_txn.get(transaction_id, [])
        if flag is not None:
            candidates = [e for e in candidates if e.header.flag == flag]
        return candidates[-1] if candidates else None

    def transactions(self) -> list[str]:
        return sorted(self._by_txn)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_txn.values())
