"""The paper's primary contribution: the Two-Party Non-Repudiation
(TPNR) protocol for cloud storage (paper §4), with its three models —
Normal, Abort, Resolve — plus the evidence machinery (NRO/NRR), the
trusted third party, and the dispute arbitrator.
"""

from . import arbitrator, archive, client, confidential, evidence, messages, party, policy, protocol, provider, transaction, ttp
from .arbitrator import Arbitrator, Ruling, Verdict
from .archive import export_store, import_bundle, verify_bundle
from .confidential import open_payload, recipients_of, seal_payload
from .client import DownloadResult, TpnrClient, UploadHandle
from .evidence import OpenedEvidence, build_evidence, open_evidence, verify_opened_evidence
from .messages import AbortDecision, Flag, Header, ResolveAction, TpnrMessage
from .party import TpnrParty
from .policy import DEFAULT_POLICY, TpnrPolicy
from .protocol import (
    Deployment,
    SessionOutcome,
    dispute_missing_receipt,
    dispute_tampering,
    make_deployment,
    run_abort,
    run_download,
    run_session,
    run_shared_download,
    run_upload,
)
from .provider import HONEST, ProviderBehavior, TpnrProvider
from .transaction import (
    EvidenceStore,
    PeerState,
    TransactionRecord,
    TxStatus,
    new_transaction_id,
)
from .ttp import TrustedThirdParty

__all__ = [
    "arbitrator",
    "archive",
    "confidential",
    "export_store",
    "import_bundle",
    "verify_bundle",
    "open_payload",
    "recipients_of",
    "seal_payload",
    "client",
    "evidence",
    "messages",
    "party",
    "policy",
    "protocol",
    "provider",
    "transaction",
    "ttp",
    "Arbitrator",
    "Ruling",
    "Verdict",
    "DownloadResult",
    "TpnrClient",
    "UploadHandle",
    "OpenedEvidence",
    "build_evidence",
    "open_evidence",
    "verify_opened_evidence",
    "AbortDecision",
    "Flag",
    "Header",
    "ResolveAction",
    "TpnrMessage",
    "TpnrParty",
    "DEFAULT_POLICY",
    "TpnrPolicy",
    "Deployment",
    "SessionOutcome",
    "dispute_missing_receipt",
    "dispute_tampering",
    "make_deployment",
    "run_abort",
    "run_download",
    "run_session",
    "run_shared_download",
    "run_upload",
    "HONEST",
    "ProviderBehavior",
    "TpnrProvider",
    "EvidenceStore",
    "PeerState",
    "TransactionRecord",
    "TxStatus",
    "new_transaction_id",
    "TrustedThirdParty",
]
