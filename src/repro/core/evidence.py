"""Evidence construction and verification (paper §4.1).

The paper defines the evidence attached to every transmission as::

    Evidence = Encrypt_pk(recipient){ Sign(HashOfData), Sign(Plaintext) }

For Alice's messages the evidence is the **non-repudiation of origin
(NRO)**; for Bob's it is the **non-repudiation of receipt (NRR)**.  The
two signatures do different work:

* ``Sign(HashOfData)`` ties the sender to *exactly these bytes* —
  "not only facilitate detecting data tampering, the signature of the
  sender also makes it impossible for the sender to deny his/her
  activity";
* ``Sign(Plaintext)`` (the header) binds the transaction ID, sequence
  number, nonce, time limit, and role IDs, which is what defeats the
  §5 replay/interleaving attacks;
* the outer public-key encryption keeps the evidence confidential to
  the recipient and "guarantees the consistence of the hash with the
  plaintext".

:class:`OpenedEvidence` is what a recipient stores after decrypting and
verifying — exactly the object later handed to the Arbitrator.

**Batched evidence** (:class:`BatchedEvidence`) is the amortized form:
instead of two RSA signatures per message, the sender commits the
message's *evidence leaf* (a domain-separated digest binding signer +
header, hence transaction ID, sequence, nonce, time limit, and data
hash) into a Merkle batch and signs only the batch root
(:mod:`repro.crypto.batch`).  The recipient recomputes the leaf from
the header it independently validated, and the item is proven by its
inclusion proof against the one signed root — the same unforgeability
argument as per-message signatures (the signer cannot deny a leaf
under a root it signed), at ``1/K`` of the signing cost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto import kem, rsa
from ..crypto.batch import BatchLedger, BatchProof, verify_batch_proof
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import Identity, KeyRegistry
from ..errors import EvidenceError
from .messages import Header

__all__ = [
    "OpenedEvidence",
    "BatchedEvidence",
    "build_batched_evidence",
    "build_evidence",
    "evidence_leaf",
    "open_evidence",
    "verify_opened_evidence",
]

_DOMAIN_DATA = b"tpnr-evidence-data|"
_DOMAIN_HEADER = b"tpnr-evidence-header|"
_DOMAIN_LEAF = b"tpnr-evidence-leaf|"


def evidence_leaf(signer_name: str, header: Header) -> bytes:
    """The canonical digest a batched signer commits for *header*.

    Binds the signer name and the full signed header encoding (and
    through ``data_hash`` the payload bytes), so a leaf proven under a
    signed batch root carries the same commitments as the two
    per-message signatures it replaces.
    """
    return digest(
        "sha256",
        _DOMAIN_LEAF + signer_name.encode("utf-8") + b"|" + header.to_signed_bytes(),
    )


@dataclass(frozen=True)
class OpenedEvidence:
    """Decrypted, verified evidence as held by its recipient.

    ``kind`` is "NRO" when the header's sender is the transaction's
    client and "NRR" when it is the provider; the arbitration layer
    assigns it — cryptographically both are the same structure.
    """

    header: Header
    signature_over_data_hash: bytes
    signature_over_header: bytes
    signer: str

    def wire_size(self) -> int:
        return (
            self.header.wire_size()
            + len(self.signature_over_data_hash)
            + len(self.signature_over_header)
        )


@dataclass(frozen=True)
class BatchedEvidence(OpenedEvidence):
    """Evidence whose authenticity rests on a batch inclusion proof.

    Carries the recomputed *leaf* instead of per-message signatures
    (both signature fields are empty).  ``proof`` starts ``None`` —
    *pending* — until the signer seals the covering batch and
    settlement attaches the :class:`~repro.crypto.batch.BatchProof`;
    only then does :func:`verify_opened_evidence` accept it.
    """

    leaf: bytes = b""
    proof: BatchProof | None = None

    @property
    def pending(self) -> bool:
        return self.proof is None

    def resolve(self, proof: BatchProof) -> None:
        """Attach the inclusion proof once the covering batch seals."""
        object.__setattr__(self, "proof", proof)

    def wire_size(self) -> int:
        return self.header.wire_size() + len(self.leaf)


def _pack(sig_data: bytes, sig_header: bytes) -> bytes:
    return struct.pack(">H", len(sig_data)) + sig_data + sig_header


def _unpack(blob: bytes) -> tuple[bytes, bytes]:
    if len(blob) < 2:
        raise EvidenceError("evidence blob too short")
    (n,) = struct.unpack(">H", blob[:2])
    sig_data, sig_header = blob[2 : 2 + n], blob[2 + n :]
    if len(sig_data) != n or not sig_header:
        raise EvidenceError("evidence blob truncated")
    return sig_data, sig_header


def build_evidence(
    sender: Identity,
    recipient_public: rsa.RsaPublicKey,
    header: Header,
    rng: HmacDrbg,
    encrypt: bool = True,
) -> bytes:
    """Construct the evidence blob for *header*.

    ``encrypt=False`` is the ablation knob (DESIGN.md §5.1): it ships
    the two signatures in the clear, which the attack benchmarks use to
    show what the outer encryption buys.
    """
    sig_data = rsa.sign(sender.private_key, _DOMAIN_DATA + header.data_hash)
    sig_header = rsa.sign(sender.private_key, _DOMAIN_HEADER + header.to_signed_bytes())
    packed = _pack(sig_data, sig_header)
    if not encrypt:
        return b"PLAIN" + packed
    # cache_scope=sender.name lets an installed crypto cache reuse this
    # sender's per-recipient session key (a no-op when no cache is on).
    return b"ENC--" + kem.hybrid_encrypt(
        recipient_public, packed, rng, aad=b"tpnr-evidence", cache_scope=sender.name
    )


def build_batched_evidence(sender: Identity, header: Header, batcher) -> bytes:
    """Commit *header*'s leaf into the sender's batch and return the
    wire blob (``BATCH`` framing + the 32-byte leaf — fixed length, so
    wire accounting is independent of batch layout).

    The blob itself carries no signature; authenticity arrives when the
    batch seals and the recipient resolves the inclusion proof against
    the one signed root.
    """
    leaf = evidence_leaf(sender.name, header)
    batcher.add(leaf)
    return b"BATCH" + leaf


def open_evidence(
    recipient: Identity,
    sender_public: rsa.RsaPublicKey,
    sender_name: str,
    header: Header,
    blob: bytes,
) -> OpenedEvidence:
    """Decrypt and verify an evidence blob against *header*.

    Raises :class:`EvidenceError` on any inconsistency: undecryptable
    blob, bad signature over the data hash, bad signature over the
    header — "the peers should check the consistency between the hash
    of the plaintext and the plaintext at first".
    """
    if blob[:5] == b"BATCH":
        # Batched framing: the blob is the sender's committed leaf.  We
        # recompute the leaf from the header we independently validated
        # — a mismatch means the blob commits to *different* header
        # bytes than the ones on the wire, and is rejected here exactly
        # like a bad header signature on the classic path.
        claimed = blob[5:]
        expected = evidence_leaf(sender_name, header)
        if claimed != expected:
            raise EvidenceError("batched evidence leaf does not match header")
        return BatchedEvidence(
            header=header,
            signature_over_data_hash=b"",
            signature_over_header=b"",
            signer=sender_name,
            leaf=expected,
        )
    if blob[:5] == b"PLAIN":
        packed = blob[5:]
    elif blob[:5] == b"ENC--":
        try:
            packed = kem.hybrid_decrypt(recipient.private_key, blob[5:], aad=b"tpnr-evidence")
        except Exception as exc:
            raise EvidenceError(f"evidence decryption failed: {exc}") from exc
    else:
        raise EvidenceError("unknown evidence framing")
    sig_data, sig_header = _unpack(packed)
    if not rsa.verify(sender_public, _DOMAIN_DATA + header.data_hash, sig_data):
        raise EvidenceError("signature over data hash invalid")
    if not rsa.verify(sender_public, _DOMAIN_HEADER + header.to_signed_bytes(), sig_header):
        raise EvidenceError("signature over plaintext header invalid")
    return OpenedEvidence(
        header=header,
        signature_over_data_hash=sig_data,
        signature_over_header=sig_header,
        signer=sender_name,
    )


def verify_opened_evidence(
    evidence: OpenedEvidence,
    registry: KeyRegistry,
    ledger: BatchLedger | None = None,
) -> bool:
    """Re-verify stored evidence from public information only.

    This is the Arbitrator's check: given the claimed signer's
    registered public key, do both signatures hold for the header the
    evidence carries?

    Batched evidence verifies differently but equivalently: the leaf
    must be the canonical digest of (signer, header), the inclusion
    proof must tie that leaf to a batch root, and the root's one
    signature must verify under the signer's key.  A *pending* item
    (no proof attached and none found on the optional *ledger*) is
    NOT valid — unsettled evidence proves nothing.
    """
    try:
        public = registry.lookup(evidence.signer)
    except Exception:
        return False
    if isinstance(evidence, BatchedEvidence):
        if evidence.leaf != evidence_leaf(evidence.signer, evidence.header):
            return False
        proof = evidence.proof
        if proof is None and ledger is not None:
            proof = ledger.proof_for(evidence.signer, evidence.leaf)
        if proof is None or proof.signer != evidence.signer:
            return False
        if proof.leaf != evidence.leaf:
            return False
        return verify_batch_proof(public, proof)
    if not rsa.verify(public, _DOMAIN_DATA + evidence.header.data_hash,
                      evidence.signature_over_data_hash):
        return False
    return rsa.verify(
        public,
        _DOMAIN_HEADER + evidence.header.to_signed_bytes(),
        evidence.signature_over_header,
    )
