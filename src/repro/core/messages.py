"""TPNR message structures (paper §4.1).

Every TPNR transmission carries a **plaintext header** with, as the
paper specifies: a flag labelling the process, the IDs of sender /
recipient / TTP, a nonce ("a random number"), a monotonically
increasing sequence number, a time limit, and the hash of the data.
Alongside the header travel the optional bulk payload and the
**evidence** blob (built in :mod:`repro.core.evidence`).

Headers have a canonical byte encoding (:meth:`Header.to_signed_bytes`)
— that is what the sender signs and what receivers check signatures
against, so any in-flight modification of the plaintext invalidates the
evidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ProtocolError

__all__ = ["Flag", "Header", "TpnrMessage", "AbortDecision", "ResolveAction"]


class Flag(enum.Enum):
    """The header flag "to label the process"."""

    UPLOAD = "UPLOAD"
    UPLOAD_RECEIPT = "UPLOAD_RECEIPT"
    DOWNLOAD_REQUEST = "DOWNLOAD_REQUEST"
    DOWNLOAD_RESPONSE = "DOWNLOAD_RESPONSE"
    DOWNLOAD_ACK = "DOWNLOAD_ACK"
    GRANT = "GRANT"
    GRANT_ACK = "GRANT_ACK"
    ABORT = "ABORT"
    ABORT_ACCEPT = "ABORT_ACCEPT"
    ABORT_REJECT = "ABORT_REJECT"
    ABORT_ERROR = "ABORT_ERROR"
    RESOLVE_REQUEST = "RESOLVE_REQUEST"
    RESOLVE_QUERY = "RESOLVE_QUERY"
    RESOLVE_REPLY = "RESOLVE_REPLY"
    RESOLVE_RESULT = "RESOLVE_RESULT"
    RESOLVE_FAILED = "RESOLVE_FAILED"


class AbortDecision(enum.Enum):
    """Bob's answer to an Abort request (§4.2)."""

    ACCEPT = "accept"
    REJECT = "reject"
    ERROR = "error"  # malformed request: double-check, regenerate, resubmit


class ResolveAction(enum.Enum):
    """Bob's declared action in a Resolve reply (§4.3)."""

    CONTINUE = "continue"
    RESTART = "restart"
    REFUSE = "refuse"


@dataclass(frozen=True)
class Header:
    """The plaintext part of every TPNR message."""

    flag: Flag
    sender_id: str
    recipient_id: str
    ttp_id: str
    transaction_id: str
    sequence_number: int
    nonce: bytes
    time_limit: float  # absolute simulated deadline for accepting this message
    data_hash: bytes  # hash of the payload (or of the referenced stored data)

    def __post_init__(self) -> None:
        if self.sequence_number < 0:
            raise ProtocolError("sequence number must be non-negative")
        if not self.nonce:
            raise ProtocolError("nonce must be non-empty")

    def to_signed_bytes(self) -> bytes:
        """Canonical encoding covered by the sender's signature."""
        return "|".join(
            [
                "tpnr-header-v1",
                self.flag.value,
                self.sender_id,
                self.recipient_id,
                self.ttp_id,
                self.transaction_id,
                str(self.sequence_number),
                self.nonce.hex(),
                repr(self.time_limit),
                self.data_hash.hex(),
            ]
        ).encode()

    def wire_size(self) -> int:
        return len(self.to_signed_bytes())

    def with_flag(self, flag: Flag) -> "Header":
        return replace(self, flag=flag)


@dataclass(frozen=True)
class TpnrMessage:
    """Header + optional bulk data + evidence blob.

    ``embedded`` carries whole relayed messages: in Resolve mode the
    TTP forwards Bob's reply — whose evidence is encrypted to *Alice*
    and therefore opaque to the TTP — inside its own RESOLVE_RESULT.
    """

    header: Header
    data: bytes | None
    evidence: bytes  # output of evidence.build_evidence (possibly unencrypted in ablations)
    annotations: tuple[tuple[str, str], ...] = ()  # e.g. abort decision, resolve action
    embedded: tuple["TpnrMessage", ...] = ()

    def annotation(self, key: str, default: str = "") -> str:
        for k, v in self.annotations:
            if k == key:
                return v
        return default

    def wire_size(self) -> int:
        return (
            self.header.wire_size()
            + (len(self.data) if self.data else 0)
            + len(self.evidence)
            + sum(len(k) + len(v) for k, v in self.annotations)
            + sum(m.wire_size() for m in self.embedded)
        )
