"""Reflection attack (paper §5.2).

"A reflection attack is a method of attacking a challenge-response
authentication system that uses the same protocol in both directions.
Our protocol is not a challenge-response authentication system;
furthermore, each message contains a unique identifier."

Two targets:

* the textbook victim — :class:`repro.attacks.naive.NaiveChallengeResponse`,
  where the attacker gets the victim to answer its own challenge;
* TPNR — the adversary bounces Alice's own UPLOAD back at her; the
  message is addressed (sender/recipient IDs are inside the signed
  header), so Alice rejects it.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.protocol import make_deployment
from ..crypto.drbg import HmacDrbg
from ..net.adversary import Adversary
from ..net.network import Envelope
from .base import Attack, AttackResult
from .naive import NaiveChallengeResponse

__all__ = ["ReflectionAttack", "ReflectorAdversary"]


class ReflectorAdversary(Adversary):
    """Bounces selected messages back to their sender."""

    def __init__(self, kind_to_reflect: str) -> None:
        super().__init__(name="reflector", positions=None)
        self.kind_to_reflect = kind_to_reflect
        self.reflected = 0

    def on_intercept(self, envelope: Envelope) -> None:
        self.seen.append(envelope)
        self.forward(envelope)
        if envelope.kind == self.kind_to_reflect:
            self.reflected += 1
            bounced = replace(envelope, dst=envelope.src)
            self.network.inject(bounced, mark="inject")


class ReflectionAttack(Attack):
    """Same-protocol-both-directions reflection."""

    name = "reflection"
    paper_section = "5.2"

    def run(self, seed: bytes, naive_target: bool = False) -> AttackResult:
        if naive_target:
            return self._run_naive(seed)
        return self._run_tpnr(seed)

    def _run_naive(self, seed: bytes) -> AttackResult:
        rng = HmacDrbg(seed, b"reflection")
        victim = NaiveChallengeResponse(shared_key=rng.generate(32))
        # The victim challenges the attacker...
        victims_challenge = rng.generate(16)
        # ...the attacker has no key, so it opens a reverse session and
        # presents the victim's own challenge back to it...
        answer_from_victim = victim.respond(victims_challenge)
        # ...and replays the answer as its own response.
        authenticated = victim.verify(victims_challenge, answer_from_victim)
        return AttackResult(
            attack=self.name,
            target="naive-challenge-response",
            succeeded=authenticated,
            detail="victim answered its own challenge; attacker authenticated "
            "with zero knowledge of the key"
            if authenticated
            else "victim rejected the echoed response",
            messages_intercepted=1,
            messages_injected=1,
        )

    def _run_tpnr(self, seed: bytes) -> AttackResult:
        dep = make_deployment(seed=seed + b"/reflection")
        adversary = ReflectorAdversary("tpnr.upload")
        dep.network.install_adversary(adversary)
        dep.client.upload(dep.provider.name, b"reflect me if you can")
        dep.run()
        # Success would mean Alice processed her own reflected UPLOAD
        # as if it were a response from Bob.
        reflected_accepted = any(
            e.header.flag.value == "UPLOAD" for e in
            (ev for txn in dep.client.evidence_store.transactions()
             for ev in dep.client.evidence_store.for_transaction(txn)
             if ev.signer == dep.client.name)
        )
        rejection = next(
            (reason for kind, reason in dep.client.rejected_messages if "addressed" in reason),
            "",
        )
        return AttackResult(
            attack=self.name,
            target="tpnr/full",
            succeeded=reflected_accepted,
            detail=f"reflected message rejected: {rejection}"
            if not reflected_accepted
            else "client accepted its own reflected message",
            messages_intercepted=len(adversary.seen),
            messages_injected=adversary.reflected,
        )
