"""Timeliness attack (paper §5.5).

"Without deadline, the protocol does not know when the step is
terminated...  In this protocol, we add a time limit field into the
message in order to limit the reception time of a message."

The adversary holds Alice's UPLOAD hostage and releases it long after
its time limit.  With enforcement on, the provider refuses the stale
message and Alice's side has meanwhile terminated deterministically
(time-out -> Resolve); with the time-limit field ignored, the provider
happily accepts an arbitrarily old message — the indefinite-limbo
failure the field exists to prevent.
"""

from __future__ import annotations

from ..core.policy import DEFAULT_POLICY
from ..core.protocol import make_deployment
from ..core.transaction import TxStatus
from ..net.adversary import Adversary
from ..net.network import Envelope
from .base import Attack, AttackResult

__all__ = ["TimelinessAttack", "DelayAdversary"]


class DelayAdversary(Adversary):
    """Holds every matching message and releases them all much later.

    Holding *every* matching transmission (not just the first) matters
    now that senders retransmit: a single held copy would simply be
    outrun by a fresh retransmission.  Interception times are strictly
    increasing, so ``replay_later`` with a fixed delay preserves the
    original send order — the stale messages arrive with their sequence
    numbers still monotone.
    """

    def __init__(self, kind_to_delay: str, delay: float) -> None:
        super().__init__(name="delayer", positions=None)
        self.kind_to_delay = kind_to_delay
        self.delay = delay
        self.delayed = 0

    def on_intercept(self, envelope: Envelope) -> None:
        self.seen.append(envelope)
        if envelope.kind == self.kind_to_delay:
            self.delayed += 1
            self.replay_later(envelope, self.delay)
        else:
            self.forward(envelope)


class TimelinessAttack(Attack):
    """Deliver a message long past its deadline."""

    name = "timeliness"
    paper_section = "5.5"

    def run(self, seed: bytes, weakened: bool = False) -> AttackResult:
        policy = DEFAULT_POLICY
        if weakened:
            # No deadline — and the stale message must not be caught by
            # the other replay defences either, since it is its first
            # (very late) delivery; seq/nonce are legitimately fresh.
            policy = policy.weakened(enforce_time_limit=False)
        target = "tpnr/no-time-limit" if weakened else "tpnr/full"
        dep = make_deployment(seed=seed + b"/timeliness", policy=policy)
        # Hold the upload 10x past its time limit.
        delay = policy.message_time_limit * 10
        adversary = DelayAdversary("tpnr.upload", delay=delay)
        dep.network.install_adversary(adversary)
        txn = dep.client.upload(dep.provider.name, b"stale by the time it lands",
                                auto_resolve=False)
        dep.run()
        provider_accepted = txn in dep.provider.transactions
        client_status = dep.client.transactions[txn].status
        client_terminated = client_status is not TxStatus.PENDING
        succeeded = provider_accepted
        detail = (
            f"provider accepted a message {delay:.0f}s old (limit was "
            f"{policy.message_time_limit:.0f}s); client side had already "
            f"terminated as {client_status.value}"
            if succeeded
            else f"stale message rejected; client terminated finitely as {client_status.value}"
        )
        return AttackResult(
            attack=self.name,
            target=target,
            succeeded=succeeded,
            detail=detail + ("" if client_terminated else " (client still pending!)"),
            messages_intercepted=len(adversary.seen),
            messages_injected=adversary.delayed,
        )
