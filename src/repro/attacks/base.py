"""Attack framework for the §5 robustness analysis.

Each attack implements :class:`Attack` and is run against a *target
configuration* — the full TPNR protocol, a deliberately weakened TPNR
variant (one defence switched off via
:meth:`repro.core.policy.TpnrPolicy.weakened`), or a naive strawman
protocol (:mod:`repro.attacks.naive`).  The result records whether the
adversary achieved its goal, so the S5 benchmark can print the
attack x target success matrix the paper's §5 argues about.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["AttackResult", "Attack"]


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one attack run."""

    attack: str
    target: str
    succeeded: bool
    detail: str
    messages_intercepted: int = 0
    messages_injected: int = 0


class Attack(abc.ABC):
    """One of the five §5 attack classes."""

    #: name used in reports
    name: str = "abstract"
    #: the §5 subsection this reproduces
    paper_section: str = ""

    @abc.abstractmethod
    def run(self, seed: bytes, **target_config) -> AttackResult:
        """Stage the attack against a fresh deployment built from *seed*."""
