"""Man-in-the-middle attack (paper §5.1).

"MITM attack can succeed only when the attacker can impersonate the end
parties.  It can be prevented by the authentication."  We stage the
classic attack against the secure-channel handshake: Mallory intercepts
the ClientHello, substitutes her own Diffie-Hellman value toward each
side, and relays records between the two sessions she now terminates.

The target knob is certificate validation: a client that authenticates
the server's handshake signature against the PKI rejects Mallory's
forged ServerHello (she cannot sign the transcript with the server's
key, even when she presents the server's genuine certificate); a client
that skips validation — "when the party gets the other's public key,
they should authenticate the validity" left undone — hands her the
session.
"""

from __future__ import annotations

from ..crypto import dh, rsa
from ..crypto.drbg import HmacDrbg
from ..crypto.hmac_ import hmac_digest
from ..crypto.pki import CertificateAuthority, Identity, KeyRegistry
from ..errors import HandshakeError
from ..net.securechannel import (
    ClientEndpoint,
    SecureSession,
    ServerEndpoint,
    ServerHello,
    _transcript,
)
from .base import Attack, AttackResult

__all__ = ["MitmAttack"]

_SECRET = b"the quarterly numbers before the announcement"


class MitmAttack(Attack):
    """Intercept-and-reterminate against the mini-TLS handshake."""

    name = "man-in-the-middle"
    paper_section = "5.1"

    def run(self, seed: bytes, verify_peer: bool = True) -> AttackResult:
        target = (
            "securechannel/authenticated" if verify_peer else "securechannel/no-cert-check"
        )
        rng = HmacDrbg(seed, b"mitm")
        ca = CertificateAuthority("ca", rng.fork("ca"))
        registry = KeyRegistry(ca)
        bob = Identity.generate("bob", rng)
        bob_cert = registry.enroll(bob)
        mallory = Identity.generate("mallory", rng)
        mallory_rng = rng.fork("mallory")

        alice = ClientEndpoint("alice", rng, registry, expected_server="bob",
                               verify_peer=verify_peer)
        real_server = ServerEndpoint(bob, bob_cert, rng)

        # 1. Alice's hello is intercepted by Mallory.
        hello = alice.hello()

        # 2. Mallory handshakes with the real server as herself
        #    (client side of TLS is anonymous here).
        mallory_client = ClientEndpoint("mallory-as-alice", mallory_rng, registry,
                                        expected_server="bob")
        m_hello = mallory_client.hello()
        m_server_hello = real_server.respond(m_hello)
        m_finished = mallory_client.finish(m_server_hello)
        server_side_session = real_server.complete(m_hello, m_finished)
        mallory_to_bob = mallory_client.session
        assert mallory_to_bob is not None

        # 3. Mallory forges a ServerHello toward Alice: Bob's genuine
        #    certificate, but *her* DH value and *her* signature.
        group = dh.default_group()
        m_keypair = dh.generate_keypair(group, mallory_rng)
        m_random = mallory_rng.generate(32)
        transcript = _transcript(hello, m_random, m_keypair.public)
        forged = ServerHello(
            server_name="bob",
            random=m_random,
            dh_public=m_keypair.public,
            certificate=bob_cert,  # genuine cert; the signature is the tell
            signature=rsa.sign(mallory.private_key, transcript),
        )
        try:
            alice.finish(forged)
        except HandshakeError as exc:
            return AttackResult(
                attack=self.name,
                target=target,
                succeeded=False,
                detail=f"client rejected the forged ServerHello: {exc}",
                messages_intercepted=1,
                messages_injected=1,
            )

        # 4. Alice accepted: Mallory derives the same master from
        #    Alice's DH public and her own private value.
        shared = dh.derive_shared_secret(m_keypair, hello.dh_public)
        master = hmac_digest(shared, hello.random + m_random)
        mallory_as_server = SecureSession(master, is_client=False, peer_name="alice",
                                          rng=mallory_rng)

        # 5. Alice sends the secret; Mallory reads it and relays it on
        #    to the real server so nobody notices.
        record = alice.session.seal(_SECRET)
        stolen = mallory_as_server.open(record)
        relayed = mallory_to_bob.seal(stolen)
        received_by_bob = server_side_session.open(relayed)
        succeeded = stolen == _SECRET and received_by_bob == _SECRET
        return AttackResult(
            attack=self.name,
            target=target,
            succeeded=succeeded,
            detail="full interception: Mallory read and relayed the plaintext"
            if succeeded else "relay failed",
            messages_intercepted=2,
            messages_injected=2,
        )
