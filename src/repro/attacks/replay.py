"""Replay attack (paper §5.4).

"A valid data transmission is maliciously or fraudulently repeated...
In this protocol, we use unique sequence number with the sender
signature to avoid the attack.  If someone intercepts the message and
replays it..., even the attacker can modify the sequence number in the
plaintext, the attacker cannot modify the Encrypted Hash value
protected by the sender's private key."

The adversary records Alice's UPLOAD message and re-injects a verbatim
copy.  Against the full protocol the provider rejects the duplicate
(nonce reuse / stale sequence number) and issues exactly one receipt;
with sequence and nonce enforcement switched off, the duplicate is
processed again and a second receipt proves the attack landed.
"""

from __future__ import annotations

from ..core.policy import DEFAULT_POLICY
from ..core.protocol import make_deployment
from ..net.adversary import Adversary
from ..net.network import Envelope
from .base import Attack, AttackResult

__all__ = ["ReplayAttack", "RecordAndReplayAdversary"]


class RecordAndReplayAdversary(Adversary):
    """Forwards everything; re-injects copies of selected messages."""

    def __init__(self, kind_to_replay: str, replay_delay: float, copies: int = 1) -> None:
        super().__init__(name="replayer", positions=None)
        self.kind_to_replay = kind_to_replay
        self.replay_delay = replay_delay
        self.copies = copies

    def on_intercept(self, envelope: Envelope) -> None:
        self.seen.append(envelope)
        self.forward(envelope)
        if envelope.kind == self.kind_to_replay:
            for i in range(self.copies):
                self.replay_later(envelope, self.replay_delay * (i + 1))


class ReplayAttack(Attack):
    """Verbatim re-injection of a recorded UPLOAD."""

    name = "replay"
    paper_section = "5.4"

    def run(self, seed: bytes, weakened: bool = False) -> AttackResult:
        policy = DEFAULT_POLICY
        if weakened:
            policy = policy.weakened(enforce_sequence=False, enforce_nonce=False)
        target = "tpnr/no-seq-no-nonce" if weakened else "tpnr/full"
        dep = make_deployment(seed=seed + b"/replay", policy=policy)
        adversary = RecordAndReplayAdversary("tpnr.upload", replay_delay=0.5)
        dep.network.install_adversary(adversary)
        dep.client.upload(dep.provider.name, b"pay the blackmailer 1000 coins")
        dep.run()
        receipts = dep.network.trace.message_count("tpnr.upload.receipt")
        replay_rejected = any(
            "Replay" in reason or "nonce" in reason or "sequence" in reason
            for _, reason in dep.provider.rejected_messages
        )
        succeeded = receipts > 1
        detail = (
            f"provider processed the duplicate: {receipts} receipts issued"
            if succeeded
            else f"duplicate rejected ({'replay guard' if replay_rejected else 'no effect'}); "
            f"{receipts} receipt issued"
        )
        return AttackResult(
            attack=self.name,
            target=target,
            succeeded=succeeded,
            detail=detail,
            messages_intercepted=len(adversary.seen),
            messages_injected=adversary.injected,
        )
