"""The §5 robustness attacks and their harness.

Five attack classes — man-in-the-middle, reflection, interleaving,
replay, timeliness — each runnable against the fully defended protocol
and against a target missing the defence the paper credits for
stopping it.
"""

from . import base, harness, interleaving, mitm, naive, reflection, replay, timeliness
from .base import Attack, AttackResult
from .harness import gauntlet_matrix, run_gauntlet, tpnr_defense_holds
from .interleaving import InterleavingAttack, SpliceAdversary
from .mitm import MitmAttack
from .naive import NaiveChallengeResponse, NaiveReceiptService
from .reflection import ReflectionAttack, ReflectorAdversary
from .replay import RecordAndReplayAdversary, ReplayAttack
from .timeliness import DelayAdversary, TimelinessAttack

__all__ = [
    "base",
    "harness",
    "interleaving",
    "mitm",
    "naive",
    "reflection",
    "replay",
    "timeliness",
    "Attack",
    "AttackResult",
    "gauntlet_matrix",
    "run_gauntlet",
    "tpnr_defense_holds",
    "InterleavingAttack",
    "SpliceAdversary",
    "MitmAttack",
    "NaiveChallengeResponse",
    "NaiveReceiptService",
    "ReflectionAttack",
    "ReflectorAdversary",
    "RecordAndReplayAdversary",
    "ReplayAttack",
    "DelayAdversary",
    "TimelinessAttack",
]
