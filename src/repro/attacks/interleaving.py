"""Interleaving attack (paper §5.3).

"Interleaving attack can possibly succeed when there are several rounds
to exchange key and the to-and-from messages are symmetrical...  In
this protocol, the message is not symmetrical and binding with a unique
sequence number.  In addition, each session is finished only in one
round."

Two targets:

* :class:`repro.attacks.naive.NaiveReceiptService` — receipts are not
  bound to their transaction, so a receipt captured in session 1 passes
  as session 2's receipt;
* TPNR — the adversary withholds the receipt of transaction 2 and
  substitutes a copy of transaction 1's receipt.  Alice's checks
  (transaction binding inside the signed header + nonce freshness)
  reject the splice; success would require transaction 2 to be marked
  complete without Bob's genuine receipt.
"""

from __future__ import annotations

from ..core.protocol import make_deployment
from ..core.transaction import TxStatus
from ..crypto.drbg import HmacDrbg
from ..net.adversary import Adversary
from ..net.network import Envelope
from .base import Attack, AttackResult
from .naive import NaiveReceiptService

__all__ = ["InterleavingAttack", "SpliceAdversary"]


class SpliceAdversary(Adversary):
    """Keep the first receipt; substitute it for the second."""

    def __init__(self) -> None:
        super().__init__(name="splicer", positions=None)
        self._captured: Envelope | None = None
        self.spliced = 0

    def on_intercept(self, envelope: Envelope) -> None:
        self.seen.append(envelope)
        if envelope.kind != "tpnr.upload.receipt":
            self.forward(envelope)
            return
        if self._captured is None:
            # First receipt: pass it through but keep a copy.
            self._captured = envelope
            self.forward(envelope)
        else:
            # Second receipt: drop it, inject the first one again.
            self.drop(envelope)
            self.spliced += 1
            self.network.inject(self._captured, mark="inject")


class InterleavingAttack(Attack):
    """Cross-session message splicing."""

    name = "interleaving"
    paper_section = "5.3"

    def run(self, seed: bytes, naive_target: bool = False) -> AttackResult:
        if naive_target:
            return self._run_naive(seed)
        return self._run_tpnr(seed)

    def _run_naive(self, seed: bytes) -> AttackResult:
        rng = HmacDrbg(seed, b"interleaving")
        service = NaiveReceiptService(rng)
        _id1, receipt1 = service.upload(b"first upload")
        id2, _receipt2_withheld = service.upload(b"second upload")
        # The attacker presents session 1's receipt for session 2.
        accepted = service.receipt_valid(id2, receipt1)
        return AttackResult(
            attack=self.name,
            target="naive-receipt-service",
            succeeded=accepted,
            detail="session-1 receipt accepted as session-2 receipt "
            "(receipts are not transaction-bound)"
            if accepted
            else "receipt rejected",
            messages_intercepted=2,
            messages_injected=1,
        )

    def _run_tpnr(self, seed: bytes) -> AttackResult:
        # auto_resolve off so a successful splice cannot be masked by
        # the TTP legitimately re-fetching the receipt.
        dep = make_deployment(seed=seed + b"/interleaving")
        adversary = SpliceAdversary()
        dep.network.install_adversary(adversary)
        txn1 = dep.client.upload(dep.provider.name, b"first upload", auto_resolve=False)
        txn2 = dep.client.upload(dep.provider.name, b"second upload", auto_resolve=False)
        dep.run()
        status1 = dep.client.transactions[txn1].status
        status2 = dep.client.transactions[txn2].status
        succeeded = status2 is TxStatus.COMPLETED  # without Bob's receipt-2
        rejections = [r for _, r in dep.client.rejected_messages]
        return AttackResult(
            attack=self.name,
            target="tpnr/full",
            succeeded=succeeded,
            detail=(
                f"txn1={status1.value}, txn2={status2.value}; "
                f"splice rejected ({rejections[0] if rejections else 'no rejection recorded'})"
                if not succeeded
                else "spliced receipt accepted across transactions"
            ),
            messages_intercepted=len(adversary.seen),
            messages_injected=adversary.spliced,
        )
