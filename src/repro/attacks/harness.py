"""The §5 attack gauntlet: every attack against every relevant target.

:func:`run_gauntlet` stages the five attack classes twice each — once
against the fully defended configuration and once against the matching
weakened/naive target — and returns the results.  The expected matrix
(asserted by tests, printed by the S5 benchmark):

================  ==========================  =========
attack            target                      succeeds?
================  ==========================  =========
man-in-the-middle securechannel/authenticated no
man-in-the-middle securechannel/no-cert-check YES
reflection        tpnr/full                   no
reflection        naive-challenge-response    YES
interleaving      tpnr/full                   no
interleaving      naive-receipt-service       YES
replay            tpnr/full                   no
replay            tpnr/no-seq-no-nonce        YES
timeliness        tpnr/full                   no
timeliness        tpnr/no-time-limit          YES
================  ==========================  =========
"""

from __future__ import annotations

from .base import AttackResult
from .interleaving import InterleavingAttack
from .mitm import MitmAttack
from .reflection import ReflectionAttack
from .replay import ReplayAttack
from .timeliness import TimelinessAttack

__all__ = ["run_gauntlet", "gauntlet_matrix", "tpnr_defense_holds"]


def run_gauntlet(seed: bytes = b"gauntlet") -> list[AttackResult]:
    """Run all ten (attack, target) combinations."""
    results: list[AttackResult] = []
    results.append(MitmAttack().run(seed, verify_peer=True))
    results.append(MitmAttack().run(seed, verify_peer=False))
    results.append(ReflectionAttack().run(seed, naive_target=False))
    results.append(ReflectionAttack().run(seed, naive_target=True))
    results.append(InterleavingAttack().run(seed, naive_target=False))
    results.append(InterleavingAttack().run(seed, naive_target=True))
    results.append(ReplayAttack().run(seed, weakened=False))
    results.append(ReplayAttack().run(seed, weakened=True))
    results.append(TimelinessAttack().run(seed, weakened=False))
    results.append(TimelinessAttack().run(seed, weakened=True))
    return results


def gauntlet_matrix(results: list[AttackResult]) -> dict[tuple[str, str], bool]:
    """(attack, target) -> succeeded mapping."""
    return {(r.attack, r.target): r.succeeded for r in results}


def tpnr_defense_holds(results: list[AttackResult]) -> bool:
    """True iff no attack succeeded against a fully defended target."""
    defended = ("tpnr/full", "securechannel/authenticated")
    return not any(r.succeeded for r in results if r.target in defended)
