"""Naive strawman protocols the §5 attacks *do* defeat.

The paper argues TPNR resists five classic attacks by pointing at
specific message fields.  To show those defences are doing real work,
the attack harness also runs each attack against a protocol missing
the relevant defence.  Two deliberately naive constructions cover the
cases the weakened-TPNR variants cannot:

* :class:`NaiveChallengeResponse` — a symmetric challenge-response
  authenticator that uses **the same keyed MAC in both directions**
  with no direction binding: the §5.2 reflection attack's textbook
  victim.
* :class:`NaiveReceiptService` — a storage service whose upload
  receipt is a MAC over the constant string ``"OK"``, **not bound to
  the transaction**: receipts from one session are interchangeable
  with another's, which is what the §5.3 interleaving attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.hmac_ import constant_time_equals, hmac_digest

__all__ = ["NaiveChallengeResponse", "NaiveReceiptService"]


class NaiveChallengeResponse:
    """Mutual authentication by MAC-ing the peer's challenge.

    Protocol (both directions identical — the flaw):

        A -> B: challenge_a
        B -> A: MAC(K, challenge_a), challenge_b
        A -> B: MAC(K, challenge_b)

    A reflection attacker who receives ``challenge_a`` simply opens a
    *second* session toward the victim, sends ``challenge_a`` as its
    own challenge, and echoes back the MAC the victim helpfully
    computes.
    """

    def __init__(self, shared_key: bytes) -> None:
        self._key = shared_key
        self.sessions_authenticated = 0

    def respond(self, challenge: bytes) -> bytes:
        """Answer any challenge under the shared key (both roles do)."""
        return hmac_digest(self._key, challenge)

    def verify(self, challenge: bytes, response: bytes) -> bool:
        ok = constant_time_equals(hmac_digest(self._key, challenge), response)
        if ok:
            self.sessions_authenticated += 1
        return ok


@dataclass
class _NaiveUpload:
    upload_id: str
    data: bytes


class NaiveReceiptService:
    """Uploads acknowledged with a transaction-unbound receipt.

    ``receipt = MAC(K, b"OK")`` — constant across sessions, so an
    interleaving attacker can withhold the receipt for upload 1 and
    later present it as the receipt for upload 2 (or vice versa), and
    the client cannot tell which upload was actually acknowledged.
    """

    def __init__(self, rng: HmacDrbg) -> None:
        self._key = rng.generate(32)
        self._counter = 0
        self.stored: dict[str, bytes] = {}

    def upload(self, data: bytes) -> tuple[str, bytes]:
        """Store and return (upload_id, receipt)."""
        self._counter += 1
        upload_id = f"N-{self._counter:04d}"
        self.stored[upload_id] = data
        return upload_id, hmac_digest(self._key, b"OK")

    def receipt_valid(self, upload_id: str, receipt: bytes) -> bool:
        """The flawed check: the receipt never mentions *upload_id*."""
        del upload_id  # not bound — the vulnerability
        return constant_time_equals(hmac_digest(self._key, b"OK"), receipt)
