"""Multi-hop network topologies (networkx-backed).

The flat :class:`~repro.net.network.Network` models every pair with one
channel.  Real clouds sit behind multi-hop paths — client ISP, transit,
provider edge — and the paper's Fig. 1 draws exactly that picture.
This module builds weighted graphs of routers/links and compiles them
down to per-pair :class:`~repro.net.channel.ChannelSpec` links whose
latency is the shortest-path latency, loss is the path's compound loss,
and bandwidth is the path's bottleneck.

The compile step keeps the simulator fast (no per-hop events) while the
topology stays declarative and inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import NetworkError
from .channel import ChannelSpec
from .network import Network

__all__ = ["LinkSpec", "Topology", "dumbbell_topology"]


@dataclass(frozen=True)
class LinkSpec:
    """One physical hop."""

    latency: float = 0.005
    bandwidth_bps: float = float("inf")
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise NetworkError("link latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise NetworkError("link bandwidth must be positive")
        if not 0.0 <= self.loss_prob <= 1.0:
            raise NetworkError("link loss must be a probability")


class Topology:
    """A weighted multi-hop graph of hosts and routers."""

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self._hosts: set[str] = set()

    def add_host(self, name: str) -> None:
        """A host: an endpoint protocol nodes attach to."""
        self.graph.add_node(name)
        self._hosts.add(name)

    def add_router(self, name: str) -> None:
        self.graph.add_node(name)

    def add_link(self, a: str, b: str, spec: LinkSpec = LinkSpec()) -> None:
        if a not in self.graph or b not in self.graph:
            raise NetworkError(f"add nodes before linking {a!r}-{b!r}")
        self.graph.add_edge(a, b, spec=spec, weight=spec.latency)

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    # -- path math -----------------------------------------------------------

    def path(self, src: str, dst: str) -> list[str]:
        """Latency-shortest path between two nodes."""
        try:
            return nx.shortest_path(self.graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NetworkError(f"no path from {src!r} to {dst!r}") from exc

    def path_channel(self, src: str, dst: str, jitter: float = 0.0) -> ChannelSpec:
        """Compile the path into one end-to-end channel.

        latency = sum of hop latencies; bandwidth = bottleneck hop;
        delivery probability = product of hop deliveries.
        """
        nodes = self.path(src, dst)
        latency = 0.0
        bandwidth = float("inf")
        delivery = 1.0
        for a, b in zip(nodes, nodes[1:]):
            spec: LinkSpec = self.graph.edges[a, b]["spec"]
            latency += spec.latency
            bandwidth = min(bandwidth, spec.bandwidth_bps)
            delivery *= 1.0 - spec.loss_prob
        return ChannelSpec(
            base_latency=latency,
            jitter=jitter,
            bandwidth_bps=bandwidth,
            drop_prob=1.0 - delivery,
        )

    def install(self, network: Network, jitter: float = 0.0) -> None:
        """Configure *network* with one compiled channel per host pair."""
        hosts = self.hosts
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                network.connect(a, b, self.path_channel(a, b, jitter))

    def diameter_latency(self) -> float:
        """Worst-case host-to-host one-way latency."""
        return max(
            self.path_channel(a, b).base_latency
            for i, a in enumerate(self.hosts)
            for b in self.hosts[i + 1 :]
        )


def dumbbell_topology(
    left_hosts: list[str],
    right_hosts: list[str],
    access: LinkSpec = LinkSpec(latency=0.005, bandwidth_bps=1e9),
    backbone: LinkSpec = LinkSpec(latency=0.030, bandwidth_bps=12.5e6),
) -> Topology:
    """The classic two-routers-and-a-bottleneck shape.

    Left hosts (clients) and right hosts (provider, TTP) hang off their
    edge routers; the backbone link in the middle is the WAN.
    """
    topo = Topology()
    topo.add_router("edge-left")
    topo.add_router("edge-right")
    topo.add_link("edge-left", "edge-right", backbone)
    for host in left_hosts:
        topo.add_host(host)
        topo.add_link(host, "edge-left", access)
    for host in right_hosts:
        topo.add_host(host)
        topo.add_link(host, "edge-right", access)
    return topo
