"""The simulated network: nodes, links, delivery, adversary hooks.

A :class:`Network` owns the :class:`repro.net.events.Simulator`, a
registry of :class:`repro.net.node.Node` objects, per-direction
:class:`repro.net.channel.ChannelSpec` links, a
:class:`repro.net.trace.TraceRecorder`, and at most one
:class:`repro.net.adversary.Adversary`.

Sending is asynchronous: ``network.send(...)`` samples the channel and
schedules ``dst.on_message(envelope)`` callbacks.  The adversary, when
present and in position, sees every envelope first and decides what
actually reaches the wire — this is how MITM/replay/etc. are staged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from ..crypto.drbg import HmacDrbg
from ..errors import DeliveryError
from ..obs import NULL_OBS
from .channel import PERFECT, ChannelSpec
from .events import Simulator
from .trace import TraceEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from .adversary import Adversary
    from .node import Node

__all__ = ["Envelope", "Network", "wire_size"]


def wire_size(payload: Any) -> int:
    """Estimate the on-wire size of a payload in bytes.

    Bytes-likes are exact (``memoryview`` by ``nbytes``, so a sliced
    view of a wide buffer is billed for its bytes, not its element
    count); ``str`` is billed as its UTF-8 encoding — not ``repr``,
    which would charge for quote characters and count non-ASCII text
    in code points; objects exposing ``wire_size()`` (all protocol
    messages do) are asked; anything else falls back to ``len(repr)``.
    """
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, memoryview):
        return payload.nbytes
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    size_fn = getattr(payload, "wire_size", None)
    if callable(size_fn):
        return int(size_fn())
    return len(repr(payload))


@dataclass(frozen=True)
class Envelope:
    """A message in flight."""

    msg_id: int
    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    sent_at: float
    corrupted: bool = False


class Network:
    """Topology + delivery engine + trace + adversary seat."""

    def __init__(self, sim: Simulator, rng: HmacDrbg, default_channel: ChannelSpec = PERFECT) -> None:
        self.sim = sim
        self._rng = rng.fork("network")
        self._nodes: dict[str, "Node"] = {}
        self._links: dict[tuple[str, str], ChannelSpec] = {}
        self._default_channel = default_channel
        self.trace = TraceRecorder()
        self.adversary: "Adversary | None" = None
        self._msg_ids = itertools.count(1)
        # The observability seat: NULL_OBS (a shared no-op) unless a
        # deployment built with observe=True installs a live
        # repro.obs.Observability.  Nodes reach it via ``self.obs``.
        self.obs = NULL_OBS

    # -- topology ------------------------------------------------------------

    def add_node(self, node: "Node") -> None:
        if node.name in self._nodes:
            raise DeliveryError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        node.attach(self)

    def node(self, name: str) -> "Node":
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise DeliveryError(f"unknown node {name!r}") from exc

    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def connect(self, a: str, b: str, spec: ChannelSpec, symmetric: bool = True) -> None:
        """Override the channel between *a* and *b* (default both ways)."""
        self._links[(a, b)] = spec
        if symmetric:
            self._links[(b, a)] = spec

    def channel(self, src: str, dst: str) -> ChannelSpec:
        return self._links.get((src, dst), self._default_channel)

    def install_adversary(self, adversary: "Adversary") -> None:
        self.adversary = adversary
        adversary.attach(self)

    def remove_adversary(self) -> None:
        self.adversary = None

    # -- sending -------------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any) -> Envelope:
        """Send *payload* from *src* to *dst*; returns the envelope.

        Delivery (or loss) happens later, via scheduled events.
        """
        if dst not in self._nodes:
            raise DeliveryError(f"unknown destination {dst!r}")
        envelope = Envelope(
            msg_id=next(self._msg_ids),
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=wire_size(payload),
            sent_at=self.sim.now,
        )
        self.trace.record(
            TraceEvent(self.sim.now, "send", src, dst, kind, envelope.size_bytes, envelope.msg_id)
        )
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("net.messages_sent", kind=kind).inc()
            obs.metrics.counter("net.bytes_sent", kind=kind).inc(envelope.size_bytes)
        if self.adversary is not None and self.adversary.in_position(envelope):
            self.adversary.on_intercept(envelope)
            return envelope
        self._transmit(envelope)
        return envelope

    def _transmit(self, envelope: Envelope) -> None:
        """Run the channel dice and schedule deliveries."""
        spec = self.channel(envelope.src, envelope.dst)
        deliveries = spec.sample(envelope.size_bytes, self._rng)
        if not deliveries:
            self.trace.record(
                TraceEvent(
                    self.sim.now, "drop", envelope.src, envelope.dst,
                    envelope.kind, envelope.size_bytes, envelope.msg_id,
                    note=f"channel drop_prob={spec.drop_prob}",
                )
            )
            obs = self.obs
            if obs.enabled:
                obs.metrics.counter("net.dropped", reason="channel").inc()
            return
        for delivery in deliveries:
            delivered = replace(envelope, corrupted=envelope.corrupted or delivery.corrupted)
            self.sim.schedule(delivery.delay, lambda env=delivered: self._deliver(env))

    def _deliver(self, envelope: Envelope) -> None:
        node = self._nodes.get(envelope.dst)
        if node is None:  # node removed mid-flight
            return
        if getattr(node, "crashed", False):
            # An amnesia-crashed process cannot accept deliveries; the
            # bytes hit a dead socket.  Traced as a drop so the
            # campaign's per-message accounting still balances.
            self.trace.record(
                TraceEvent(
                    self.sim.now, "drop", envelope.src, envelope.dst,
                    envelope.kind, envelope.size_bytes, envelope.msg_id,
                    note="destination down (crashed)",
                )
            )
            obs = self.obs
            if obs.enabled:
                obs.metrics.counter("net.dropped", reason="crashed").inc()
            return
        action = "corrupt" if envelope.corrupted else "deliver"
        self.trace.record(
            TraceEvent(
                self.sim.now, action, envelope.src, envelope.dst,
                envelope.kind, envelope.size_bytes, envelope.msg_id,
            )
        )
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("net.delivered", kind=envelope.kind).inc()
            obs.metrics.histogram("net.delivery_latency_seconds").observe(
                self.sim.now - envelope.sent_at
            )
        node.on_message(envelope)

    # -- adversary API ---------------------------------------------------------

    def inject(self, envelope: Envelope, *, mark: str = "inject", note: str = "") -> None:
        """Adversary-originated (re)transmission of an envelope.

        Bypasses the adversary hook (no self-interception) and records
        an ``inject`` trace event before normal channel treatment.
        """
        self.trace.record(
            TraceEvent(
                self.sim.now, mark, envelope.src, envelope.dst,
                envelope.kind, envelope.size_bytes, envelope.msg_id, note,
            )
        )
        self._transmit(envelope)

    def record_fault(self, envelope: Envelope, action: str, note: str) -> None:
        """Record a fault-injection decision against *envelope*.

        *action* is ``fault.<what>`` (drop/duplicate/delay/...), *note*
        names the plan and rule that fired — together they make every
        injected fault attributable from the trace alone.
        """
        self.trace.record(
            TraceEvent(
                self.sim.now, action, envelope.src, envelope.dst,
                envelope.kind, envelope.size_bytes, envelope.msg_id, note,
            )
        )
