"""Message-trace recording.

Every send/deliver/drop on a :class:`repro.net.network.Network` is
recorded here.  The analysis layer turns traces into the quantities the
paper talks about: *steps* (protocol messages exchanged), bytes on the
wire, and end-to-end latency — the basis of the "TPNR takes 2 steps
where traditional NR takes 4" comparison (paper §4.4, DESIGN.md S4).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceRecorder", "FaultNote", "parse_fault_note"]


@dataclass(frozen=True)
class TraceEvent:
    """One network-level occurrence.

    ``note`` records *why* the event happened when the cause is not the
    plain happy path: ``"channel"`` for channel-dice drops, and
    ``"plan=<name> rule=<i> action=<a>"`` for fault-injection decisions
    (actions ``fault.drop``/``fault.duplicate``/...), so a dropped
    message is diagnosable from the trace alone.
    """

    time: float
    action: str  # "send" | "deliver" | "drop" | "corrupt" | "inject" | "fault.*"
    src: str
    dst: str
    kind: str  # protocol-level message kind, e.g. "tpnr.data+nro"
    size_bytes: int
    msg_id: int
    note: str = ""


@dataclass
class TraceRecorder:
    """Accumulates :class:`TraceEvent` records and summarizes them."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    # -- summaries ----------------------------------------------------------

    def sends(self, kind_prefix: str = "") -> list[TraceEvent]:
        """All send events whose kind starts with *kind_prefix*."""
        return [e for e in self.events if e.action == "send" and e.kind.startswith(kind_prefix)]

    def deliveries(self, kind_prefix: str = "") -> list[TraceEvent]:
        return [e for e in self.events if e.action == "deliver" and e.kind.startswith(kind_prefix)]

    def drops(self) -> list[TraceEvent]:
        return [e for e in self.events if e.action == "drop"]

    def faults(self) -> list[TraceEvent]:
        """All fault-injection decisions (actions ``fault.*``)."""
        return [e for e in self.events if e.action.startswith("fault.")]

    def explain(self, msg_id: int) -> list[TraceEvent]:
        """Every recorded event for one message, in order — the full
        fate of the message (sent, then faulted/dropped/delivered),
        which is what makes dropped-message bugs debuggable."""
        return [e for e in self.events if e.msg_id == msg_id]

    def message_count(self, kind_prefix: str = "") -> int:
        """Number of protocol messages sent (the paper's "steps")."""
        return len(self.sends(kind_prefix))

    def bytes_sent(self, kind_prefix: str = "") -> int:
        return sum(e.size_bytes for e in self.sends(kind_prefix))

    def participants(self) -> set[str]:
        out: set[str] = set()
        for e in self.events:
            out.add(e.src)
            out.add(e.dst)
        return out

    def span(self) -> float:
        """Simulated time between the first and last event."""
        if not self.events:
            return 0.0
        times = [e.time for e in self.events]
        return max(times) - min(times)

    def sequence(self, action: str = "send") -> list[tuple[str, str, str]]:
        """Ordered (src, dst, kind) triples — compared against the
        figure-6 flows in tests and benchmarks."""
        return [(e.src, e.dst, e.kind) for e in self.events if e.action == action]

    def fault_notes(self) -> list["FaultNote"]:
        """Every ``fault.*`` decision's note, parsed into a
        :class:`FaultNote` (unparseable notes are skipped)."""
        out = []
        for event in self.faults():
            parsed = parse_fault_note(event.note)
            if parsed is not None:
                out.append(parsed)
        return out


# ---------------------------------------------------------------------------
# Structured fault notes
# ---------------------------------------------------------------------------

# The two note shapes the fault injector writes (repro.net.faults):
#   "plan=<name> rule=<i> action=<a>"        — a FaultRule decision
#   "plan=<name> <kind>(<node> @<s>s +<d>s)" — a CrashWindow mark, with
#                                              kind "crash"/"amnesia-crash"
_RULE_NOTE = re.compile(r"^plan=(?P<plan>\S+) rule=(?P<rule>\d+) action=(?P<action>\S+)$")
_WINDOW_NOTE = re.compile(
    r"^plan=(?P<plan>\S+) (?P<kind>amnesia-crash|crash)"
    r"\((?P<node>\S+) @(?P<start>[-+0-9.e]+)s \+(?P<duration>[-+0-9.e]+)s\)$"
)


@dataclass(frozen=True)
class FaultNote:
    """A fault-injection note parsed back into its structured form.

    Rule decisions have ``rule``/``action`` set; crash-window marks
    have ``node``/``start``/``duration`` set with ``action`` holding
    the window kind.  :meth:`render` reproduces the exact note string,
    so ``parse_fault_note(note).render() == note`` round-trips.
    """

    plan: str
    action: str
    rule: int | None = None
    node: str = ""
    start: float = 0.0
    duration: float = 0.0

    @property
    def is_crash_window(self) -> bool:
        return bool(self.node)

    def render(self) -> str:
        if self.is_crash_window:
            return (
                f"plan={self.plan} {self.action}"
                f"({self.node} @{self.start:g}s +{self.duration:g}s)"
            )
        return f"plan={self.plan} rule={self.rule} action={self.action}"


def parse_fault_note(note: str) -> FaultNote | None:
    """Parse one fault note; ``None`` if *note* is not a fault note."""
    match = _RULE_NOTE.match(note)
    if match:
        return FaultNote(
            plan=match["plan"],
            action=match["action"],
            rule=int(match["rule"]),
        )
    match = _WINDOW_NOTE.match(note)
    if match:
        return FaultNote(
            plan=match["plan"],
            action=match["kind"],
            node=match["node"],
            start=float(match["start"]),
            duration=float(match["duration"]),
        )
    return None
