"""Network substrate: deterministic discrete-event simulation.

Provides the simulated Internet the paper's protocols run over — a
clock, an event heap, lossy/latent channels, named nodes, wire traces,
adversary interception hooks, and a miniature TLS (the paper's SSL
stand-in).
"""

from . import adversary, channel, events, faults, network, node, securechannel, simclock, topology, trace
from .adversary import Adversary, PassiveEavesdropper
from .channel import LOSSY, PERFECT, WAN, ChannelSpec, Delivery
from .events import ScheduledEvent, Simulator
from .faults import (
    CampaignOutcome,
    CampaignReport,
    CampaignRunner,
    CrashWindow,
    FaultAction,
    FaultInjector,
    FaultPlan,
    FaultRule,
    generate_plans,
)
from .network import Envelope, Network, wire_size
from .node import Node
from .securechannel import (
    ClientEndpoint,
    ClientHello,
    Finished,
    Record,
    SecureSession,
    ServerEndpoint,
    ServerHello,
    establish_session,
)
from .simclock import SimClock
from .topology import LinkSpec, Topology, dumbbell_topology
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "adversary",
    "channel",
    "events",
    "faults",
    "network",
    "node",
    "securechannel",
    "simclock",
    "topology",
    "trace",
    "LinkSpec",
    "Topology",
    "dumbbell_topology",
    "Adversary",
    "PassiveEavesdropper",
    "LOSSY",
    "PERFECT",
    "WAN",
    "ChannelSpec",
    "Delivery",
    "ScheduledEvent",
    "Simulator",
    "Envelope",
    "Network",
    "wire_size",
    "Node",
    "ClientEndpoint",
    "ClientHello",
    "Finished",
    "Record",
    "SecureSession",
    "ServerEndpoint",
    "ServerHello",
    "establish_session",
    "SimClock",
    "TraceEvent",
    "TraceRecorder",
    "FaultAction",
    "FaultRule",
    "CrashWindow",
    "FaultPlan",
    "FaultInjector",
    "generate_plans",
    "CampaignOutcome",
    "CampaignReport",
    "CampaignRunner",
]
