"""Seeded fault injection and campaign running.

The resilience story of the TPNR reproduction so far rested on i.i.d.
channel dice (:class:`repro.net.channel.ChannelSpec`).  Real failure
modes are *targeted*: the Nth receipt is lost, a resolve query is
delivered twice, a party is down for three seconds.  This module turns
those into first-class, seeded, replayable objects:

* :class:`FaultRule` — "apply *action* to the *nth* (and following
  *count-1*) messages matching this kind/src/dst pattern";
* :class:`CrashWindow` — a party is crashed (all traffic to and from
  it is lost) for a time window; the restart itself is implicit in the
  window's end, mirroring a process that reboots with its durable
  state (keys, stores, sequence counters) intact;
* :class:`FaultPlan` — a named bundle of rules + crash windows;
* :class:`FaultInjector` — an :class:`~repro.net.adversary.Adversary`
  that executes a plan and records every decision in the network trace
  (``fault.*`` events carrying ``plan=<name> rule=<i> action=<a>``
  notes), so each injected fault is attributable after the fact;
* :func:`generate_plans` — a deterministic plan generator seeded by an
  :class:`~repro.crypto.drbg.HmacDrbg`;
* :class:`CampaignRunner` — sweeps a list of plans over fresh TPNR
  sessions on one shared deployment, checks the non-repudiation
  invariants after each (terminal state reached, no conflicting
  evidence, every message accounted for in the trace), and emits a
  reproducible outcome table via :mod:`repro.analysis.report`.

Everything here is deterministic given the seed: running the same
campaign twice yields byte-identical outcome tables, which is what
makes a fault-campaign failure a *bug report* instead of an anecdote.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..crypto.drbg import HmacDrbg
from .adversary import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..core.protocol import Deployment
    from .network import Envelope

__all__ = [
    "FaultAction",
    "FaultRule",
    "CrashWindow",
    "ReplicaFaultMode",
    "ReplicaFault",
    "FaultPlan",
    "FaultInjector",
    "generate_plans",
    "generate_amnesia_plans",
    "generate_replica_plans",
    "generate_storm_plans",
    "REPLICA_NAMES",
    "CampaignOutcome",
    "CampaignReport",
    "CampaignRunner",
    "TPNR_KINDS",
]

# Message kinds a fault plan can target (the full TPNR wire surface).
TPNR_KINDS = (
    "tpnr.upload",
    "tpnr.upload.receipt",
    "tpnr.download.request",
    "tpnr.download.response",
    "tpnr.download.ack",
    "tpnr.resolve.request",
    "tpnr.resolve.query",
    "tpnr.resolve.reply",
    "tpnr.resolve.result",
)


class FaultAction(enum.Enum):
    DROP = "drop"
    DUPLICATE = "duplicate"
    DELAY = "delay"
    CORRUPT = "corrupt"
    REORDER = "reorder"


@dataclass(frozen=True)
class FaultRule:
    """Target the *nth* .. *nth+count-1* messages matching a pattern.

    ``kind`` is a prefix match (``"tpnr.upload"`` also matches
    ``"tpnr.upload.receipt"`` — use the exact kind to be precise);
    empty ``src``/``dst`` match any party.  ``delay`` is used by DELAY
    (seconds of hold) and REORDER (a short hold that lets the next
    message overtake).
    """

    action: FaultAction
    kind: str
    src: str = ""
    dst: str = ""
    nth: int = 1
    count: int = 1
    delay: float = 2.0

    def matches(self, envelope: "Envelope") -> bool:
        if not envelope.kind.startswith(self.kind):
            return False
        if self.src and envelope.src != self.src:
            return False
        if self.dst and envelope.dst != self.dst:
            return False
        return True

    def describe(self) -> str:
        where = f"{self.src or '*'}->{self.dst or '*'}"
        span = f"#{self.nth}" if self.count == 1 else f"#{self.nth}-{self.nth + self.count - 1}"
        return f"{self.action.value}({self.kind} {where} {span})"


@dataclass(frozen=True)
class CrashWindow:
    """Party *node* is down over [start, start+duration) seconds,
    relative to the injector's epoch (the moment the plan is armed).
    While down, every message to or from the node is lost, and the
    node's retransmission loops die at window entry — a dead process
    sends nothing, so timers from its pre-crash life must not fire
    mid-window and masquerade as recovery.

    With ``amnesia=False`` (PR 1 semantics) the node restarts with its
    in-memory state magically intact.  With ``amnesia=True`` the crash
    is real: volatile state and every timer are wiped at window entry
    (the journal's write buffer is lost), and
    :func:`repro.durability.recovery.recover` runs at window exit."""

    node: str
    start: float
    duration: float
    amnesia: bool = False

    def covers(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration

    def describe(self) -> str:
        kind = "amnesia-crash" if self.amnesia else "crash"
        return f"{kind}({self.node} @{self.start:g}s +{self.duration:g}s)"


class ReplicaFaultMode(enum.Enum):
    """Fault classes scoped to one replica of a replicated store.

    * ``DIVERGENCE`` — a replica's stored bytes silently change (bad
      disk, or a backend quietly rewriting data) with the platform MD5
      fixed up, so single-backend checks pass;
    * ``SPLIT_BRAIN`` — a replica is partitioned away from the write
      quorum and accepts a divergent minority write of its own;
    * ``LAGGING`` — a replica stops acknowledging writes and serves an
      old (but internally consistent) view;
    * ``BYZANTINE`` — a replica tampers with data *and* forges its
      attestation, the strongest §2.4-style adversary.
    """

    DIVERGENCE = "replica-divergence"
    SPLIT_BRAIN = "split-brain"
    LAGGING = "lagging-replica"
    BYZANTINE = "byzantine-replica"


#: Replica names a replicated deployment fans out to by default.
REPLICA_NAMES = ("s3like", "azurelike", "gaelike")


@dataclass(frozen=True)
class ReplicaFault:
    """Apply *mode* to *replica* just before the *at_op*-th store op."""

    mode: ReplicaFaultMode
    replica: str
    at_op: int = 1
    forge_attestation: bool = False

    def describe(self) -> str:
        forged = "+forged-mac" if self.forge_attestation else ""
        return f"{self.mode.value}({self.replica} @op{self.at_op}{forged})"


@dataclass(frozen=True)
class FaultPlan:
    """A named, self-contained fault scenario."""

    name: str
    rules: tuple[FaultRule, ...] = ()
    crashes: tuple[CrashWindow, ...] = ()
    replica_faults: tuple[ReplicaFault, ...] = ()

    def describe(self) -> str:
        parts = (
            [r.describe() for r in self.rules]
            + [c.describe() for c in self.crashes]
            + [rf.describe() for rf in self.replica_faults]
        )
        return "; ".join(parts) if parts else "no-op"


class FaultInjector(Adversary):
    """Adversary that executes one :class:`FaultPlan`.

    Every decision is written to the network trace as a ``fault.*``
    event whose note names the plan and the rule index that fired —
    the trace alone answers "why did message 17 disappear?".
    """

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__(name=f"faults/{plan.name}", positions=None)
        self.plan = plan
        self.epoch = 0.0
        self._match_counts = [0] * len(plan.rules)
        self.decisions: list[tuple[int, str, str]] = []  # (msg_id, action, note)
        self._window_events: list = []  # ScheduledEvents for crash begin/end
        self.crash_begins = 0
        self.amnesia_crashes = 0
        self.amnesia_nodes: set[str] = set()
        self.recoveries = 0
        self.recovery_reports: list = []  # RecoveryReport per amnesia restart

    def reset(self, epoch: float) -> None:
        """Re-arm the plan (fresh match counters) at a new time origin.

        Each crash window also gets explicit begin/end events: entry
        kills the node's retransmission loops (and, for amnesia
        windows, its volatile state); exit restarts the process —
        running crash recovery when the window is amnesiac.  Requires
        the injector to be installed on the network first.
        """
        self.epoch = epoch
        self._match_counts = [0] * len(self.plan.rules)
        for event in self._window_events:
            event.cancel()
        self._window_events = []
        sim = self.network.sim
        for window in self.plan.crashes:
            self._window_events.append(
                sim.schedule_at(
                    epoch + window.start,
                    lambda w=window: self._crash_begin(w),
                )
            )
            self._window_events.append(
                sim.schedule_at(
                    epoch + window.start + window.duration,
                    lambda w=window: self._crash_end(w),
                )
            )

    def _crashed_node(self, window: CrashWindow):
        try:
            return self.network.node(window.node)
        except Exception:
            return None

    def _mark_window(self, window: CrashWindow, action: str) -> None:
        from .trace import TraceEvent  # local: trace is a leaf module

        note = f"plan={self.plan.name} {window.describe()}"
        self.network.trace.record(
            TraceEvent(
                self.network.sim.now, f"fault.{action}",
                window.node, window.node, "process", 0, 0, note,
            )
        )
        self.decisions.append((0, action, note))

    def _crash_begin(self, window: CrashWindow) -> None:
        node = self._crashed_node(window)
        if node is None:
            return
        self.crash_begins += 1
        self._mark_window(window, "crash-begin")
        if hasattr(node, "cancel_all_retransmits"):
            node.cancel_all_retransmits()
        if window.amnesia and hasattr(node, "begin_crash"):
            self.amnesia_crashes += 1
            self.amnesia_nodes.add(window.node)
            node.begin_crash(amnesia=True)

    def _crash_end(self, window: CrashWindow) -> None:
        node = self._crashed_node(window)
        if node is None:
            return
        self._mark_window(window, "crash-end")
        if window.amnesia and hasattr(node, "begin_crash"):
            from ..durability.recovery import recover  # lazy: net <-> durability

            report = recover(node)
            self.recoveries += 1
            self.recovery_reports.append(report)

    def _record(self, envelope: "Envelope", action: FaultAction | str, note: str) -> None:
        label = action.value if isinstance(action, FaultAction) else action
        self.network.record_fault(envelope, f"fault.{label}", note)
        self.decisions.append((envelope.msg_id, label, note))

    def on_intercept(self, envelope: "Envelope") -> None:
        self.seen.append(envelope)
        rel_now = self.network.sim.now - self.epoch
        for crash in self.plan.crashes:
            if crash.covers(rel_now) and crash.node in (envelope.src, envelope.dst):
                self._record(
                    envelope, "crash", f"plan={self.plan.name} {crash.describe()}"
                )
                self.drop(envelope)
                return
        for i, rule in enumerate(self.plan.rules):
            if not rule.matches(envelope):
                continue
            self._match_counts[i] += 1
            seen_no = self._match_counts[i]
            if not (rule.nth <= seen_no < rule.nth + rule.count):
                continue
            note = f"plan={self.plan.name} rule={i} action={rule.action.value}"
            self._record(envelope, rule.action, note)
            if rule.action is FaultAction.DROP:
                self.drop(envelope)
            elif rule.action is FaultAction.DUPLICATE:
                # The copy carries the same sequence number and nonce:
                # the receiver's §5.3/§5.4 checks must shoot it down.
                self.forward(envelope)
                self.replay_later(envelope, 0.01)
            elif rule.action is FaultAction.DELAY:
                self.replay_later(envelope, rule.delay)
            elif rule.action is FaultAction.CORRUPT:
                self.forward_modified(envelope, corrupted=True)
            else:  # REORDER: hold briefly so the next message overtakes
                self.replay_later(envelope, rule.delay)
            return
        self.forward(envelope)


def generate_plans(seed: bytes | str, n: int) -> list[FaultPlan]:
    """Deterministically generate *n* fault plans from *seed*.

    The mix: mostly single-rule plans across the whole TPNR wire
    surface (every action x kind x occurrence), some two-rule compound
    plans, and roughly one in eight a party crash-and-restart window.
    Same seed, same *n* -> the identical plan list, forever.
    """
    rng = HmacDrbg(seed, personalization=b"fault-plans")
    actions = list(FaultAction)
    parties = ("alice", "bob", "ttp")
    plans: list[FaultPlan] = []
    for i in range(n):
        roll = rng.random()
        if roll < 0.125:
            node = rng.choice(parties)
            # Start at (or near) zero: an undisturbed session is over in
            # milliseconds, so a late window would never see traffic.
            start = rng.choice((0.0, 0.0, 0.1, 0.7))
            # Long windows (past the response time-out) force the
            # survivor down the Resolve path; short ones are absorbed
            # by retransmission alone.
            duration = round(0.5 + rng.random() * 5.0, 3)
            plans.append(
                FaultPlan(
                    name=f"p{i:03d}-crash-{node}",
                    crashes=(CrashWindow(node, start, duration),),
                )
            )
            continue

        def one_rule() -> FaultRule:
            action = rng.choice(actions)
            # Bias toward kinds every Normal-mode session actually
            # sends; resolve-path kinds only appear once a prior fault
            # has forced an escalation.
            kind = (
                rng.choice(TPNR_KINDS[:5])
                if rng.random() < 0.7
                else rng.choice(TPNR_KINDS[5:])
            )
            nth = rng.randint(1, 2)
            # DROP spans may exceed the whole retransmit budget
            # (1 original + max_retransmits) to force escalation.
            count = rng.randint(1, 5) if action is FaultAction.DROP else 1
            delay = (
                rng.choice((1.0, 2.0, 4.0))
                if action is FaultAction.DELAY
                else 0.05
            )
            return FaultRule(action=action, kind=kind, nth=nth, count=count, delay=delay)

        rules = (one_rule(),) if roll < 0.875 else (one_rule(), one_rule())
        tag = "+".join(r.action.value for r in rules)
        plans.append(FaultPlan(name=f"p{i:03d}-{tag}", rules=rules))
    return plans


def generate_amnesia_plans(seed: bytes | str, n: int) -> list[FaultPlan]:
    """Deterministically generate *n* amnesia-crash plans from *seed*.

    Every plan crashes one party with ``amnesia=True`` (volatile state
    wiped, recovery at restart).  About one in five adds a *second*
    crash shortly after the first recovery (double-crash), and about
    one in four pairs the crash with an ordinary message fault so
    recovery runs under degraded networking too.  Same seed, same *n*
    -> the identical plan list, forever.
    """
    rng = HmacDrbg(seed, personalization=b"amnesia-plans")
    parties = ("alice", "bob", "ttp")
    plans: list[FaultPlan] = []
    for i in range(n):
        node = rng.choice(parties)
        # Same timing logic as generate_plans: early windows, because
        # an undisturbed session is over in milliseconds; long windows
        # (past the response time-out) force the survivor to escalate.
        start = rng.choice((0.0, 0.0, 0.1, 0.7))
        duration = round(0.5 + rng.random() * 5.0, 3)
        windows = [CrashWindow(node, start, duration, amnesia=True)]
        tag = node
        if rng.random() < 0.2:
            gap = round(0.2 + rng.random() * 1.0, 3)
            second = round(0.3 + rng.random() * 2.0, 3)
            windows.append(
                CrashWindow(
                    node,
                    round(start + duration + gap, 3),
                    second,
                    amnesia=True,
                )
            )
            tag += "-x2"
        rules: tuple[FaultRule, ...] = ()
        if rng.random() < 0.25:
            action = rng.choice(
                (FaultAction.DROP, FaultAction.DUPLICATE, FaultAction.DELAY)
            )
            kind = rng.choice(TPNR_KINDS[:5])
            rules = (
                FaultRule(action=action, kind=kind, nth=rng.randint(1, 2)),
            )
            tag += f"+{action.value}"
        plans.append(
            FaultPlan(
                name=f"c{i:03d}-amnesia-{tag}",
                rules=rules,
                crashes=tuple(windows),
            )
        )
    return plans


def generate_replica_plans(seed: bytes | str, n: int) -> list[FaultPlan]:
    """Deterministically generate *n* replica-fault plans from *seed*.

    Roughly one in six plans is a clean control (no faults at all —
    the verifier must stay silent on those); the rest inject one
    replica-scoped fault, with about one in eight doubling up two
    faults on distinct replicas (``replica-compound`` in the
    breakdown).  Byzantine plans forge the attestation MAC half the
    time.  Same seed, same *n* -> the identical plan list, forever.
    """
    rng = HmacDrbg(seed, personalization=b"replica-plans")
    modes = list(ReplicaFaultMode)
    plans: list[FaultPlan] = []
    for i in range(n):
        roll = rng.random()
        if roll < 1 / 6:
            plans.append(FaultPlan(name=f"r{i:03d}-clean"))
            continue

        def one_fault(exclude: str | None = None) -> ReplicaFault:
            mode = rng.choice(modes)
            candidates = [r for r in REPLICA_NAMES if r != exclude]
            replica = rng.choice(candidates)
            forged = (
                mode is ReplicaFaultMode.BYZANTINE and rng.random() < 0.5
            )
            return ReplicaFault(
                mode=mode,
                replica=replica,
                at_op=rng.randint(1, 6),
                forge_attestation=forged,
            )

        first = one_fault()
        if roll < 1 / 6 + 1 / 8:
            second = one_fault(exclude=first.replica)
            plans.append(
                FaultPlan(
                    name=f"r{i:03d}-compound",
                    replica_faults=(first, second),
                )
            )
        else:
            plans.append(
                FaultPlan(
                    name=f"r{i:03d}-{first.mode.value}",
                    replica_faults=(first,),
                )
            )
    return plans


def generate_storm_plans(seed: bytes | str, n: int, profile: str = "mixed") -> list[FaultPlan]:
    """Deterministically generate *n* fault-*storm* plans from *seed*.

    The plans of :func:`generate_plans` are surgical (one targeted
    fault, usually masked); storms are what the SLO layer exists to
    catch — a sustained bad patch where most sessions go wrong at
    once, burning the error budget fast enough to page.  Profiles:

    * ``"blackout"`` — drop every TPNR message for the whole session
      (retransmits included), forcing abort/failure verdicts;
    * ``"delay"`` — hold key messages for 12–30 sim-seconds, pushing
      terminal-verdict latency far past the 10 s objective;
    * ``"corrupt"`` — corrupt the first several uploads, forcing
      retransmission storms and Resolve escalations;
    * ``"mixed"`` — a seeded blend of the above.

    Same seed, same *n*, same profile -> the identical plan list.
    """
    rng = HmacDrbg(seed, personalization=b"storm-plans/" + profile.encode())
    kinds = ("blackout", "delay", "corrupt")
    if profile not in kinds + ("mixed",):
        raise ValueError(f"unknown storm profile {profile!r}")
    plans: list[FaultPlan] = []
    for i in range(n):
        kind = profile if profile != "mixed" else rng.choice(kinds)
        if kind == "blackout":
            plans.append(FaultPlan(
                name=f"s{i:03d}-storm-blackout",
                rules=(FaultRule(FaultAction.DROP, "tpnr.", count=64),),
            ))
        elif kind == "delay":
            hold = round(12.0 + rng.random() * 18.0, 3)
            target = rng.choice(
                ("tpnr.upload.receipt", "tpnr.upload", "tpnr.download.response"))
            plans.append(FaultPlan(
                name=f"s{i:03d}-storm-delay",
                rules=(FaultRule(
                    FaultAction.DELAY, target, count=3, delay=hold),),
            ))
        else:
            plans.append(FaultPlan(
                name=f"s{i:03d}-storm-corrupt",
                rules=(FaultRule(FaultAction.CORRUPT, "tpnr.upload", count=8),),
            ))
    return plans


# ---------------------------------------------------------------------------
# Campaign running
# ---------------------------------------------------------------------------

_TERMINAL = frozenset({"completed", "aborted", "resolved", "failed"})


@dataclass
class CampaignOutcome:
    """One plan's end-to-end result plus invariant verdicts."""

    index: int
    plan: FaultPlan
    status: str
    detail: str
    ttp_involved: bool
    steps: int
    faults_fired: int
    retransmits: int
    duplicates_suppressed: int
    download_ok: bool
    crashes: int = 0
    recoveries: int = 0
    resumed: int = 0  # in-flight work re-sent by recovery
    escalated: int = 0  # in-flight work escalated to Resolve/FAILED
    # Telemetry fields for the per-fault-class breakdown; deliberately
    # NOT part of row(), so report signatures stay comparable with PR 1.
    elapsed: float = 0.0  # sim-clock seconds this plan's session took
    wal_replayed: int = 0  # WAL records replayed across its recoveries
    violations: tuple[str, ...] = ()
    # Forensic findings from the ConsistencyAuditor (AuditFinding
    # objects) when the runner was built with forensics=True; also
    # excluded from row() so signatures stay comparable.
    findings: tuple = ()

    @property
    def hung(self) -> bool:
        return self.status not in _TERMINAL

    def row(self) -> tuple:
        return (
            self.index,
            self.plan.name,
            self.plan.describe(),
            self.status,
            self.detail,
            "yes" if self.ttp_involved else "no",
            self.steps,
            self.faults_fired,
            self.retransmits,
            self.duplicates_suppressed,
            "yes" if self.download_ok else "no",
            self.crashes,
            self.recoveries,
            "; ".join(self.violations) if self.violations else "-",
        )


@dataclass
class CampaignReport:
    """All outcomes of one campaign, renderable and comparable."""

    seed: str
    scenario: str
    outcomes: list[CampaignOutcome] = field(default_factory=list)
    # Anomaly alerts emitted during the run (anomaly=True); excluded
    # from signature() like all telemetry-only surfaces.
    alerts: list = field(default_factory=list)
    # End-of-run SLOReport (slo=True); telemetry-only, excluded from
    # signature() like alerts.
    slo: object | None = None

    HEADERS = (
        "#", "plan", "faults", "status", "detail", "ttp",
        "steps", "fired", "retx", "dup-supp", "dl-ok",
        "crash", "recov", "violations",
    )

    @property
    def hung_sessions(self) -> int:
        return sum(1 for o in self.outcomes if o.hung)

    @property
    def violation_count(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def finding_count(self) -> int:
        return sum(len(o.findings) for o in self.outcomes)

    def finding_categories(self) -> dict[str, int]:
        """Forensic finding counts by category, across all plans."""
        counts: dict[str, int] = {}
        for o in self.outcomes:
            for f in o.findings:
                counts[f.category] = counts.get(f.category, 0) + 1
        return dict(sorted(counts.items()))

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for o in self.outcomes:
            counts[o.status] = counts.get(o.status, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        from ..analysis.report import render_kv, render_table  # lazy: net must not import analysis at import time
        from ..obs.campaign import breakdown_table  # lazy, same reason

        table = render_table(
            self.HEADERS,
            [o.row() for o in self.outcomes],
            title=f"Fault campaign seed={self.seed!r} scenario={self.scenario}",
        )
        summary = render_kv(
            [
                ("plans", len(self.outcomes)),
                ("status counts", self.status_counts()),
                ("hung sessions", self.hung_sessions),
                ("invariant violations", self.violation_count),
            ],
            title="summary",
        )
        breakdown = breakdown_table(self)
        return f"{table}\n{summary}\n{breakdown}"

    def signature(self) -> str:
        """Stable digest of the outcome table — two campaigns with the
        same seed must produce the same signature (transaction IDs are
        process-global and deliberately excluded from rows)."""
        body = "\n".join(repr(o.row()) for o in self.outcomes)
        return hashlib.sha256(body.encode()).hexdigest()


class CampaignRunner:
    """Sweep fault plans over TPNR sessions and check invariants.

    One deployment (one PKI, one simulator) is shared across all plans
    — key generation dominates setup cost, and sharing it is also the
    stronger test: residual state from a faulted session must not
    poison the next one.  Each plan gets a fresh transaction, a fresh
    fault injector arming, and a full invariant audit afterwards.
    """

    def __init__(
        self,
        seed: bytes | str = b"fault-campaign",
        scenario: str = "session",
        payload_range: tuple[int, int] = (64, 512),
        durable: bool = False,
        observe: bool = False,
        forensics: bool = False,
        anomaly: bool = False,
        slo: bool = False,
        on_plan=None,
    ) -> None:
        if scenario not in ("session", "upload", "abort"):
            raise ValueError(f"unknown scenario {scenario!r}")
        if anomaly and not observe:
            raise ValueError("anomaly detection requires observe=True")
        if slo and not observe:
            raise ValueError("SLO evaluation requires observe=True")
        self.seed = seed if isinstance(seed, str) else seed.decode("latin-1")
        self.scenario = scenario
        self.payload_range = payload_range
        self.durable = durable
        self.observe = observe
        self.forensics = forensics
        self.anomaly = anomaly
        self.slo = slo
        # on_plan: optional (index, outcome) callback fired after each
        # plan's audit — the live-dashboard hook; it sees self.slos and
        # self.deployment mid-run.
        self.on_plan = on_plan
        self.slos = None  # the SLOManager, exposed once run() starts
        self.deployment = None  # the shared deployment, exposed after run()
        self._rng = HmacDrbg(seed, personalization=b"fault-campaign")

    def run(self, plans: list[FaultPlan]) -> CampaignReport:
        from ..core.protocol import (  # lazy: avoid net <-> core import cycle
            make_deployment,
            run_abort,
            run_session,
            run_upload,
        )

        dep = make_deployment(
            seed=self.seed.encode("latin-1") + b"/campaign",
            durable=self.durable,
            observe=self.observe,
        )
        self.deployment = dep
        auditor = None
        if self.forensics:
            from ..obs.forensics import ConsistencyAuditor  # lazy: see render()

            # exclusive_trace: the runner clears the trace per plan, so
            # every wire event belongs to the plan under audit.
            auditor = ConsistencyAuditor.for_deployment(dep, exclusive_trace=True)
        monitor = None
        if self.anomaly:
            from ..obs.campaign import attach_campaign_detectors  # lazy: see render()

            monitor = attach_campaign_detectors(dep.obs.monitor, dep.obs.metrics)
        slos = None
        if self.slo:
            from ..obs.slo import SLOManager, standard_campaign_slos  # lazy: see render()

            slos = standard_campaign_slos(
                SLOManager(dep.obs.metrics, clock=lambda: dep.sim.now))
            self.slos = slos
        report = CampaignReport(seed=self.seed, scenario=self.scenario)
        lo, hi = self.payload_range
        for index, plan in enumerate(plans):
            payload = self._rng.generate(self._rng.randint(lo, hi))
            injector = FaultInjector(plan)
            dep.network.install_adversary(injector)
            injector.reset(epoch=dep.sim.now)
            started_at = dep.sim.now
            before = self._counters(dep)
            if self.scenario == "abort":
                outcome = run_abort(dep, payload)
            elif self.scenario == "upload":
                outcome = run_upload(dep, payload)
            else:
                outcome = run_session(dep, payload)
            dep.network.remove_adversary()
            after = self._counters(dep)
            txn = outcome.transaction_id
            violations = self._audit(dep, txn, injector)
            findings = () if auditor is None else tuple(auditor.audit(txn))
            download = outcome.download
            report.outcomes.append(
                CampaignOutcome(
                    index=index,
                    plan=plan,
                    status=outcome.upload_status.value,
                    detail=outcome.upload_detail,
                    ttp_involved=outcome.ttp_involved,
                    steps=outcome.steps,
                    faults_fired=len(dep.network.trace.faults()),
                    retransmits=after[0] - before[0],
                    duplicates_suppressed=after[1] - before[1],
                    download_ok=bool(download and download.verified),
                    crashes=injector.crash_begins,
                    recoveries=injector.recoveries,
                    resumed=sum(r.resumed for r in injector.recovery_reports),
                    escalated=sum(r.escalated for r in injector.recovery_reports),
                    elapsed=dep.sim.now - started_at,
                    wal_replayed=sum(
                        r.records_replayed for r in injector.recovery_reports
                    ),
                    violations=tuple(violations),
                    findings=findings,
                )
            )
            if monitor is not None or slos is not None:
                self._feed_anomaly_metrics(dep, report.outcomes[-1])
            if monitor is not None:
                report.alerts.extend(monitor.poll(dep.sim.now))
            if slos is not None:
                self._feed_slo_metrics(dep, report.outcomes[-1])
                report.alerts.extend(slos.poll(dep.sim.now))
            if self.on_plan is not None:
                self.on_plan(index, report.outcomes[-1])
        if slos is not None:
            report.slo = slos.report(dep.sim.now)
        if dep.obs.enabled:
            from ..obs.campaign import record_campaign_metrics  # lazy: see render()

            record_campaign_metrics(report, dep.obs.metrics)
        return report

    # -- bookkeeping ---------------------------------------------------------

    @staticmethod
    def _feed_anomaly_metrics(dep: "Deployment", outcome: CampaignOutcome) -> None:
        """Mirror one plan's outcome into the live campaign counters
        the anomaly detectors window over."""
        metrics = dep.obs.metrics
        metrics.counter("campaign.live.retransmits").inc(outcome.retransmits)
        if outcome.ttp_involved:
            metrics.counter("campaign.live.escalations").inc()
        ok = not outcome.hung and outcome.status != "failed"
        metrics.counter(
            "campaign.live.sessions", outcome="ok" if ok else "failed"
        ).inc()
        metrics.histogram("campaign.live.latency_seconds").observe(outcome.elapsed)

    @staticmethod
    def _feed_slo_metrics(dep: "Deployment", outcome: CampaignOutcome) -> None:
        """Mirror one plan's outcome into the counters/sketches the
        standard campaign SLIs read.  A good *verdict* is a session
        that reached completed/resolved without hanging; *evidence* is
        good when the end-to-end download verified."""
        metrics = dep.obs.metrics
        verdict_ok = outcome.status in ("completed", "resolved") and not outcome.hung
        metrics.counter(
            "campaign.live.verdicts", outcome="ok" if verdict_ok else "bad"
        ).inc()
        metrics.counter(
            "campaign.live.evidence",
            outcome="ok" if outcome.download_ok else "bad",
        ).inc()
        metrics.sketch("campaign.live.latency").observe(outcome.elapsed)

    @staticmethod
    def _counters(dep: "Deployment") -> tuple[int, int]:
        parties = (dep.client, dep.provider, dep.ttp)
        return (
            sum(p.retransmits_sent for p in parties),
            sum(p.evidence_store.duplicates_suppressed for p in parties),
        )

    # -- invariants ----------------------------------------------------------

    def _audit(
        self, dep: "Deployment", txn: str, injector: FaultInjector
    ) -> list[str]:
        violations: list[str] = []
        violations.extend(self._check_terminal(dep, txn))
        violations.extend(self._check_evidence(dep, txn))
        violations.extend(self._check_trace_accounting(dep))
        violations.extend(self._check_durability(dep, injector.amnesia_nodes))
        return violations

    @staticmethod
    def _check_terminal(dep: "Deployment", txn: str) -> list[str]:
        out = []
        record = dep.client.transactions.get(txn)
        if record is None or record.status.value not in _TERMINAL:
            status = record.status.value if record else "missing"
            out.append(f"client transaction not terminal: {status}")
        if dep.sim.pending() != 0:
            out.append(f"simulator not drained: {dep.sim.pending()} events pending")
        return out

    @staticmethod
    def _check_evidence(dep: "Deployment", txn: str) -> list[str]:
        """No conflicting evidence: for one transaction, each (signer,
        flag) pair must attest a single data hash.  Retransmissions
        legitimately re-issue evidence (fresh headers), but they must
        all say the same thing; two receipts with different hashes
        would be a double-issued, self-contradictory commitment."""
        out = []
        for party in (dep.client, dep.provider, dep.ttp):
            attested: dict[tuple[str, str], set[bytes]] = {}
            for ev in party.evidence_store.for_transaction(txn):
                attested.setdefault(
                    (ev.signer, ev.header.flag.value), set()
                ).add(ev.header.data_hash)
            for (signer, flag), hashes in attested.items():
                if len(hashes) > 1 and flag != "DOWNLOAD_RESPONSE":
                    out.append(
                        f"{party.name} holds {len(hashes)} conflicting hashes "
                        f"from {signer} for flag {flag}"
                    )
        return out

    @staticmethod
    def _check_trace_accounting(dep: "Deployment") -> list[str]:
        """Every sent message has a recorded fate: delivered, dropped
        by the channel, or attributed to a fault decision.  A message
        that only appears as ``send`` vanished silently — exactly the
        kind of bug fault injection exists to catch."""
        out = []
        trace = dep.network.trace
        fates = {"deliver", "drop", "corrupt", "inject"}
        for send in trace.sends():
            events = trace.explain(send.msg_id)
            accounted = any(
                e.action in fates or e.action.startswith("fault.") for e in events
            )
            if not accounted:
                out.append(f"message {send.msg_id} ({send.kind}) has no recorded fate")
        return out

    @staticmethod
    def _check_durability(dep: "Deployment", amnesia_nodes: set[str]) -> list[str]:
        """No durably-acknowledged evidence record may ever be missing
        from the live store — not after any number of crashes and
        recoveries.  ``acked_evidence`` is everything the journal has
        fsynced; on an honest disk it is exactly what recovery can (and
        therefore must) restore.  A party hit by an amnesia crash with
        no journal at all lost its state irrecoverably — also flagged."""
        out = []
        for party in (dep.client, dep.provider, dep.ttp):
            journal = party.journal
            if journal is None:
                if party.name in amnesia_nodes:
                    out.append(
                        f"{party.name} took an amnesia crash with no durable "
                        f"journal: state irrecoverably lost"
                    )
                continue
            lost = journal.acked_evidence - party.evidence_store.seen_keys()
            if lost:
                out.append(
                    f"{party.name} lost {len(lost)} durably-acknowledged "
                    f"evidence record(s)"
                )
        return out
