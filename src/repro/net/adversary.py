"""Adversary framework: a hook that sits on the wire.

An :class:`Adversary` registered with a network sees every envelope
whose (src, dst) pair it claims to be "in position" for, *before* the
channel dice are rolled.  It can:

* forward the envelope unchanged (:meth:`forward`),
* modify it (construct a new envelope and forward that),
* drop it (do nothing),
* stash it for later replay (:meth:`replay_later` / ``network.inject``),
* originate entirely new envelopes.

Concrete attacks in :mod:`repro.attacks` subclass this.  The base class
also keeps counters so experiments can report how much traffic each
attack saw/altered.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from .network import Envelope, Network

__all__ = ["Adversary", "PassiveEavesdropper"]


class Adversary:
    """Base wire-level adversary.

    :param positions: set of (src, dst) pairs to intercept, or None to
        intercept everything.
    """

    def __init__(self, name: str = "mallory", positions: set[tuple[str, str]] | None = None) -> None:
        self.name = name
        self.positions = positions
        self._network: "Network | None" = None
        self.seen: list["Envelope"] = []
        self.forwarded = 0
        self.modified = 0
        self.dropped = 0
        self.injected = 0

    # -- wiring ----------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise NetworkError(f"adversary {self.name!r} not installed on a network")
        return self._network

    def in_position(self, envelope: "Envelope") -> bool:
        """True when this adversary intercepts the given flow."""
        if self.positions is None:
            return True
        return (envelope.src, envelope.dst) in self.positions

    # -- interception ------------------------------------------------------------

    def on_intercept(self, envelope: "Envelope") -> None:
        """Default policy: observe and forward unchanged."""
        self.seen.append(envelope)
        self.forward(envelope)

    # -- actions -------------------------------------------------------------------

    def forward(self, envelope: "Envelope") -> None:
        """Put an envelope (back) on the wire toward its destination."""
        self.forwarded += 1
        self.network.inject(envelope, mark="inject")

    def forward_modified(self, envelope: "Envelope", **changes: Any) -> "Envelope":
        """Alter envelope fields (payload, dst, ...) and forward."""
        altered = replace(envelope, **changes)
        self.modified += 1
        self.network.inject(altered, mark="inject")
        return altered

    def drop(self, envelope: "Envelope") -> None:
        """Swallow the envelope (book-keeping only)."""
        self.dropped += 1

    def replay_later(self, envelope: "Envelope", delay: float) -> None:
        """Re-inject a verbatim copy after *delay* seconds."""
        self.injected += 1
        self.network.sim.schedule(delay, lambda: self.network.inject(envelope, mark="inject"))


class PassiveEavesdropper(Adversary):
    """Records everything, changes nothing — the SSL threat model's
    baseline adversary, useful for asserting what crosses the wire."""

    def on_intercept(self, envelope: "Envelope") -> None:
        self.seen.append(envelope)
        self.forward(envelope)

    def observed_kinds(self) -> list[str]:
        return [e.kind for e in self.seen]
