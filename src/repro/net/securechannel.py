"""A miniature TLS: signed ephemeral DH handshake + AEAD record layer.

The paper's platforms all delegate per-session integrity to SSL (§2).
This module is that SSL stand-in.  The handshake is server-
authenticated (optionally mutual), the record layer numbers and MACs
every record, and — crucially for the paper's argument — a client that
*skips certificate validation* (``verify_peer=False``) completes the
handshake happily with a man in the middle.  The attack suite uses
exactly that knob to reproduce §5.1.

Handshake flow::

    Client                                  Server
      | -- ClientHello(random_c, dh_c) ------> |
      | <-- ServerHello(random_s, dh_s,        |
      |        cert_s, sig_s(transcript)) ---- |
      | -- Finished(HMAC(master, transcript)) >|

Master secret = HMAC(shared_dh, random_c || random_s); directional
record keys are derived with "c2s"/"s2c" labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import aead, dh, rsa
from ..crypto.drbg import HmacDrbg
from ..crypto.hmac_ import constant_time_equals, hmac_digest
from ..crypto.numbers import int_to_bytes
from ..crypto.pki import Certificate, Identity, KeyRegistry
from ..errors import HandshakeError, RecordError

__all__ = [
    "ClientHello",
    "ServerHello",
    "Finished",
    "Record",
    "SecureSession",
    "ClientEndpoint",
    "ServerEndpoint",
    "establish_session",
]

_RANDOM_SIZE = 32


@dataclass(frozen=True)
class ClientHello:
    client_name: str
    random: bytes
    dh_public: int

    def wire_size(self) -> int:
        return len(self.client_name) + _RANDOM_SIZE + (self.dh_public.bit_length() + 7) // 8


@dataclass(frozen=True)
class ServerHello:
    server_name: str
    random: bytes
    dh_public: int
    certificate: Certificate
    signature: bytes

    def wire_size(self) -> int:
        return (
            len(self.server_name)
            + _RANDOM_SIZE
            + (self.dh_public.bit_length() + 7) // 8
            + len(self.certificate.to_signed_bytes())
            + len(self.certificate.signature)
            + len(self.signature)
        )


@dataclass(frozen=True)
class Finished:
    verify_data: bytes

    def wire_size(self) -> int:
        return len(self.verify_data)


@dataclass(frozen=True)
class Record:
    """One protected record: explicit sequence number + sealed box."""

    seq: int
    sealed: bytes

    def wire_size(self) -> int:
        return 8 + len(self.sealed)


def _transcript(hello_c: ClientHello, random_s: bytes, dh_s: int) -> bytes:
    return b"|".join(
        [
            b"repro-tls-v1",
            hello_c.client_name.encode(),
            hello_c.random,
            int_to_bytes(hello_c.dh_public),
            random_s,
            int_to_bytes(dh_s),
        ]
    )


class SecureSession:
    """Established channel state for one direction pair.

    ``is_client`` decides which derived key encrypts outbound records.
    Sequence numbers are strictly increasing and verified on receive,
    so within-session replay and reordering are detected (RecordError).
    """

    def __init__(self, master: bytes, is_client: bool, peer_name: str, rng: HmacDrbg) -> None:
        self._send_key = hmac_digest(master, b"c2s" if is_client else b"s2c")
        self._recv_key = hmac_digest(master, b"s2c" if is_client else b"c2s")
        self._send_seq = 0
        self._recv_seq = 0
        self._rng = rng
        self.peer_name = peer_name

    def seal(self, plaintext: bytes) -> Record:
        """Protect one outbound record."""
        seq = self._send_seq
        self._send_seq += 1
        nonce = self._rng.generate(12)
        aad = b"record|" + seq.to_bytes(8, "big")
        return Record(seq=seq, sealed=aead.seal(self._send_key, nonce, plaintext, aad))

    def open(self, record: Record) -> bytes:
        """Verify and decrypt one inbound record (in order)."""
        if record.seq != self._recv_seq:
            raise RecordError(
                f"record sequence violation: got {record.seq}, expected {self._recv_seq}"
            )
        aad = b"record|" + record.seq.to_bytes(8, "big")
        try:
            plaintext = aead.open_(self._recv_key, record.sealed, aad)
        except Exception as exc:
            raise RecordError(f"record failed authentication: {exc}") from exc
        self._recv_seq += 1
        return plaintext


class ClientEndpoint:
    """Client half of the handshake state machine."""

    def __init__(
        self,
        name: str,
        rng: HmacDrbg,
        registry: KeyRegistry | None,
        expected_server: str,
        verify_peer: bool = True,
    ) -> None:
        self.name = name
        self._rng = rng.fork(f"tls-client/{name}")
        self._registry = registry
        self._expected_server = expected_server
        self._verify_peer = verify_peer
        self._group = dh.default_group()
        self._keypair: dh.DhKeyPair | None = None
        self._hello: ClientHello | None = None
        self.session: SecureSession | None = None

    def hello(self) -> ClientHello:
        """Produce the ClientHello (step 1)."""
        self._keypair = dh.generate_keypair(self._group, self._rng)
        self._hello = ClientHello(
            client_name=self.name,
            random=self._rng.generate(_RANDOM_SIZE),
            dh_public=self._keypair.public,
        )
        return self._hello

    def finish(self, server_hello: ServerHello, at_time: float = 0.0) -> Finished:
        """Consume the ServerHello, authenticate, derive keys (step 3)."""
        if self._hello is None or self._keypair is None:
            raise HandshakeError("finish() before hello()")
        transcript = _transcript(self._hello, server_hello.random, server_hello.dh_public)
        if self._verify_peer:
            if self._registry is None:
                raise HandshakeError("verify_peer requires a key registry")
            if server_hello.certificate.subject != self._expected_server:
                raise HandshakeError(
                    f"certificate subject {server_hello.certificate.subject!r} "
                    f"does not match expected server {self._expected_server!r}"
                )
            self._registry.ca.validate(server_hello.certificate, at_time)
            if not rsa.verify(
                server_hello.certificate.public_key, transcript, server_hello.signature
            ):
                raise HandshakeError("server handshake signature invalid")
        shared = dh.derive_shared_secret(self._keypair, server_hello.dh_public)
        master = hmac_digest(shared, self._hello.random + server_hello.random)
        self.session = SecureSession(master, is_client=True, peer_name=server_hello.server_name, rng=self._rng)
        return Finished(verify_data=hmac_digest(master, b"finished|" + transcript))


class ServerEndpoint:
    """Server half of the handshake state machine."""

    def __init__(self, identity: Identity, certificate: Certificate, rng: HmacDrbg) -> None:
        self.identity = identity
        self.certificate = certificate
        self._rng = rng.fork(f"tls-server/{identity.name}")
        self._group = dh.default_group()
        # client random -> (master secret, transcript bytes, client name)
        self._pending: dict[bytes, tuple[bytes, bytes, str]] = {}
        self.sessions: dict[str, SecureSession] = {}

    def respond(self, hello: ClientHello) -> ServerHello:
        """Consume a ClientHello, produce the signed ServerHello (step 2)."""
        keypair = dh.generate_keypair(self._group, self._rng)
        random_s = self._rng.generate(_RANDOM_SIZE)
        transcript = _transcript(hello, random_s, keypair.public)
        signature = rsa.sign(self.identity.private_key, transcript)
        # Key the pending handshake by the client random (unique per hello).
        shared = dh.derive_shared_secret(keypair, hello.dh_public)
        master = hmac_digest(shared, hello.random + random_s)
        self._pending[hello.random] = (master, transcript, hello.client_name)
        return ServerHello(
            server_name=self.identity.name,
            random=random_s,
            dh_public=keypair.public,
            certificate=self.certificate,
            signature=signature,
        )

    def complete(self, hello: ClientHello, finished: Finished) -> SecureSession:
        """Verify the client's Finished and install the session (step 4)."""
        try:
            master, transcript, client_name = self._pending.pop(hello.random)
        except KeyError as exc:
            raise HandshakeError("no pending handshake for this client random") from exc
        expected = hmac_digest(master, b"finished|" + transcript)
        if not constant_time_equals(expected, finished.verify_data):
            raise HandshakeError("client Finished MAC invalid")
        session = SecureSession(master, is_client=False, peer_name=client_name, rng=self._rng)
        self.sessions[client_name] = session
        return session


def establish_session(
    client: ClientEndpoint, server: ServerEndpoint, at_time: float = 0.0
) -> tuple[SecureSession, SecureSession]:
    """Run the three-message handshake in memory.

    Returns ``(client_session, server_session)``.  Attack code stages
    the same messages by hand instead of calling this helper.
    """
    hello = client.hello()
    server_hello = server.respond(hello)
    finished = client.finish(server_hello, at_time)
    server_session = server.complete(hello, finished)
    assert client.session is not None
    return client.session, server_session
