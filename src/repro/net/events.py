"""Discrete-event simulation engine.

A classic event-heap simulator: callbacks are scheduled at absolute or
relative simulated times and executed in timestamp order (FIFO among
equal timestamps, guaranteed by a monotonic tiebreak counter).  The
engine is single-threaded and deterministic — given the same schedule
of callbacks and the same DRBG seeds, every run is identical.

Protocol roles (Alice, Bob, TTP) run *on top of* this engine: message
deliveries and timeouts are just scheduled callbacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from ..errors import NetworkError
from .simclock import SimClock

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """Heap entry: (time, seq) ordering, callback excluded from compare."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it (O(1) lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Event heap plus clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("at t=1.5"))
        sim.run()
    """

    def __init__(self, start: float = 0.0, max_events: int = 10_000_000) -> None:
        self.clock = SimClock(start)
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._max_events = max_events
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise NetworkError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, t: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated time *t*."""
        if t < self.now:
            raise NetworkError(f"cannot schedule in the past (t={t} < now={self.now})")
        event = ScheduledEvent(time=t, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            self._processed += 1
            if self._processed > self._max_events:
                raise NetworkError(f"event budget exceeded ({self._max_events}); runaway protocol?")
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the heap is empty or time would pass *until*.

        With *until* set, the clock finishes advanced to exactly
        *until* (useful for slicing a simulation into phases).
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            self.step()
        if until is not None and self.now < until:
            self.clock.advance_to(until)

    def next_event_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when idle.

        Lazily discards cancelled heap heads on the way, so repeated
        polling (the throughput engine's run loop slices time with
        this) stays amortized O(log n).
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            return head.time
        return None

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
