"""Simulated wall clock.

A tiny mutable clock owned by the discrete-event :class:`Simulator`.
All timestamps in the library (message sent-at times, certificate
validity, protocol time limits, shipping transit) are expressed in
simulated seconds read from one of these, never from ``time.time()``,
so runs are deterministic.
"""

from __future__ import annotations

from ..errors import NetworkError

__all__ = ["SimClock"]


class SimClock:
    """Monotonically advancing simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Jump forward to absolute time *t* (never backwards)."""
        if t < self._now:
            raise NetworkError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Advance by *dt* >= 0 seconds.

        Delegates to :meth:`advance_to` so relative steps share the
        absolute path's monotonicity check and rounding — mixing the
        two must not accumulate float drift against the scheduler's
        absolute ``advance_to`` timestamps.
        """
        if dt < 0:
            raise NetworkError(f"negative clock step: {dt}")
        self.advance_to(self._now + dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(t={self._now:.6f})"
