"""Channel models: latency, jitter, loss, duplication, corruption.

A :class:`ChannelSpec` describes one direction of a link between two
nodes.  :meth:`ChannelSpec.sample` rolls the link's dice (from the
network's DRBG) and returns what happens to one message: the list of
delivery delays (empty = dropped, two entries = duplicated) and whether
the payload is corrupted in flight.

Bandwidth is modelled as a serialization delay proportional to message
size, which is what makes the "protocol time vs shipping time"
experiment (DESIGN.md S6) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..errors import NetworkError

__all__ = ["ChannelSpec", "Delivery", "PERFECT", "WAN", "LOSSY"]


@dataclass(frozen=True)
class Delivery:
    """Outcome for one copy of a message: arrival delay + corruption."""

    delay: float
    corrupted: bool


@dataclass(frozen=True)
class ChannelSpec:
    """One-way link characteristics.

    :param base_latency: fixed propagation delay in seconds.
    :param jitter: maximum extra uniform random delay in seconds.
    :param bandwidth_bps: serialization rate in bytes/second
        (``float("inf")`` disables size-dependent delay).
    :param drop_prob: probability a message copy is silently lost.
    :param duplicate_prob: probability the message arrives twice.
    :param corrupt_prob: probability a delivered copy is bit-flipped.
    """

    base_latency: float = 0.02
    jitter: float = 0.0
    bandwidth_bps: float = float("inf")
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise NetworkError("latency parameters must be non-negative")
        if self.bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        for name in ("drop_prob", "duplicate_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise NetworkError(f"{name} must be a probability, got {p}")

    def one_way_delay(self, size_bytes: int, rng: HmacDrbg) -> float:
        """Latency + jitter + serialization delay for *size_bytes*."""
        delay = self.base_latency
        if self.jitter:
            delay += rng.random() * self.jitter
        if self.bandwidth_bps != float("inf"):
            delay += size_bytes / self.bandwidth_bps
        return delay

    def sample(self, size_bytes: int, rng: HmacDrbg) -> list[Delivery]:
        """Roll the channel dice for one message.

        Returns zero, one, or two :class:`Delivery` outcomes.
        """
        if rng.random() < self.drop_prob:
            return []
        deliveries = [
            Delivery(
                delay=self.one_way_delay(size_bytes, rng),
                corrupted=rng.random() < self.corrupt_prob,
            )
        ]
        if self.duplicate_prob and rng.random() < self.duplicate_prob:
            deliveries.append(
                Delivery(
                    delay=self.one_way_delay(size_bytes, rng),
                    corrupted=rng.random() < self.corrupt_prob,
                )
            )
        return deliveries


#: Zero-latency, lossless channel — unit-test default.
PERFECT = ChannelSpec(base_latency=0.0)

#: A WAN-ish channel: 40 ms one-way, 10 ms jitter, 12.5 MB/s (100 Mbit).
WAN = ChannelSpec(base_latency=0.040, jitter=0.010, bandwidth_bps=12.5e6)

#: An unreliable channel for failure-injection tests.
LOSSY = ChannelSpec(base_latency=0.040, jitter=0.020, drop_prob=0.1, duplicate_prob=0.05)
