"""Base class for simulated network participants.

Protocol roles (Alice, Bob, the TTP, attackers' sock puppets) subclass
:class:`Node` and implement :meth:`on_message`.  Nodes send through
their attached network and schedule their own timeouts through the
shared simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from .events import ScheduledEvent
    from .network import Envelope, Network

__all__ = ["Node"]


class Node:
    """A named participant attached to a :class:`Network`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._network: "Network | None" = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: "Network") -> None:
        if self._network is not None:
            raise NetworkError(f"node {self.name!r} already attached")
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise NetworkError(f"node {self.name!r} is not attached to a network")
        return self._network

    @property
    def now(self) -> float:
        return self.network.sim.now

    @property
    def obs(self):
        """The network's observability seat (a shared no-op when the
        node is unattached or observation is off)."""
        network = self._network
        if network is None:
            from ..obs import NULL_OBS  # lazy: nodes exist before attachment

            return NULL_OBS
        return network.obs

    # -- I/O --------------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: Any) -> "Envelope":
        """Send *payload* to node *dst* with a trace label *kind*."""
        return self.network.send(self.name, dst, kind, payload)

    def set_timeout(self, delay: float, callback: Callable[[], None]) -> "ScheduledEvent":
        """Schedule *callback* after *delay* simulated seconds."""
        return self.network.sim.schedule(delay, callback)

    def on_message(self, envelope: "Envelope") -> None:
        """Handle a delivered message.  Subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
