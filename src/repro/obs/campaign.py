"""Per-fault-class telemetry for FC1/CR1 campaign reports.

A :class:`~repro.net.faults.CampaignReport` is a flat per-plan table;
this module folds it by *fault class* — the shape of the injected
fault, derived from the plan itself — so a campaign summary can answer
"how do drops behave vs. amnesia crashes?" directly:

* per-class plan counts and terminal-status mix,
* retry (retransmission) counts,
* escalation rates (fraction of sessions that needed the TTP),
* WAL replay lengths across recoveries,
* sim-clock latency histograms per class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .anomaly import (
    AnomalyMonitor,
    BurnRateDetector,
    QuantileThresholdDetector,
    RateShiftDetector,
)
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..net.faults import CampaignReport, FaultPlan

__all__ = [
    "fault_class",
    "class_breakdown",
    "breakdown_table",
    "record_campaign_metrics",
    "attach_campaign_detectors",
]


def fault_class(plan: "FaultPlan") -> str:
    """Classify a plan by the shape of what it injects.

    Replica-scoped faults dominate (the fault mode's value, e.g.
    ``replica-divergence``; several distinct modes in one plan fold to
    ``replica-compound``).  Crash windows come next (``amnesia`` /
    ``crash``); otherwise plans are ``compound`` (several rules), the
    single rule's action name (``drop``, ``duplicate``, ``delay``,
    ``corrupt``, ``reorder``), or ``none`` for the no-op plan.
    """
    replica_faults = getattr(plan, "replica_faults", ())
    if replica_faults:
        modes = sorted({rf.mode.value for rf in replica_faults})
        return modes[0] if len(modes) == 1 else "replica-compound"
    if plan.crashes:
        crash = "amnesia" if any(w.amnesia for w in plan.crashes) else "crash"
        return f"{crash}+rules" if plan.rules else crash
    if len(plan.rules) > 1:
        return "compound"
    if plan.rules:
        return plan.rules[0].action.value
    return "none"


def class_breakdown(report: "CampaignReport") -> list[dict]:
    """Fold a campaign report into one row per fault class.

    Rows are sorted by class name; each carries plan/violation counts,
    the status mix, retry and escalation aggregates, WAL replay totals,
    and a sim-latency histogram of the per-plan elapsed times.
    """
    groups: dict[str, list] = {}
    for outcome in report.outcomes:
        groups.setdefault(fault_class(outcome.plan), []).append(outcome)
    rows: list[dict] = []
    for name in sorted(groups):
        outcomes = groups[name]
        n = len(outcomes)
        statuses: dict[str, int] = {}
        for o in outcomes:
            statuses[o.status] = statuses.get(o.status, 0) + 1
        latency = Histogram(f"campaign.latency.{name}", DEFAULT_LATENCY_BUCKETS)
        for o in outcomes:
            latency.observe(o.elapsed)
        escalated = sum(1 for o in outcomes if o.ttp_involved)
        rows.append({
            "fault_class": name,
            "plans": n,
            "statuses": dict(sorted(statuses.items())),
            "retries": sum(o.retransmits for o in outcomes),
            "retries_mean": sum(o.retransmits for o in outcomes) / n,
            "escalated": escalated,
            "escalation_rate": escalated / n,
            "recoveries": sum(o.recoveries for o in outcomes),
            "wal_replayed": sum(o.wal_replayed for o in outcomes),
            "violations": sum(len(o.violations) for o in outcomes),
            "elapsed_total": sum(o.elapsed for o in outcomes),
            "elapsed_mean": sum(o.elapsed for o in outcomes) / n,
            "latency": latency,
        })
    return rows


def breakdown_table(report: "CampaignReport") -> str:
    """The per-fault-class breakdown as a human-readable table."""
    from ..analysis.report import render_table  # lazy: obs must stay importable from net/core

    rows = []
    for r in class_breakdown(report):
        status_mix = " ".join(f"{k}:{v}" for k, v in r["statuses"].items())
        rows.append([
            r["fault_class"], r["plans"], status_mix,
            r["retries"], f"{r['retries_mean']:.2f}",
            f"{r['escalation_rate']:.0%}", r["recoveries"],
            r["wal_replayed"], f"{r['elapsed_mean']:.3f}s", r["violations"],
        ])
    return render_table(
        ["class", "plans", "statuses", "retx", "retx/plan",
         "escal", "recov", "wal-replay", "mean-latency", "viol"],
        rows,
        title=f"Per-fault-class breakdown seed={report.seed!r} scenario={report.scenario}",
    )


def attach_campaign_detectors(
    monitor: AnomalyMonitor, metrics: MetricsRegistry
) -> AnomalyMonitor:
    """Subscribe the standard campaign detectors to the live counters.

    The :class:`~repro.net.faults.CampaignRunner` mirrors each plan's
    outcome into ``campaign.live.*`` instruments and polls the monitor
    once per plan, so one poll window is one plan — the detectors see
    retransmission storms, escalation bursts, latency blowups, and SLO
    burn across the sliding last-N-plans window.
    """
    retransmits = metrics.counter("campaign.live.retransmits")
    escalations = metrics.counter("campaign.live.escalations")
    sessions_ok = metrics.counter("campaign.live.sessions", outcome="ok")
    sessions_bad = metrics.counter("campaign.live.sessions", outcome="failed")
    latency = metrics.histogram("campaign.live.latency_seconds")
    monitor.add(RateShiftDetector(
        "retransmit-rate", lambda: retransmits.value,
        subject="campaign.live.retransmits",
        window=10, factor=4.0, min_events=4,
    ))
    monitor.add(RateShiftDetector(
        "escalation-rate", lambda: escalations.value,
        subject="campaign.live.escalations",
        window=10, factor=4.0, min_events=2,
    ))
    monitor.add(QuantileThresholdDetector(
        "latency-p99", lambda: latency,
        subject="campaign.live.latency_seconds",
        q=0.99, threshold=12.0, window=10, min_count=5,
    ))
    monitor.add(BurnRateDetector(
        "session-slo",
        lambda: sessions_ok.value, lambda: sessions_bad.value,
        subject="campaign.live.sessions",
        slo=0.9, threshold=2.0, window=10, min_events=5,
    ))
    return monitor


def record_campaign_metrics(report: "CampaignReport", metrics: MetricsRegistry) -> None:
    """Mirror the per-class breakdown into a metrics registry."""
    for r in class_breakdown(report):
        cls = r["fault_class"]
        metrics.counter("campaign.plans", fault_class=cls).inc(r["plans"])
        metrics.counter("campaign.retries", fault_class=cls).inc(r["retries"])
        metrics.counter("campaign.escalations", fault_class=cls).inc(r["escalated"])
        metrics.counter("campaign.recoveries", fault_class=cls).inc(r["recoveries"])
        metrics.counter("campaign.wal_replayed", fault_class=cls).inc(r["wal_replayed"])
        metrics.counter("campaign.violations", fault_class=cls).inc(r["violations"])
    for outcome in report.outcomes:
        cls = fault_class(outcome.plan)
        metrics.histogram("campaign.latency_seconds", fault_class=cls).observe(outcome.elapsed)
