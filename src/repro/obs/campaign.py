"""Per-fault-class telemetry for FC1/CR1 campaign reports.

A :class:`~repro.net.faults.CampaignReport` is a flat per-plan table;
this module folds it by *fault class* — the shape of the injected
fault, derived from the plan itself — so a campaign summary can answer
"how do drops behave vs. amnesia crashes?" directly:

* per-class plan counts and terminal-status mix,
* retry (retransmission) counts,
* escalation rates (fraction of sessions that needed the TTP),
* WAL replay lengths across recoveries,
* sim-clock latency histograms per class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..net.faults import CampaignReport, FaultPlan

__all__ = [
    "fault_class",
    "class_breakdown",
    "breakdown_table",
    "record_campaign_metrics",
]


def fault_class(plan: "FaultPlan") -> str:
    """Classify a plan by the shape of what it injects.

    Crash windows dominate (``amnesia`` / ``crash``); otherwise plans
    are ``compound`` (several rules), the single rule's action name
    (``drop``, ``duplicate``, ``delay``, ``corrupt``, ``reorder``), or
    ``none`` for the no-op plan.
    """
    if plan.crashes:
        crash = "amnesia" if any(w.amnesia for w in plan.crashes) else "crash"
        return f"{crash}+rules" if plan.rules else crash
    if len(plan.rules) > 1:
        return "compound"
    if plan.rules:
        return plan.rules[0].action.value
    return "none"


def class_breakdown(report: "CampaignReport") -> list[dict]:
    """Fold a campaign report into one row per fault class.

    Rows are sorted by class name; each carries plan/violation counts,
    the status mix, retry and escalation aggregates, WAL replay totals,
    and a sim-latency histogram of the per-plan elapsed times.
    """
    groups: dict[str, list] = {}
    for outcome in report.outcomes:
        groups.setdefault(fault_class(outcome.plan), []).append(outcome)
    rows: list[dict] = []
    for name in sorted(groups):
        outcomes = groups[name]
        n = len(outcomes)
        statuses: dict[str, int] = {}
        for o in outcomes:
            statuses[o.status] = statuses.get(o.status, 0) + 1
        latency = Histogram(f"campaign.latency.{name}", DEFAULT_LATENCY_BUCKETS)
        for o in outcomes:
            latency.observe(o.elapsed)
        escalated = sum(1 for o in outcomes if o.ttp_involved)
        rows.append({
            "fault_class": name,
            "plans": n,
            "statuses": dict(sorted(statuses.items())),
            "retries": sum(o.retransmits for o in outcomes),
            "retries_mean": sum(o.retransmits for o in outcomes) / n,
            "escalated": escalated,
            "escalation_rate": escalated / n,
            "recoveries": sum(o.recoveries for o in outcomes),
            "wal_replayed": sum(o.wal_replayed for o in outcomes),
            "violations": sum(len(o.violations) for o in outcomes),
            "elapsed_total": sum(o.elapsed for o in outcomes),
            "elapsed_mean": sum(o.elapsed for o in outcomes) / n,
            "latency": latency,
        })
    return rows


def breakdown_table(report: "CampaignReport") -> str:
    """The per-fault-class breakdown as a human-readable table."""
    from ..analysis.report import render_table  # lazy: obs must stay importable from net/core

    rows = []
    for r in class_breakdown(report):
        status_mix = " ".join(f"{k}:{v}" for k, v in r["statuses"].items())
        rows.append([
            r["fault_class"], r["plans"], status_mix,
            r["retries"], f"{r['retries_mean']:.2f}",
            f"{r['escalation_rate']:.0%}", r["recoveries"],
            r["wal_replayed"], f"{r['elapsed_mean']:.3f}s", r["violations"],
        ])
    return render_table(
        ["class", "plans", "statuses", "retx", "retx/plan",
         "escal", "recov", "wal-replay", "mean-latency", "viol"],
        rows,
        title=f"Per-fault-class breakdown seed={report.seed!r} scenario={report.scenario}",
    )


def record_campaign_metrics(report: "CampaignReport", metrics: MetricsRegistry) -> None:
    """Mirror the per-class breakdown into a metrics registry."""
    for r in class_breakdown(report):
        cls = r["fault_class"]
        metrics.counter("campaign.plans", fault_class=cls).inc(r["plans"])
        metrics.counter("campaign.retries", fault_class=cls).inc(r["retries"])
        metrics.counter("campaign.escalations", fault_class=cls).inc(r["escalated"])
        metrics.counter("campaign.recoveries", fault_class=cls).inc(r["recoveries"])
        metrics.counter("campaign.wal_replayed", fault_class=cls).inc(r["wal_replayed"])
        metrics.counter("campaign.violations", fault_class=cls).inc(r["violations"])
    for outcome in report.outcomes:
        cls = fault_class(outcome.plan)
        metrics.histogram("campaign.latency_seconds", fault_class=cls).observe(outcome.elapsed)
