"""Span-based structured tracing for TPNR transactions.

A :class:`Span` is one timed unit of protocol work (a transaction, a
resolve sub-protocol, a WAL replay).  Spans form trees: every span
carries a ``trace_id`` — for TPNR work this is the *transaction id* —
and an optional ``parent_id`` pointing at another span of the same
trace.  Cross-party linking is automatic: the :class:`Tracer` lives on
the *network* (one per deployment), so the provider's span for
transaction ``txn`` parents itself under the client's root span for
``txn`` without the parties sharing any state — which also means span
trees survive amnesia crashes that wipe a party's volatile memory.

Correlation with the wire-level :class:`repro.net.trace.TraceRecorder`
is by construction: span events that correspond to messages carry the
envelope ``msg_id``, so a span event and a trace event with the same
``msg_id`` describe the same bytes.

Timestamps come from the tracer's clock callable (the sim clock), so
span dumps are deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpanEvent", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    time: float
    name: str
    msg_id: int = 0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        row = {"time": self.time, "name": self.name}
        if self.msg_id:
            row["msg_id"] = self.msg_id
        if self.attrs:
            row["attrs"] = dict(sorted(self.attrs.items()))
        return row


@dataclass
class Span:
    """One timed unit of work inside a trace tree."""

    span_id: int
    trace_id: str
    name: str
    start: float
    parent_id: int = 0
    attrs: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    end: float | None = None
    status: str = "open"

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def event(self, time: float, name: str, msg_id: int = 0, **attrs) -> SpanEvent:
        ev = SpanEvent(time, name, msg_id, attrs)
        self.events.append(ev)
        return ev

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            # A span with no end was cut off mid-flight (crash, hung
            # session): exports must say so explicitly instead of
            # letting it masquerade as a finished span.
            "status": self.status if self.end is not None else "unfinished",
            "attrs": dict(sorted(self.attrs.items())),
            "events": [ev.to_dict() for ev in self.events],
        }


class Tracer:
    """Owns every span of one observed deployment.

    Span ids are sequential, so dumps are stable per seed.  The first
    span started for a trace_id becomes the trace's *root*; later spans
    for the same trace_id auto-parent under it unless an explicit
    parent is given.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._next_id = 1
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._roots: dict[str, Span] = {}

    @property
    def now(self) -> float:
        return self._clock()

    def start(self, trace_id: str, name: str, parent: Span | None = None, **attrs) -> Span:
        root = self._roots.get(trace_id)
        if parent is None and root is not None:
            parent = root
        span = Span(
            span_id=self._next_id,
            trace_id=trace_id,
            name=name,
            start=self.now,
            parent_id=parent.span_id if parent is not None else 0,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if root is None:
            self._roots[trace_id] = span
        return span

    def finish(self, span: Span, status: str = "ok") -> None:
        if span.finished:
            return
        span.end = self.now
        span.status = status

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def root(self, trace_id: str) -> Span | None:
        return self._roots.get(trace_id)

    def trace(self, trace_id: str) -> list[Span]:
        """Every span of one trace, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def trace_ids(self) -> list[str]:
        seen: list[str] = []
        for s in self.spans:
            if s.trace_id not in seen:
                seen.append(s.trace_id)
        return seen

    def tree_complete(self, trace_id: str) -> bool:
        """True iff the trace has a root, every span is finished, and
        every non-root span parent-links to a span of the same trace."""
        spans = self.trace(trace_id)
        if not spans:
            return False
        ids = {s.span_id for s in spans}
        root = self._roots.get(trace_id)
        for s in spans:
            if not s.finished:
                return False
            if s is root:
                if s.parent_id != 0:
                    return False
            elif s.parent_id not in ids:
                return False
        return True

    def to_dicts(self) -> list[dict]:
        return [s.to_dict() for s in self.spans]


class _NullSpan(Span):
    def event(self, time: float, name: str, msg_id: int = 0, **attrs) -> SpanEvent:
        return SpanEvent(0.0, name)

    def set(self, **attrs) -> None:
        pass


_SHARED_NULL_SPAN = _NullSpan(span_id=0, trace_id="", name="null", start=0.0)


class NullTracer(Tracer):
    """The disabled tracer: start/finish are no-ops on a shared span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def start(self, trace_id: str, name: str, parent: Span | None = None, **attrs) -> Span:
        return _SHARED_NULL_SPAN

    def finish(self, span: Span, status: str = "ok") -> None:
        pass


NULL_TRACER = NullTracer()
