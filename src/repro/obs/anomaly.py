"""Online anomaly detection over the metrics surface.

Post-mortem forensics (:mod:`repro.obs.forensics`) answers "what
happened to transaction X?"; this module answers "is the deployment
misbehaving *right now*?".  Three bounded-memory sliding-window
detectors cover the shapes of trouble the fault campaigns inject:

* :class:`RateShiftDetector` — a counter's per-poll delta jumps well
  above its recent baseline (retransmission storms, escalation bursts);
* :class:`QuantileThresholdDetector` — a windowed quantile of a
  histogram (the delta between the oldest and newest snapshot in the
  window) crosses a threshold (latency regressions);
* :class:`BurnRateDetector` — the windowed failure fraction, expressed
  as a multiple of an SLO error budget, exceeds a burn-rate threshold
  (the Google-SRE alerting shape, over campaign windows).

All state is O(window): deques of numbers or bucket-count snapshots,
never raw samples.  The windowed detectors are edge-triggered by
default — one alert on the transition into violation, re-armed once a
poll comes back healthy — so a single bad sample does not page on
every poll it spends sliding through the window.  Detectors read their instruments through plain
callables, so they can subscribe to a :class:`~repro.obs.metrics.
MetricsRegistry` instrument, a party attribute, or any derived sum.
Alerts are stamped with the *simulated* clock, so two same-seed runs
emit byte-identical alert streams — an alert is evidence, not noise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "Alert",
    "RateShiftDetector",
    "QuantileThresholdDetector",
    "BurnRateDetector",
    "AnomalyMonitor",
    "alerts_table",
]


@dataclass(frozen=True)
class Alert:
    """One deterministic, sim-clock-stamped detector firing."""

    time: float
    detector: str
    subject: str
    value: float
    threshold: float
    detail: str = ""

    def row(self) -> tuple:
        return (
            f"{self.time:.3f}s",
            self.detector,
            self.subject,
            f"{self.value:.4g}",
            f"{self.threshold:.4g}",
            self.detail,
        )


class Detector:
    """Base: a named check polled with the current sim time."""

    def __init__(self, name: str, subject: str) -> None:
        self.name = name
        self.subject = subject
        self.fired = 0
        self._firing = False

    def sample(self, now: float) -> list[Alert]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _alert(self, now: float, value: float, threshold: float, detail: str) -> Alert:
        self.fired += 1
        return Alert(now, self.name, self.subject, value, threshold, detail)

    def _gate(self, violated: bool, edge: bool) -> bool:
        """Edge-trigger a level condition: emit only on entry.

        Windowed detectors hold their condition true for up to
        ``window`` polls after one bad sample; paging on every poll of
        that plateau is noise.  With ``edge`` set, the detector fires
        once on the transition into violation and re-arms when a poll
        comes back healthy.
        """
        emit = violated and not (edge and self._firing)
        self._firing = violated
        return emit


class RateShiftDetector(Detector):
    """Fire when a counter's per-poll delta outruns its baseline.

    Each poll reads the cumulative counter, takes the delta since the
    previous poll, and compares it against ``factor`` times the mean of
    the last ``window`` deltas.  A burst from a silent baseline (mean
    0) fires as soon as the delta reaches ``min_events`` — a
    retransmission storm after minutes of quiet is exactly the case.
    """

    def __init__(
        self,
        name: str,
        reader: Callable[[], float],
        subject: str = "",
        window: int = 8,
        factor: float = 4.0,
        min_events: float = 3.0,
        min_history: int = 3,
    ) -> None:
        super().__init__(name, subject or name)
        self._reader = reader
        self.factor = factor
        self.min_events = min_events
        self.min_history = min_history
        self._deltas: deque[float] = deque(maxlen=window)
        self._last: float | None = None

    def sample(self, now: float) -> list[Alert]:
        value = float(self._reader())
        if self._last is None:
            self._last = value
            return []
        delta = value - self._last
        self._last = value
        baseline_deltas = list(self._deltas)
        self._deltas.append(delta)
        if len(baseline_deltas) < self.min_history:
            return []
        baseline = sum(baseline_deltas) / len(baseline_deltas)
        threshold = max(self.factor * baseline, self.min_events)
        if delta >= threshold:
            return [self._alert(
                now, delta, threshold,
                f"delta {delta:g} vs baseline {baseline:.3g}/poll",
            )]
        return []


class QuantileThresholdDetector(Detector):
    """Fire when a windowed histogram quantile crosses a threshold.

    The window is the delta between the oldest retained bucket-count
    snapshot and the live histogram, so the quantile reflects only the
    last ``window`` polls — a latency regression fires even after hours
    of healthy history have filled the cumulative buckets.
    """

    def __init__(
        self,
        name: str,
        reader: Callable[[], Histogram],
        subject: str = "",
        q: float = 0.99,
        threshold: float = 5.0,
        window: int = 8,
        min_count: int = 5,
        edge: bool = True,
    ) -> None:
        super().__init__(name, subject or name)
        self._reader = reader
        self.q = q
        self.threshold = threshold
        self.min_count = min_count
        self.edge = edge
        self._snaps: deque[tuple[int, list[int]]] = deque(maxlen=window)

    def sample(self, now: float) -> list[Alert]:
        hist = self._reader()
        out: list[Alert] = []
        violated = False
        value = 0.0
        window_count = 0
        if self._snaps:
            base_count, base_buckets = self._snaps[0]
            window_count = hist.count - base_count
            if window_count >= self.min_count:
                delta = Histogram(
                    f"{self.name}.window",
                    tuple(hist.buckets),
                    (),
                    [a - b for a, b in zip(hist.bucket_counts, base_buckets)],
                    window_count,
                    0.0,
                )
                value = delta.quantile(self.q)
                violated = value > self.threshold
        if self._gate(violated, self.edge):
            out.append(self._alert(
                now, value, self.threshold,
                f"p{self.q * 100:g} over {window_count} obs",
            ))
        self._snaps.append((hist.count, list(hist.bucket_counts)))
        return out


class BurnRateDetector(Detector):
    """Fire when the windowed error rate burns the SLO budget too fast.

    ``burn = windowed_failure_fraction / (1 - slo)``: burn 1.0 consumes
    the budget exactly at the sustainable pace; ``threshold`` of e.g.
    2.0 fires when errors arrive twice as fast as the SLO tolerates.
    """

    def __init__(
        self,
        name: str,
        good_reader: Callable[[], float],
        bad_reader: Callable[[], float],
        subject: str = "",
        slo: float = 0.95,
        threshold: float = 2.0,
        window: int = 8,
        min_events: float = 4.0,
        edge: bool = True,
    ) -> None:
        if not 0.0 < slo < 1.0:
            raise ValueError(f"slo must be in (0, 1), got {slo}")
        super().__init__(name, subject or name)
        self._good = good_reader
        self._bad = bad_reader
        self.slo = slo
        self.budget = 1.0 - slo
        self.threshold = threshold
        self.min_events = min_events
        self.edge = edge
        self._snaps: deque[tuple[float, float]] = deque(maxlen=window)

    def sample(self, now: float) -> list[Alert]:
        good, bad = float(self._good()), float(self._bad())
        out: list[Alert] = []
        violated = False
        burn = 0.0
        delta_bad = total = 0.0
        if self._snaps:
            good0, bad0 = self._snaps[0]
            delta_bad = bad - bad0
            total = (good - good0) + delta_bad
            if total >= self.min_events:
                burn = (delta_bad / total) / self.budget
                violated = burn >= self.threshold
        if self._gate(violated, self.edge):
            out.append(self._alert(
                now, burn, self.threshold,
                f"{delta_bad:g}/{total:g} failed vs slo {self.slo:g}",
            ))
        self._snaps.append((good, bad))
        return out


class AnomalyMonitor:
    """A polled bundle of detectors plus the alert log they feed.

    The monitor owns no thread and no timer: whatever drives the
    simulation (the :class:`~repro.engine.pool.SessionPool` sampling
    loop, the :class:`~repro.net.faults.CampaignRunner` per-plan hook)
    calls :meth:`poll` at its own cadence, so alert streams inherit the
    caller's determinism.
    """

    def __init__(self, metrics: MetricsRegistry, clock: Callable[[], float] | None = None) -> None:
        self.metrics = metrics
        self._clock = clock or (lambda: 0.0)
        self.detectors: list[Detector] = []
        self.alerts: list[Alert] = []
        self.polls = 0

    def add(self, detector: Detector) -> Detector:
        self.detectors.append(detector)
        return detector

    def poll(self, now: float | None = None) -> list[Alert]:
        """Sample every detector once; returns (and logs) new alerts."""
        if now is None:
            now = self._clock()
        self.polls += 1
        fresh: list[Alert] = []
        for detector in self.detectors:
            fresh.extend(detector.sample(now))
        self.alerts.extend(fresh)
        return fresh

    def alert_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.detector] = counts.get(alert.detector, 0) + 1
        return dict(sorted(counts.items()))

    def table(self, title: str = "Alerts") -> str:
        return alerts_table(self.alerts, title=title)


def alerts_table(alerts: list[Alert], title: str = "Alerts") -> str:
    """Alerts as a human-readable table (sim-time order preserved)."""
    from ..analysis.report import render_table  # lazy: obs must stay importable from net/core

    return render_table(
        ["time", "detector", "subject", "value", "threshold", "detail"],
        [a.row() for a in alerts],
        title=title,
    )
