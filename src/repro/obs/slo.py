"""Declarative SLOs: error budgets and multi-window burn-rate alerts.

The metrics layer (PR 3) records what happened and the anomaly layer
(PR 5) flags statistical surprises; this module states *objectives* —
"99% of TPNR transactions reach a terminal verdict within 10 sim
seconds", "95% of replica forks are detected within 5 s" — and
accounts for them continuously:

* an :class:`SLOSpec` binds an objective to an **SLI**, a good/bad
  event classifier read from the live registry (counter ratios,
  histogram latency thresholds, or sketch thresholds — no raw
  samples retained);
* an **error budget** (``1 - objective``) is burned by bad events;
  :class:`SLOStatus` reports consumption and remaining budget;
* alerting is the Google-SRE multi-window multi-burn-rate shape,
  built on the existing :class:`~repro.obs.anomaly.BurnRateDetector`:
  a *fast* window with a high burn threshold pages on cliffs, a
  *slow* window with a low threshold catches smoulder, both
  edge-triggered and polled on the caller's deterministic cadence.

Reports are stamped with the active :class:`~repro.scenarios.context.
RunStamp` and exported via JSONL / the summary table; the manager also
mirrors ``slo.*`` gauges into the registry, so the existing
Prometheus/JSONL exporters carry the SLO surface with no new hooks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from .anomaly import Alert, AnomalyMonitor, BurnRateDetector, alerts_table
from .metrics import MetricsRegistry

__all__ = [
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "SLOSpec",
    "CounterRatioSLI",
    "HistogramThresholdSLI",
    "SketchThresholdSLI",
    "SLOStatus",
    "SLOReport",
    "SLOManager",
    "slo_jsonl",
    "standard_campaign_slos",
    "standard_engine_slos",
    "standard_replication_slos",
]


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate alerting window: *window* polls wide, firing at
    *threshold* times the sustainable burn."""

    label: str
    window: int
    threshold: float


# The classic two-window page/ticket pair, scaled to campaign-length
# runs (windows are poll counts, not hours): a 4-poll window burning
# 8x pages fast on cliffs; a 16-poll window burning 2x catches the
# slow leak that would quietly exhaust the budget.
DEFAULT_BURN_WINDOWS = (
    BurnWindow("fast", 4, 8.0),
    BurnWindow("slow", 16, 2.0),
)


class CounterRatioSLI:
    """Good/bad read from two counter series (cumulative)."""

    def __init__(self, metrics: MetricsRegistry, good: tuple[str, dict] | str,
                 bad: tuple[str, dict] | str) -> None:
        self.metrics = metrics
        self._good = good if isinstance(good, tuple) else (good, {})
        self._bad = bad if isinstance(bad, tuple) else (bad, {})

    def _read(self, which: tuple[str, dict]) -> float:
        name, labels = which
        return self.metrics.counter(name, **labels).value

    def good(self) -> float:
        return self._read(self._good)

    def bad(self) -> float:
        return self._read(self._bad)

    def describe(self) -> str:
        return f"counter-ratio {self._good[0]} vs {self._bad[0]}"


class HistogramThresholdSLI:
    """Good = observations at or under *threshold* of one histogram.

    *threshold* must equal one of the histogram's bucket bounds so the
    good count is exact (cumulative count at that bound), never
    interpolated.
    """

    def __init__(self, metrics: MetricsRegistry, name: str, threshold: float,
                 buckets: tuple[float, ...] | None = None, **labels: str) -> None:
        self.metrics = metrics
        self.name = name
        self.threshold = threshold
        self.labels = labels
        self._buckets = buckets

    def _hist(self):
        if self._buckets is not None:
            return self.metrics.histogram(self.name, self._buckets, **self.labels)
        return self.metrics.histogram(self.name, **self.labels)

    def _good_bad(self) -> tuple[float, float]:
        hist = self._hist()
        if self.threshold not in hist.buckets:
            raise ValueError(
                f"threshold {self.threshold} is not a bucket bound of "
                f"{self.name!r} ({hist.buckets})")
        edge = hist.buckets.index(self.threshold)
        good = float(sum(hist.bucket_counts[: edge + 1]))
        return good, float(hist.count) - good

    def good(self) -> float:
        return self._good_bad()[0]

    def bad(self) -> float:
        return self._good_bad()[1]

    def describe(self) -> str:
        return f"{self.name} <= {self.threshold:g}s"


class SketchThresholdSLI:
    """Good = sketch observations at or under *threshold* (within the
    sketch's relative-error bound)."""

    def __init__(self, metrics: MetricsRegistry, name: str, threshold: float,
                 **labels: str) -> None:
        self.metrics = metrics
        self.name = name
        self.threshold = threshold
        self.labels = labels

    def _sketch(self):
        return self.metrics.sketch(self.name, **self.labels)

    def good(self) -> float:
        return float(self._sketch().count_le(self.threshold))

    def bad(self) -> float:
        sketch = self._sketch()
        return float(sketch.count - sketch.count_le(self.threshold))

    def describe(self) -> str:
        return f"sketch {self.name} <= {self.threshold:g}"


@dataclass(frozen=True)
class SLOSpec:
    """One declared objective over one SLI."""

    name: str
    objective: float
    sli: object  # CounterRatioSLI | HistogramThresholdSLI | SketchThresholdSLI
    description: str = ""
    burn_windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS
    min_events: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")


@dataclass
class SLOStatus:
    """One SLO's error-budget position at a point in sim time."""

    name: str
    objective: float
    description: str
    good: float
    bad: float
    sli: float
    budget_consumed: float
    budget_remaining: float
    burn_rates: dict[str, float]
    alerts: int

    @property
    def total(self) -> float:
        return self.good + self.bad

    def as_dict(self) -> dict:
        return {
            "slo": self.name,
            "objective": self.objective,
            "description": self.description,
            "good": self.good,
            "bad": self.bad,
            "sli": self.sli,
            "budget_consumed": self.budget_consumed,
            "budget_remaining": self.budget_remaining,
            "burn_rates": dict(sorted(self.burn_rates.items())),
            "alerts": self.alerts,
        }

    def row(self) -> list:
        burns = " ".join(
            f"{label}={rate:.2f}" for label, rate in sorted(self.burn_rates.items()))
        return [
            self.name, f"{self.objective:.3g}",
            f"{int(self.good)}/{int(self.total)}" if self.total else "0/0",
            f"{self.sli:.4f}" if self.total else "-",
            f"{self.budget_remaining:.0%}", burns or "-", self.alerts,
        ]


@dataclass
class SLOReport:
    """The full SLO surface of one run, RunStamp-included."""

    at: float
    statuses: list[SLOStatus]
    alerts: list[Alert]
    meta: dict = field(default_factory=dict)

    def burn_alerts(self) -> list[Alert]:
        return [a for a in self.alerts if a.detector.startswith("slo-burn:")]

    def alert_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.detector] = counts.get(alert.detector, 0) + 1
        return dict(sorted(counts.items()))

    def status(self, name: str) -> SLOStatus:
        for status in self.statuses:
            if status.name == name:
                return status
        raise KeyError(f"no SLO named {name!r}")

    def jsonl(self) -> str:
        """One sorted-keys JSON object per SLO, stable per seed."""
        lines = []
        for status in self.statuses:
            row = status.as_dict()
            row.update({"at": self.at, "meta": self.meta})
            lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
        return "".join(line + "\n" for line in lines)

    def table(self, title: str = "SLO error budgets") -> str:
        from ..analysis.report import render_table  # lazy: obs stays leaf-importable

        return render_table(
            ["slo", "objective", "good/total", "sli", "budget left",
             "burn rates", "alerts"],
            [s.row() for s in self.statuses],
            title=title,
        )

    def alerts_table(self, title: str = "SLO alerts") -> str:
        return alerts_table(self.alerts, title=title)


def slo_jsonl(report: SLOReport) -> str:
    return report.jsonl()


class _Tracker:
    """One SLO's live state: its spec plus one burn detector per window."""

    def __init__(self, spec: SLOSpec, detectors: list[BurnRateDetector]) -> None:
        self.spec = spec
        self.detectors = detectors
        self.alerts = 0


class SLOManager:
    """Evaluates declared SLOs against a live registry.

    Owns a *private* :class:`AnomalyMonitor` (never the deployment's
    shared one — the campaign loop polls that on its own cadence and
    double-polling would shift every windowed detector).  Call
    :meth:`poll` on the driving loop's cadence; call :meth:`report`
    once at the end of the run.
    """

    def __init__(self, metrics: MetricsRegistry,
                 clock: Callable[[], float] | None = None) -> None:
        self.metrics = metrics
        self._clock = clock or (lambda: 0.0)
        self.monitor = AnomalyMonitor(metrics, clock=self._clock)
        self._trackers: list[_Tracker] = []

    def add(self, spec: SLOSpec) -> SLOSpec:
        if any(t.spec.name == spec.name for t in self._trackers):
            raise ValueError(f"SLO {spec.name!r} already declared")
        detectors = []
        for bw in spec.burn_windows:
            detectors.append(self.monitor.add(BurnRateDetector(
                f"slo-burn:{spec.name}:{bw.label}",
                good_reader=spec.sli.good,
                bad_reader=spec.sli.bad,
                subject=spec.name,
                slo=spec.objective,
                threshold=bw.threshold,
                window=bw.window,
                min_events=spec.min_events,
            )))
        self._trackers.append(_Tracker(spec, detectors))
        return spec

    @property
    def specs(self) -> list[SLOSpec]:
        return [t.spec for t in self._trackers]

    def poll(self, now: float | None = None) -> list[Alert]:
        """Sample every burn detector once; mirrors ``slo.*`` series
        into the registry so existing exporters carry them."""
        if now is None:
            now = self._clock()
        fresh = self.monitor.poll(now)
        for tracker in self._trackers:
            tracker.alerts = sum(d.fired for d in tracker.detectors)
        self._mirror()
        return fresh

    def _burn_rates(self, tracker: _Tracker) -> dict[str, float]:
        """Current burn per window, from each detector's own snapshots
        (the same numbers the alerts are computed from)."""
        rates: dict[str, float] = {}
        for bw, det in zip(tracker.spec.burn_windows, tracker.detectors):
            burn = 0.0
            if det._snaps:
                good0, bad0 = det._snaps[0]
                delta_bad = det._bad() - bad0
                total = (det._good() - good0) + delta_bad
                if total > 0:
                    burn = (delta_bad / total) / det.budget
            rates[bw.label] = burn
        return rates

    def _status(self, tracker: _Tracker) -> SLOStatus:
        spec = tracker.spec
        good, bad = float(spec.sli.good()), float(spec.sli.bad())
        total = good + bad
        sli = good / total if total else 1.0
        budget = 1.0 - spec.objective
        consumed = (bad / (total * budget)) if total else 0.0
        return SLOStatus(
            name=spec.name,
            objective=spec.objective,
            description=spec.description or spec.sli.describe(),
            good=good,
            bad=bad,
            sli=sli,
            budget_consumed=consumed,
            budget_remaining=max(0.0, 1.0 - consumed),
            burn_rates=self._burn_rates(tracker),
            alerts=tracker.alerts,
        )

    def statuses(self, now: float | None = None) -> list[SLOStatus]:
        return [self._status(t) for t in self._trackers]

    def _mirror(self) -> None:
        m = self.metrics
        for tracker in self._trackers:
            status = self._status(tracker)
            m.gauge("slo.sli", slo=status.name).set(status.sli)
            m.gauge("slo.budget_remaining", slo=status.name).set(
                status.budget_remaining)
            for label, rate in status.burn_rates.items():
                m.gauge("slo.burn_rate", slo=status.name, window=label).set(rate)
            m.gauge("slo.alerts", slo=status.name).set(tracker.alerts)

    @property
    def alerts(self) -> list[Alert]:
        return self.monitor.alerts

    def report(self, now: float | None = None, **meta) -> SLOReport:
        """The end-of-run report, stamped with the active RunStamp."""
        if now is None:
            now = self._clock()
        from ..scenarios.context import current_stamp  # lazy: avoid import cycle

        stamp = current_stamp()
        full_meta = dict(meta)
        full_meta["polls"] = self.monitor.polls
        if stamp is not None:
            full_meta.update(stamp.as_meta())
        return SLOReport(
            at=now,
            statuses=self.statuses(now),
            alerts=list(self.monitor.alerts),
            meta=full_meta,
        )


# -- standard SLO sets --------------------------------------------------------
#
# One declarative bundle per wired subsystem; each binds to the
# instrument names that subsystem feeds.  Objectives are calibrated so
# clean seeded runs hold them with budget to spare while the fault
# storms of OB3 burn through them.


def standard_campaign_slos(manager: SLOManager) -> SLOManager:
    """SLOs for :class:`~repro.net.faults.CampaignRunner` runs."""
    m = manager.metrics
    manager.add(SLOSpec(
        "session-success", objective=0.9,
        sli=CounterRatioSLI(
            m, ("campaign.live.verdicts", {"outcome": "ok"}),
            ("campaign.live.verdicts", {"outcome": "bad"})),
        description="TPNR sessions reach a good terminal verdict"))
    manager.add(SLOSpec(
        "terminal-latency", objective=0.8,
        sli=HistogramThresholdSLI(m, "campaign.live.latency_seconds", 10.0),
        description="terminal verdict within 10 sim-seconds"))
    manager.add(SLOSpec(
        "evidence-verified", objective=0.9,
        sli=CounterRatioSLI(
            m, ("campaign.live.evidence", {"outcome": "ok"}),
            ("campaign.live.evidence", {"outcome": "bad"})),
        description="end-to-end evidence verification succeeds"))
    return manager


def standard_engine_slos(manager: SLOManager) -> SLOManager:
    """SLOs for :class:`~repro.engine.pool.SessionPool` runs."""
    m = manager.metrics
    manager.add(SLOSpec(
        "session-success", objective=0.95,
        sli=CounterRatioSLI(
            m, ("engine.sessions_finished", {"outcome": "ok"}),
            ("engine.sessions_finished", {"outcome": "failed"})),
        description="tenant sessions complete and verify"))
    manager.add(SLOSpec(
        "session-latency", objective=0.9,
        sli=SketchThresholdSLI(m, "engine.session_latency", 5.0),
        description="tenant session finishes within 5 sim-seconds"))
    return manager


def standard_replication_slos(manager: SLOManager) -> SLOManager:
    """SLOs for :class:`~repro.replication.store.ReplicatedStore`."""
    m = manager.metrics
    manager.add(SLOSpec(
        "read-integrity", objective=0.9,
        sli=CounterRatioSLI(
            m, ("replication.reads", {"outcome": "clean"}),
            ("replication.reads", {"outcome": "repaired"})),
        description="verified reads serve without needing repair"))
    manager.add(SLOSpec(
        "fork-detection-latency", objective=0.9,
        sli=SketchThresholdSLI(m, "replication.fork_detection_seconds", 5.0),
        description="replica forks detected within 5 sim-seconds"))
    return manager
