"""The metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency and deterministic: instruments are identified by
``(name, sorted labels)``, values are plain Python numbers, and every
snapshot is stamped with the **simulated** clock (the registry is given
a ``clock`` callable, normally ``lambda: sim.now``), so two runs with
the same seed produce byte-identical snapshots.  The only deliberately
non-deterministic metrics are the crypto wall-time series (real compute
is real); they are flagged ``deterministic=False`` and excluded from
:meth:`MetricsRegistry.deterministic_snapshot`.

Off-by-default-cheap: code that *might* be observed holds a registry
reference that is either a live :class:`MetricsRegistry` or the shared
:data:`NULL_METRICS`.  The null registry's ``enabled`` is ``False`` and
all its instruments are shared no-ops, so the disabled hot path costs
one attribute load and one branch (the overhead bound is proven by
``benchmarks/bench_observability.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from .sketch import DEFAULT_ALPHA, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "CardinalityError",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

# Upper bounds in simulated seconds — spans the sub-millisecond LAN
# deliveries up to the multi-timeout Resolve escalations.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
)
# Upper bounds in bytes — header-only messages up to bulk payloads.
DEFAULT_SIZE_BUCKETS = (128, 256, 512, 1024, 4096, 16384, 65536, 262144)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing number (float so it can carry bytes
    and wall-clock seconds alike)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A number that can go up and down (queue depths, open spans)."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """A fixed-bucket histogram (cumulative, Prometheus-style).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the
    implicit final bucket is ``+Inf``.  Buckets are fixed at creation —
    no rebinning, so merged/compared snapshots always line up.

    The observed ``min``/``max`` are tracked alongside the buckets
    (``None`` until the first observation).  Snapshot rows gained
    ``"min"``/``"max"`` keys additively — every pre-existing key is
    unchanged, so older snapshot consumers keep working.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    labels: tuple[tuple[str, str], ...] = ()
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram buckets must be sorted: {self.buckets}")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts, ending with the total."""
        out, running = [], 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out

    def _overflow_estimate(self) -> float:
        # A rank in the +Inf bucket reports the observed max — the
        # best upper estimate available without raw samples.  (Before
        # min/max tracking this clamped to the last finite bound,
        # which under-reported tail quantiles; positionally-built
        # histograms with no recorded max keep the old clamp.)
        if self.max is not None:
            return self.max
        return float(self.buckets[-1]) if self.buckets else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (Prometheus ``histogram_quantile``).

        Linear interpolation inside the bucket holding the target rank;
        a rank landing in the implicit ``+Inf`` bucket reports the
        observed ``max`` (falling back to the last finite bound only
        when no max was recorded).  Returns 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = self.cumulative_counts()
        for i, running in enumerate(cumulative):
            if running >= rank:
                if i >= len(self.buckets):  # +Inf bucket
                    return self._overflow_estimate()
                lower = float(self.buckets[i - 1]) if i > 0 else 0.0
                upper = float(self.buckets[i])
                in_bucket = self.bucket_counts[i]
                if in_bucket == 0:
                    return upper
                below = running - in_bucket
                return lower + (upper - lower) * ((rank - below) / in_bucket)
        return self._overflow_estimate()


class CardinalityError(ValueError):
    """A metric name exceeded the registry's label-cardinality budget
    (raised only in ``budget_mode="raise"``)."""


# The per-(name, kind) series that absorbs observations once a name's
# label budget is spent (budget_mode="drop").
_OVERFLOW_LABELS = (("overflow", "true"),)


class MetricsRegistry:
    """Get-or-create home for every instrument of one observed world.

    ``label_budget`` caps the distinct label sets per metric name
    (default ``None`` — unlimited).  Exceeding the cap either raises
    :class:`CardinalityError` (``budget_mode="raise"``, the default —
    what tests want) or, in production mode (``budget_mode="drop"``),
    folds the overflowing series into one shared
    ``{overflow="true"}`` instrument per (name, kind) and increments
    the unlabeled ``metrics_dropped_labels`` counter, so cardinality
    explosions degrade resolution instead of memory.
    """

    enabled = True

    def __init__(self, clock=None, label_budget: int | None = None,
                 budget_mode: str = "raise") -> None:
        # clock: () -> float, normally the simulation clock.  Snapshots
        # are stamped with it so they are deterministic per seed.
        if budget_mode not in ("raise", "drop"):
            raise ValueError(f"budget_mode must be 'raise' or 'drop', got {budget_mode!r}")
        if label_budget is not None and label_budget < 1:
            raise ValueError(f"label_budget must be >= 1, got {label_budget}")
        self._clock = clock or (lambda: 0.0)
        self.label_budget = label_budget
        self.budget_mode = budget_mode
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._sketches: dict[tuple, QuantileSketch] = {}
        # One kind per metric name, ever — a name that is a counter in
        # one call site and a gauge in another would export two
        # conflicting series under one identifier.
        self._kind_of: dict[str, str] = {}
        # Metric names whose *values* depend on real wall time (crypto
        # timings); excluded from the deterministic snapshot.
        self._nondeterministic: set[str] = set()
        self._label_sets: dict[str, set[tuple]] = {}

    @property
    def now(self) -> float:
        return self._clock()

    # -- instruments ---------------------------------------------------------

    def _claim_kind(self, name: str, kind: str) -> None:
        claimed = self._kind_of.setdefault(name, kind)
        if claimed != kind:
            raise TypeError(f"metric {name!r} is a {claimed}, not a {kind}")

    def _admit(self, name: str, labels: tuple) -> tuple:
        """Apply the label-cardinality budget; returns the label set to
        use (the requested one, or the overflow set in drop mode)."""
        if self.label_budget is None:
            return labels
        seen = self._label_sets.setdefault(name, set())
        if labels in seen or len(seen) < self.label_budget:
            seen.add(labels)
            return labels
        if self.budget_mode == "raise":
            raise CardinalityError(
                f"metric {name!r} exceeded label budget "
                f"{self.label_budget} with labels {labels}")
        # Production mode: count the drop and fold into the shared
        # overflow series.  The counter bypasses _admit (no labels).
        key = ("metrics_dropped_labels", ())
        dropped = self._counters.get(key)
        if dropped is None:
            self._claim_kind("metrics_dropped_labels", "counter")
            dropped = self._counters[key] = Counter("metrics_dropped_labels")
        dropped.inc()
        return _OVERFLOW_LABELS

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            self._claim_kind(name, "counter")
            key = (name, self._admit(name, key[1]))
            found = self._counters.get(key)
            if found is None:
                found = self._counters[key] = Counter(name, key[1])
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            self._claim_kind(name, "gauge")
            key = (name, self._admit(name, key[1]))
            found = self._gauges.get(key)
            if found is None:
                found = self._gauges[key] = Gauge(name, key[1])
        return found

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            self._claim_kind(name, "histogram")
            key = (name, self._admit(name, key[1]))
            found = self._histograms.get(key)
            if found is None:
                found = self._histograms[key] = Histogram(name, buckets, key[1])
        return found

    def sketch(self, name: str, alpha: float = DEFAULT_ALPHA,
               **labels: str) -> QuantileSketch:
        """A mergeable quantile sketch (see :mod:`repro.obs.sketch`)."""
        key = (name, _label_key(labels))
        found = self._sketches.get(key)
        if found is None:
            self._claim_kind(name, "sketch")
            key = (name, self._admit(name, key[1]))
            found = self._sketches.get(key)
            if found is None:
                found = self._sketches[key] = QuantileSketch(
                    name, alpha=alpha, labels=key[1])
        return found

    def mark_nondeterministic(self, name: str) -> None:
        self._nondeterministic.add(name)

    # -- reading back --------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every instrument as one sorted list of plain dicts.

        The list is sorted by (kind, name, labels) so equal registries
        serialize identically regardless of creation order.
        """
        at = self.now
        rows: list[dict] = []
        for (name, labels), c in self._counters.items():
            rows.append({"kind": "counter", "name": name, "labels": dict(labels),
                         "value": c.value, "at": at})
        for (name, labels), g in self._gauges.items():
            rows.append({"kind": "gauge", "name": name, "labels": dict(labels),
                         "value": g.value, "at": at})
        for (name, labels), h in self._histograms.items():
            rows.append({
                "kind": "histogram", "name": name, "labels": dict(labels),
                "buckets": list(h.buckets), "bucket_counts": list(h.bucket_counts),
                "count": h.count, "sum": h.sum, "min": h.min, "max": h.max,
                "at": at,
            })
        for (name, labels), s in self._sketches.items():
            row = s.snapshot()
            row.update({"kind": "sketch", "at": at})
            rows.append(row)
        rows.sort(key=lambda r: (r["kind"], r["name"], sorted(r["labels"].items())))
        return rows

    def deterministic_snapshot(self) -> list[dict]:
        """The snapshot minus wall-clock-valued series — the part that
        must be byte-identical across same-seed runs."""
        return [r for r in self.snapshot() if r["name"] not in self._nondeterministic]

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._sketches))


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


class _NullSketch(QuantileSketch):
    def observe(self, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every lookup returns a shared no-op.

    Guarded call sites never reach these (``enabled`` is False), but an
    unguarded one still cannot corrupt anything or allocate per call.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", buckets=(1.0,))
        self._null_sketch = _NullSketch("null")

    def counter(self, name: str, **labels: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str, buckets=DEFAULT_LATENCY_BUCKETS, **labels: str) -> Histogram:
        return self._null_histogram

    def sketch(self, name: str, alpha: float = DEFAULT_ALPHA, **labels: str) -> QuantileSketch:
        return self._null_sketch

    def snapshot(self) -> list[dict]:
        return []


NULL_METRICS = NullMetricsRegistry()
