"""Exporters: JSONL dumps, Prometheus text format, summary tables.

Three consumers, three formats:

* machine pipelines — :func:`spans_jsonl` / :func:`metrics_jsonl`, one
  JSON object per line, keys sorted, stable across same-seed runs;
* scrape-style tooling — :func:`prometheus_text`, the Prometheus text
  exposition format (counters, gauges, and cumulative ``_bucket``
  series with an explicit ``+Inf`` bucket);
* humans — :func:`summary_table` / :func:`span_tree_text`, aligned
  plain text in the same style as the experiment tables.
"""

from __future__ import annotations

import json

from .metrics import Histogram, MetricsRegistry
from .sketch import QuantileSketch
from .span import Span, Tracer

__all__ = [
    "spans_jsonl",
    "metrics_jsonl",
    "trace_jsonl",
    "prometheus_text",
    "summary_table",
    "span_tree_text",
]


def spans_jsonl(tracer: Tracer) -> str:
    """All spans, one JSON object per line, in span-id order."""
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in tracer.to_dicts()
    )


def metrics_jsonl(registry: MetricsRegistry, deterministic_only: bool = False) -> str:
    """The metrics snapshot, one JSON object per line."""
    rows = (registry.deterministic_snapshot() if deterministic_only
            else registry.snapshot())
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )


def trace_jsonl(recorder) -> str:
    """The wire-level trace, one JSON object per event, in wire order.

    *recorder* is a :class:`repro.net.trace.TraceRecorder` (typed by
    duck: anything with ``.events`` of TraceEvent-shaped records).
    Keys are sorted and ``note`` is omitted when empty, so same-seed
    runs export byte-identical documents.
    """
    rows = []
    for event in recorder.events:
        row = {
            "time": event.time,
            "action": event.action,
            "src": event.src,
            "dst": event.dst,
            "kind": event.kind,
            "size_bytes": event.size_bytes,
            "msg_id": event.msg_id,
        }
        if event.note:
            row["note"] = event.note
        rows.append(row)
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in registry.snapshot():
        name = _prom_name(row["name"])
        if row["kind"] == "counter":
            declare(name, "counter")
            lines.append(f"{name}{_prom_labels(row['labels'])} {_prom_num(row['value'])}")
        elif row["kind"] == "gauge":
            declare(name, "gauge")
            lines.append(f"{name}{_prom_labels(row['labels'])} {_prom_num(row['value'])}")
        elif row["kind"] == "sketch":
            # Sketches export as Prometheus summaries: pre-computed
            # quantile series plus _sum/_count.
            declare(name, "summary")
            sketch = QuantileSketch.from_snapshot(row)
            for q in (0.5, 0.9, 0.99):
                ql = _prom_labels(row["labels"], {"quantile": _prom_num(q)})
                lines.append(f"{name}{ql} {_prom_num(sketch.quantile(q))}")
            lines.append(f"{name}_sum{_prom_labels(row['labels'])} {_prom_num(row['sum'])}")
            lines.append(f"{name}_count{_prom_labels(row['labels'])} {row['count']}")
        else:
            declare(name, "histogram")
            running = 0
            for bound, n in zip(row["buckets"], row["bucket_counts"]):
                running += n
                le = _prom_labels(row["labels"], {"le": _prom_num(float(bound))})
                lines.append(f"{name}_bucket{le} {running}")
            running += row["bucket_counts"][-1]
            inf = _prom_labels(row["labels"], {"le": "+Inf"})
            lines.append(f"{name}_bucket{inf} {running}")
            lines.append(f"{name}_sum{_prom_labels(row['labels'])} {_prom_num(row['sum'])}")
            lines.append(f"{name}_count{_prom_labels(row['labels'])} {row['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _labels_str(labels: dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def summary_table(registry: MetricsRegistry, title: str = "Metrics summary") -> str:
    """A human-readable table of every instrument's headline value."""
    from ..analysis.report import render_table  # lazy: obs must stay importable from net/core

    rows: list[list] = []
    for row in registry.snapshot():
        if row["kind"] == "histogram":
            mean = row["sum"] / row["count"] if row["count"] else 0.0
            rows.append([row["name"], _labels_str(row["labels"]), "histogram",
                         f"n={row['count']} mean={mean:.4g}"])
        elif row["kind"] == "sketch":
            sketch = QuantileSketch.from_snapshot(row)
            rows.append([row["name"], _labels_str(row["labels"]), "sketch",
                         f"n={row['count']} p50={sketch.quantile(0.5):.4g} "
                         f"p99={sketch.quantile(0.99):.4g}"])
        else:
            rows.append([row["name"], _labels_str(row["labels"]), row["kind"],
                         _prom_num(row["value"])])
    return render_table(["metric", "labels", "kind", "value"], rows, title=title)


def histogram_line(hist: Histogram) -> str:
    """One-line sparkline-ish rendering of a histogram's buckets."""
    parts = []
    for bound, n in zip(list(hist.buckets) + ["+Inf"], hist.bucket_counts):
        if n:
            parts.append(f"<={bound}:{n}")
    return " ".join(parts) or "(empty)"


def span_tree_text(tracer: Tracer, trace_id: str) -> str:
    """Render one trace's span tree with indentation, for humans."""
    spans = tracer.trace(trace_id)
    if not spans:
        return f"(no spans for trace {trace_id})"
    by_parent: dict[int, list[Span]] = {}
    for s in spans:
        by_parent.setdefault(s.parent_id, []).append(s)
    lines = [f"trace {trace_id}"]
    # Top-level spans: parent 0, or a parent outside this trace's ids
    # (shouldn't happen for complete trees, but render orphans anyway).
    ids = {s.span_id for s in spans}
    for s in spans:
        if s.parent_id == 0 or s.parent_id not in ids:
            _walk_one(s, by_parent, lines, 0)
    return "\n".join(lines)


def _walk_one(span: Span, by_parent: dict[int, list[Span]], lines: list[str], depth: int) -> None:
    # A span with no end was cut off mid-flight: render it as
    # "unfinished" so crash-interrupted work is visible at a glance.
    if span.end is not None:
        end, status = f"{span.end:.4g}s", span.status
    else:
        end, status = "open", "unfinished"
    lines.append(f"{'  ' * depth}- {span.name} [{status}] {span.start:.4g}s -> {end}")
    for ev in span.events:
        tag = f" msg#{ev.msg_id}" if ev.msg_id else ""
        lines.append(f"{'  ' * (depth + 1)}. {ev.name}{tag} @{ev.time:.4g}s")
    for child in by_parent.get(span.span_id, []):
        _walk_one(child, by_parent, lines, depth + 1)
