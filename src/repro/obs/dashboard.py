"""The live campaign dashboard behind ``repro slo --watch``.

Pure rendering: the CLI (or any driver) assembles a
:class:`DashboardFrame` from the mid-run :class:`~repro.obs.slo.
SLOManager` statuses plus recent alerts and calls :func:`render_frame`
per refresh.  Nothing here reads a clock or owns state, so frames are
deterministic and unit-testable, and the same renderer serves both
the ANSI live view and plain captured output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .anomaly import Alert
from .slo import SLOStatus

__all__ = [
    "DashboardFrame",
    "budget_bar",
    "render_frame",
    "top_fault_classes",
]


def budget_bar(remaining: float, width: int = 24) -> str:
    """An error-budget bar: ``[######........] 42%`` (clamped 0..1)."""
    remaining = min(1.0, max(0.0, remaining))
    filled = round(remaining * width)
    return "[" + "#" * filled + "." * (width - filled) + f"] {remaining:4.0%}"


def top_fault_classes(outcomes, k: int = 3) -> list[tuple[str, int]]:
    """The *k* fault classes with the most bad sessions so far.

    *outcomes* are :class:`~repro.net.faults.CampaignOutcome`s; "bad"
    mirrors the session-success SLI (not completed/resolved, or hung).
    """
    from .campaign import fault_class  # lazy: campaign pulls in net.faults

    counts: dict[str, int] = {}
    for outcome in outcomes:
        if outcome.hung or outcome.status not in ("completed", "resolved"):
            label = fault_class(outcome.plan)
            counts[label] = counts.get(label, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:k]


@dataclass
class DashboardFrame:
    """Everything one refresh of the live view shows."""

    title: str
    now: float
    done: int
    total: int
    statuses: list[SLOStatus] = field(default_factory=list)
    alerts: list[Alert] = field(default_factory=list)
    offenders: list[tuple[str, int]] = field(default_factory=list)
    recent_alerts: int = 5
    # Hot profiler regions as (path, calls, self_sim_seconds) rows —
    # what repro.obs.profiler.top_regions() returns.
    hot_regions: list[tuple[str, int, float]] = field(default_factory=list)


def render_frame(frame: DashboardFrame) -> str:
    """One frame as plain text (the CLI adds the ANSI refresh)."""
    pct = frame.done / frame.total if frame.total else 0.0
    lines = [
        f"{frame.title}  t={frame.now:.3f}s  "
        f"plans {frame.done}/{frame.total} ({pct:4.0%})",
        "",
    ]
    name_w = max([len(s.name) for s in frame.statuses] or [4])
    for s in frame.statuses:
        burns = " ".join(
            f"{label}={rate:5.2f}x"
            for label, rate in sorted(s.burn_rates.items()))
        alert_tag = f"  ALERTS={s.alerts}" if s.alerts else ""
        lines.append(
            f"  {s.name:<{name_w}}  {budget_bar(s.budget_remaining)}  "
            f"sli={s.sli:.4f}/{s.objective:.3g}  burn {burns}{alert_tag}")
    shown = frame.alerts[-frame.recent_alerts:]
    if shown:
        lines.append("")
        lines.append(f"  recent alerts ({len(frame.alerts)} total):")
        for alert in shown:
            lines.append(
                f"    {alert.time:9.3f}s  {alert.detector}  "
                f"burn={alert.value:.2f}x>= {alert.threshold:g}x  {alert.detail}")
    if frame.offenders:
        lines.append("")
        lines.append("  top offending fault classes:")
        for label, count in frame.offenders:
            lines.append(f"    {label:<24} {count} bad session(s)")
    if frame.hot_regions:
        lines.append("")
        lines.append("  hot regions (calls, self sim s):")
        path_w = max(len(path) for path, _, _ in frame.hot_regions)
        for path, calls, self_sim in frame.hot_regions:
            lines.append(f"    {path:<{path_w}}  {calls:>8}  {self_sim:.6f}")
    return "\n".join(lines) + "\n"
