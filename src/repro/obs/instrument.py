"""Crypto hot-path instrumentation.

:class:`CryptoObserver` counts RSA sign/verify and AEAD seal/open calls
and accumulates their *real* wall time (``time.perf_counter``) into a
metrics registry.  Call counts are deterministic per seed; wall times
are not — the wall-time series are registered as non-deterministic so
:meth:`MetricsRegistry.deterministic_snapshot` stays seed-stable.

The observer is installed into the process-wide seat
:data:`repro.crypto.instrument.observer` (a leaf module the crypto code
checks with one ``is None`` test).  Because the seat is global, use the
:func:`observe_crypto` context manager to scope it to one run; nesting
restores the previous observer on exit.
"""

from __future__ import annotations

import contextlib

from .metrics import MetricsRegistry

__all__ = ["CryptoObserver", "observe_crypto", "CRYPTO_OPS"]

# The four instrumented operations, as reported by the hot paths.
CRYPTO_OPS = ("rsa.sign", "rsa.verify", "aead.seal", "aead.open")


class CryptoObserver:
    """Accumulates crypto call counts + wall time into a registry."""

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics
        metrics.mark_nondeterministic("crypto.wall_seconds")

    def crypto_call(self, op: str, wall_seconds: float) -> None:
        self.metrics.counter("crypto.calls", op=op).inc()
        self.metrics.counter("crypto.wall_seconds", op=op).inc(wall_seconds)

    def calls(self, op: str) -> float:
        return self.metrics.counter("crypto.calls", op=op).value

    def wall_seconds(self, op: str) -> float:
        return self.metrics.counter("crypto.wall_seconds", op=op).value


@contextlib.contextmanager
def observe_crypto(metrics: MetricsRegistry):
    """Install a :class:`CryptoObserver` for the duration of a block."""
    from ..crypto import instrument as seat  # lazy: keep obs a leaf at import time

    observer = CryptoObserver(metrics)
    previous = seat.observer
    seat.set_observer(observer)
    try:
        yield observer
    finally:
        seat.set_observer(previous)
