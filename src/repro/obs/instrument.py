"""Crypto hot-path instrumentation.

:class:`CryptoObserver` counts RSA sign/verify, AEAD seal/open, Merkle
build/prove/verify, and batch-seal calls and accumulates their *real*
wall time (``time.perf_counter``) into a metrics registry.  Call counts
are deterministic per seed; wall times are not — the wall-time series
are registered as non-deterministic so
:meth:`MetricsRegistry.deterministic_snapshot` stays seed-stable.

Two wall-time surfaces coexist for back-compat and for exactness:

* ``crypto.wall_seconds`` — the original flat per-op *sum* counter;
* ``crypto.op_wall_seconds`` — a per-op :class:`QuantileSketch` series
  (PR 10), so crypto cost *distributions* merge exactly across shards
  instead of only their sums.

When a :class:`~repro.obs.profiler.RegionProfiler` is attached, each
call is also recorded as a ``crypto/<op>`` leaf under whatever region
is open — the one feed, so profiler regions and metric series never
double-count a call.

The observer is installed into the process-wide seat
:data:`repro.crypto.instrument.observer` (a leaf module the crypto code
checks with one ``is None`` test).  Because the seat is global, use the
:func:`observe_crypto` context manager to scope it to one run; nesting
restores the previous observer on exit.
"""

from __future__ import annotations

import contextlib

from .metrics import MetricsRegistry

__all__ = ["CryptoObserver", "observe_crypto", "CRYPTO_OPS", "COMPOSITE_OPS"]

# The instrumented operations, as reported by the hot paths.
CRYPTO_OPS = (
    "rsa.sign",
    "rsa.verify",
    "aead.seal",
    "aead.open",
    "merkle.build",
    "merkle.prove",
    "merkle.verify",
    "batch.seal",
)

#: Ops whose reported wall time *contains* other instrumented ops
#: (``batch.seal`` wraps ``merkle.build``/``merkle.prove``/``rsa.sign``).
#: They keep their metric series but are not forwarded as profiler
#: leaves — the inner ops already are, and forwarding both would count
#: the same wall time twice in the region tree.
COMPOSITE_OPS = frozenset({"batch.seal"})


class CryptoObserver:
    """Accumulates crypto call counts + wall time into a registry."""

    def __init__(self, metrics: MetricsRegistry, profiler=None) -> None:
        self.metrics = metrics
        self.profiler = profiler
        metrics.mark_nondeterministic("crypto.wall_seconds")
        metrics.mark_nondeterministic("crypto.op_wall_seconds")

    def crypto_call(self, op: str, wall_seconds: float) -> None:
        self.metrics.counter("crypto.calls", op=op).inc()
        self.metrics.counter("crypto.wall_seconds", op=op).inc(wall_seconds)
        self.metrics.sketch("crypto.op_wall_seconds", op=op).observe(
            max(0.0, wall_seconds))
        if self.profiler is not None and op not in COMPOSITE_OPS:
            self.profiler.record_leaf("crypto/" + op, wall_seconds)

    def calls(self, op: str) -> float:
        return self.metrics.counter("crypto.calls", op=op).value

    def wall_seconds(self, op: str) -> float:
        return self.metrics.counter("crypto.wall_seconds", op=op).value

    def wall_sketch(self, op: str):
        """The per-op wall-time distribution (a QuantileSketch)."""
        return self.metrics.sketch("crypto.op_wall_seconds", op=op)


@contextlib.contextmanager
def observe_crypto(metrics: MetricsRegistry, profiler=None):
    """Install a :class:`CryptoObserver` for the duration of a block."""
    from ..crypto import instrument as seat  # lazy: keep obs a leaf at import time

    observer = CryptoObserver(metrics, profiler=profiler)
    previous = seat.observer
    seat.set_observer(observer)
    try:
        yield observer
    finally:
        seat.set_observer(previous)
