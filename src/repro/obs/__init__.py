"""repro.obs — the cross-cutting observability layer.

One :class:`Observability` object per observed deployment bundles the
three telemetry surfaces:

* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (counters, gauges, fixed-bucket histograms; sim-clock-stamped);
* ``obs.tracer`` — a :class:`~repro.obs.span.Tracer` recording
  parent-linked span trees per TPNR transaction (trace id = txn id,
  span events carry envelope ``msg_id`` for correlation with the
  wire-level :class:`~repro.net.trace.TraceRecorder`);
* crypto hooks — :func:`~repro.obs.instrument.observe_crypto` scopes
  RSA/AEAD call-count + wall-time accounting to a block.

Everything hangs off the network: ``make_deployment(observe=True)``
seats a live Observability on ``Network.obs`` and every node reaches it
through ``self.obs``.  When observation is off, that seat holds
:data:`NULL_OBS`, whose ``enabled`` is ``False`` and whose registry and
tracer are shared no-ops — instrumented code guards with::

    obs = self.obs
    if obs.enabled:
        obs.metrics.counter("...").inc()

so the disabled cost is one attribute load and one branch
(``benchmarks/bench_observability.py`` proves the bound).

Exporters (:mod:`repro.obs.exporters`) turn either surface into JSONL,
Prometheus text, or human-readable tables;
:mod:`repro.obs.campaign` folds FC1/CR1 campaign reports into
per-fault-class retry/escalation/latency breakdowns;
:mod:`repro.obs.sketch` adds mergeable quantile sketches with
tumbling-window aggregation; :mod:`repro.obs.slo` declares service
objectives with error budgets and multi-window burn-rate alerting;
:mod:`repro.obs.dashboard` renders the live ``repro slo --watch``
view of a running campaign; :mod:`repro.obs.profiler` attributes cost
to hierarchical regions on both clocks (sim + wall), extracts
critical paths from span trees, and exports flamegraphs/profile
JSONL (``obs.enable_profiler()`` seats it — the seat is
:data:`~repro.obs.profiler.NULL_PROFILER` until then).
"""

from __future__ import annotations

from . import (
    anomaly,
    campaign,
    dashboard,
    exporters,
    forensics,
    instrument,
    metrics,
    profiler,
    sketch,
    slo,
    span,
)
from .anomaly import (
    Alert,
    AnomalyMonitor,
    BurnRateDetector,
    QuantileThresholdDetector,
    RateShiftDetector,
    alerts_table,
)
from .campaign import (
    attach_campaign_detectors,
    breakdown_table,
    class_breakdown,
    fault_class,
    record_campaign_metrics,
)
from .exporters import (
    metrics_jsonl,
    prometheus_text,
    span_tree_text,
    spans_jsonl,
    summary_table,
    trace_jsonl,
)
from .forensics import (
    AuditFinding,
    ConsistencyAuditor,
    DisputeDossier,
    EvidenceFact,
    Timeline,
    TimelineEntry,
    TimelineReconstructor,
)
from .dashboard import DashboardFrame, budget_bar, render_frame, top_fault_classes
from .instrument import CryptoObserver, observe_crypto
from .metrics import (
    NULL_METRICS,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .profiler import (
    NULL_PROFILER,
    CriticalPath,
    CriticalStage,
    NullRegionProfiler,
    RegionProfiler,
    RegionStat,
    campaign_critical_paths,
    critical_path,
    flamegraph_text,
    profile_jsonl,
    shard_utilization,
    top_regions,
)
from .sketch import QuantileSketch, SketchAggregator, WindowSnapshot
from .slo import (
    BurnWindow,
    CounterRatioSLI,
    HistogramThresholdSLI,
    SketchThresholdSLI,
    SLOManager,
    SLOReport,
    SLOSpec,
    SLOStatus,
    slo_jsonl,
    standard_campaign_slos,
    standard_engine_slos,
    standard_replication_slos,
)
from .span import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "anomaly",
    "campaign",
    "dashboard",
    "exporters",
    "forensics",
    "instrument",
    "metrics",
    "profiler",
    "sketch",
    "slo",
    "span",
    "Alert",
    "AnomalyMonitor",
    "RateShiftDetector",
    "QuantileThresholdDetector",
    "BurnRateDetector",
    "alerts_table",
    "AuditFinding",
    "ConsistencyAuditor",
    "DisputeDossier",
    "EvidenceFact",
    "Timeline",
    "TimelineEntry",
    "TimelineReconstructor",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "SketchAggregator",
    "WindowSnapshot",
    "RegionProfiler",
    "RegionStat",
    "NullRegionProfiler",
    "NULL_PROFILER",
    "CriticalPath",
    "CriticalStage",
    "critical_path",
    "campaign_critical_paths",
    "shard_utilization",
    "flamegraph_text",
    "profile_jsonl",
    "top_regions",
    "BurnWindow",
    "SLOSpec",
    "SLOStatus",
    "SLOReport",
    "SLOManager",
    "CounterRatioSLI",
    "HistogramThresholdSLI",
    "SketchThresholdSLI",
    "slo_jsonl",
    "standard_campaign_slos",
    "standard_engine_slos",
    "standard_replication_slos",
    "DashboardFrame",
    "budget_bar",
    "render_frame",
    "top_fault_classes",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CryptoObserver",
    "observe_crypto",
    "spans_jsonl",
    "metrics_jsonl",
    "trace_jsonl",
    "prometheus_text",
    "summary_table",
    "span_tree_text",
    "fault_class",
    "class_breakdown",
    "breakdown_table",
    "record_campaign_metrics",
    "attach_campaign_detectors",
]


class Observability:
    """The per-deployment bundle of metrics registry + tracer."""

    enabled = True

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self.metrics = MetricsRegistry(clock)
        self.tracer = Tracer(clock)
        # The anomaly seat: detectors are attached by whoever drives
        # the deployment (pool, campaign runner); with none attached a
        # poll is a no-op, so the seat costs nothing until used.
        self.monitor = AnomalyMonitor(self.metrics, clock)
        # The profiler seat: NULL until enable_profiler() swaps in a
        # live RegionProfiler, so the cost model matches NULL_METRICS.
        self.profiler = NULL_PROFILER

    def enable_profiler(self, alpha: float | None = None) -> RegionProfiler:
        """Seat a live :class:`RegionProfiler` sharing this bundle's
        sim clock (idempotent: an already-live profiler is kept)."""
        if not self.profiler.enabled:
            if alpha is None:
                self.profiler = RegionProfiler(self._clock)
            else:
                self.profiler = RegionProfiler(self._clock, alpha=alpha)
        return self.profiler

    def observe_crypto(self):
        """Scope crypto hot-path accounting to a ``with`` block; calls
        feed the profiler as leaves whenever one is enabled."""
        return observe_crypto(
            self.metrics,
            profiler=self.profiler if self.profiler.enabled else None,
        )

    def spans_jsonl(self) -> str:
        return spans_jsonl(self.tracer)

    def metrics_jsonl(self, deterministic_only: bool = False) -> str:
        return metrics_jsonl(self.metrics, deterministic_only)

    def prometheus_text(self) -> str:
        return prometheus_text(self.metrics)

    def summary_table(self, title: str = "Metrics summary") -> str:
        return summary_table(self.metrics, title)


class NullObservability(Observability):
    """The disabled bundle: shared no-op registry and tracer."""

    enabled = False

    def __init__(self) -> None:
        self._clock = None
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.monitor = AnomalyMonitor(NULL_METRICS)
        self.profiler = NULL_PROFILER

    def enable_profiler(self, alpha: float | None = None) -> RegionProfiler:
        """Disabled observability never profiles: the seat stays NULL."""
        return self.profiler


NULL_OBS = NullObservability()
