"""repro.obs — the cross-cutting observability layer.

One :class:`Observability` object per observed deployment bundles the
three telemetry surfaces:

* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
  (counters, gauges, fixed-bucket histograms; sim-clock-stamped);
* ``obs.tracer`` — a :class:`~repro.obs.span.Tracer` recording
  parent-linked span trees per TPNR transaction (trace id = txn id,
  span events carry envelope ``msg_id`` for correlation with the
  wire-level :class:`~repro.net.trace.TraceRecorder`);
* crypto hooks — :func:`~repro.obs.instrument.observe_crypto` scopes
  RSA/AEAD call-count + wall-time accounting to a block.

Everything hangs off the network: ``make_deployment(observe=True)``
seats a live Observability on ``Network.obs`` and every node reaches it
through ``self.obs``.  When observation is off, that seat holds
:data:`NULL_OBS`, whose ``enabled`` is ``False`` and whose registry and
tracer are shared no-ops — instrumented code guards with::

    obs = self.obs
    if obs.enabled:
        obs.metrics.counter("...").inc()

so the disabled cost is one attribute load and one branch
(``benchmarks/bench_observability.py`` proves the bound).

Exporters (:mod:`repro.obs.exporters`) turn either surface into JSONL,
Prometheus text, or human-readable tables;
:mod:`repro.obs.campaign` folds FC1/CR1 campaign reports into
per-fault-class retry/escalation/latency breakdowns;
:mod:`repro.obs.sketch` adds mergeable quantile sketches with
tumbling-window aggregation; :mod:`repro.obs.slo` declares service
objectives with error budgets and multi-window burn-rate alerting;
:mod:`repro.obs.dashboard` renders the live ``repro slo --watch``
view of a running campaign.
"""

from __future__ import annotations

from . import (
    anomaly,
    campaign,
    dashboard,
    exporters,
    forensics,
    instrument,
    metrics,
    sketch,
    slo,
    span,
)
from .anomaly import (
    Alert,
    AnomalyMonitor,
    BurnRateDetector,
    QuantileThresholdDetector,
    RateShiftDetector,
    alerts_table,
)
from .campaign import (
    attach_campaign_detectors,
    breakdown_table,
    class_breakdown,
    fault_class,
    record_campaign_metrics,
)
from .exporters import (
    metrics_jsonl,
    prometheus_text,
    span_tree_text,
    spans_jsonl,
    summary_table,
    trace_jsonl,
)
from .forensics import (
    AuditFinding,
    ConsistencyAuditor,
    DisputeDossier,
    EvidenceFact,
    Timeline,
    TimelineEntry,
    TimelineReconstructor,
)
from .dashboard import DashboardFrame, budget_bar, render_frame, top_fault_classes
from .instrument import CryptoObserver, observe_crypto
from .metrics import (
    NULL_METRICS,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .sketch import QuantileSketch, SketchAggregator, WindowSnapshot
from .slo import (
    BurnWindow,
    CounterRatioSLI,
    HistogramThresholdSLI,
    SketchThresholdSLI,
    SLOManager,
    SLOReport,
    SLOSpec,
    SLOStatus,
    slo_jsonl,
    standard_campaign_slos,
    standard_engine_slos,
    standard_replication_slos,
)
from .span import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "anomaly",
    "campaign",
    "dashboard",
    "exporters",
    "forensics",
    "instrument",
    "metrics",
    "sketch",
    "slo",
    "span",
    "Alert",
    "AnomalyMonitor",
    "RateShiftDetector",
    "QuantileThresholdDetector",
    "BurnRateDetector",
    "alerts_table",
    "AuditFinding",
    "ConsistencyAuditor",
    "DisputeDossier",
    "EvidenceFact",
    "Timeline",
    "TimelineEntry",
    "TimelineReconstructor",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "SketchAggregator",
    "WindowSnapshot",
    "BurnWindow",
    "SLOSpec",
    "SLOStatus",
    "SLOReport",
    "SLOManager",
    "CounterRatioSLI",
    "HistogramThresholdSLI",
    "SketchThresholdSLI",
    "slo_jsonl",
    "standard_campaign_slos",
    "standard_engine_slos",
    "standard_replication_slos",
    "DashboardFrame",
    "budget_bar",
    "render_frame",
    "top_fault_classes",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CryptoObserver",
    "observe_crypto",
    "spans_jsonl",
    "metrics_jsonl",
    "trace_jsonl",
    "prometheus_text",
    "summary_table",
    "span_tree_text",
    "fault_class",
    "class_breakdown",
    "breakdown_table",
    "record_campaign_metrics",
    "attach_campaign_detectors",
]


class Observability:
    """The per-deployment bundle of metrics registry + tracer."""

    enabled = True

    def __init__(self, clock=None) -> None:
        self.metrics = MetricsRegistry(clock)
        self.tracer = Tracer(clock)
        # The anomaly seat: detectors are attached by whoever drives
        # the deployment (pool, campaign runner); with none attached a
        # poll is a no-op, so the seat costs nothing until used.
        self.monitor = AnomalyMonitor(self.metrics, clock)

    def observe_crypto(self):
        """Scope crypto hot-path accounting to a ``with`` block."""
        return observe_crypto(self.metrics)

    def spans_jsonl(self) -> str:
        return spans_jsonl(self.tracer)

    def metrics_jsonl(self, deterministic_only: bool = False) -> str:
        return metrics_jsonl(self.metrics, deterministic_only)

    def prometheus_text(self) -> str:
        return prometheus_text(self.metrics)

    def summary_table(self, title: str = "Metrics summary") -> str:
        return summary_table(self.metrics, title)


class NullObservability(Observability):
    """The disabled bundle: shared no-op registry and tracer."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_METRICS
        self.tracer = NULL_TRACER
        self.monitor = AnomalyMonitor(NULL_METRICS)


NULL_OBS = NullObservability()
