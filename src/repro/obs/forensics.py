"""Forensic timeline reconstruction across all four telemetry surfaces.

The repo records what a TPNR deployment does in four independent
places: the span :class:`~repro.obs.span.Tracer` (intent, keyed by
transaction id), the wire-level :class:`~repro.net.trace.TraceRecorder`
(what actually crossed the network, keyed by ``msg_id``), each party's
:class:`~repro.durability.journal.PartyJournal` WAL (what was durably
committed *before* acting), and the per-party evidence archives (the
signed non-repudiation artifacts themselves).  Auditing work such as
*Don't Trust the Cloud, Verify* gets its power from exactly this
redundancy: independent records either corroborate one another or
expose the liar.

* :class:`TimelineReconstructor` joins the four surfaces for one
  transaction into a causally-ordered :class:`Timeline` (span events
  carry envelope ``msg_id``; WAL records are stamped with sim time and
  transaction id; evidence is matched through its archival span
  events);
* :class:`ConsistencyAuditor` checks cross-source invariants over a
  timeline and classifies violations (``message-loss``,
  ``amnesia-rollback``, ``in-storage-tampering``, ``trace-gap``, ...)
  — the paper's "tampering is undetectable inside the provider" claim
  turned into a machine-checkable detector;
* :class:`DisputeDossier` packages a timeline + evidence for the
  :class:`~repro.core.arbitrator.Arbitrator` and cross-validates the
  ruling against a verdict recomputed purely from the reconstruction.

Everything is read-only over live objects and deterministic per seed:
reconstructing a timeline twice yields byte-identical renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..core.protocol import Deployment
    from ..net.trace import TraceEvent

__all__ = [
    "TimelineEntry",
    "EvidenceFact",
    "Timeline",
    "TimelineReconstructor",
    "AuditFinding",
    "ConsistencyAuditor",
    "DisputeDossier",
]

# Causal rank inside one sim instant, matching the code's write order:
# the WAL entry lands before the wire send (log-before-act), replica
# store events fire while the provider services the request, the span
# event is recorded after the send returns, and evidence is archived
# after its span event.
_SOURCE_RANK = {"wal": 0, "wire": 1, "replica": 2, "span": 3, "evidence": 4}


@dataclass(frozen=True)
class TimelineEntry:
    """One cross-surface occurrence in a transaction's life."""

    time: float
    source: str  # "wal" | "wire" | "replica" | "span" | "evidence"
    party: str
    kind: str
    msg_id: int = 0
    detail: str = ""

    def row(self) -> tuple:
        return (
            f"{self.time:.6g}s",
            self.source,
            self.party or "-",
            self.kind,
            self.msg_id or "-",
            self.detail,
        )


@dataclass(frozen=True)
class EvidenceFact:
    """One archived piece of evidence, reduced to judgeable facts."""

    holder: str
    signer: str
    flag: str
    transaction_id: str
    data_hash: bytes
    verified: bool
    time: float


@dataclass
class Timeline:
    """The causally-ordered join of all four surfaces for one txn."""

    transaction_id: str
    entries: list[TimelineEntry] = field(default_factory=list)
    evidence_facts: list[EvidenceFact] = field(default_factory=list)
    # Kept for the auditor: the wire events this timeline was built
    # from and the msg_ids the span tree claims to have sent.
    wire_events: list["TraceEvent"] = field(default_factory=list)
    span_send_ids: frozenset[int] = frozenset()
    span_count: int = 0

    def sources(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.source] = counts.get(entry.source, 0) + 1
        return dict(sorted(counts.items()))

    def from_source(self, source: str) -> list[TimelineEntry]:
        return [e for e in self.entries if e.source == source]

    def span(self) -> float:
        if not self.entries:
            return 0.0
        times = [e.time for e in self.entries]
        return max(times) - min(times)

    def render(self, max_rows: int | None = None) -> str:
        from ..analysis.report import render_table  # lazy: obs stays importable from net/core

        entries = self.entries if max_rows is None else self.entries[:max_rows]
        table = render_table(
            ["time", "source", "party", "kind", "msg", "detail"],
            [e.row() for e in entries],
            title=f"Timeline for {self.transaction_id} "
                  f"({len(self.entries)} entries, {self.span():.6g}s)",
        )
        if max_rows is not None and len(self.entries) > max_rows:
            table += f"\n  ... {len(self.entries) - max_rows} more entries"
        return table


class TimelineReconstructor:
    """Joins spans, wire trace, WALs, and evidence for one txn.

    ``exclusive_trace=True`` asserts the wire trace covers only this
    transaction (the campaign runner clears the trace per plan), so
    every wire event joins; otherwise only events whose ``msg_id``
    appears on a span event of the transaction (plus process-level
    crash marks inside the transaction's time window) are pulled in.
    """

    def __init__(
        self,
        trace,
        tracer,
        parties,
        registry=None,
        exclusive_trace: bool = False,
        replication=None,
    ) -> None:
        self.trace = trace
        self.tracer = tracer
        self.parties = list(parties)
        self.registry = registry
        self.exclusive_trace = exclusive_trace
        self.replication = replication

    @classmethod
    def for_deployment(cls, dep: "Deployment", exclusive_trace: bool = False) -> "TimelineReconstructor":
        parties = [dep.client, dep.provider, dep.ttp, *dep.extra_clients.values()]
        return cls(
            dep.network.trace,
            dep.obs.tracer,
            parties,
            registry=dep.registry,
            exclusive_trace=exclusive_trace,
            replication=getattr(dep, "replication", None),
        )

    # -- the join ------------------------------------------------------------

    def reconstruct(self, transaction_id: str) -> Timeline:
        entries: list[TimelineEntry] = []

        # 1. Spans: the intent record, keyed directly by txn id.
        spans = self.tracer.trace(transaction_id)
        span_msg_ids: set[int] = set()
        span_send_ids: set[int] = set()
        evidence_event_times: dict[tuple[str, str, str], list[float]] = {}
        for span in spans:
            entries.append(TimelineEntry(
                span.start, "span", span.attrs.get("party", ""),
                f"span-start:{span.name}",
            ))
            for ev in span.events:
                if ev.msg_id:
                    span_msg_ids.add(ev.msg_id)
                    if ev.name.startswith("send:"):
                        span_send_ids.add(ev.msg_id)
                party = ev.attrs.get("party", "")
                entries.append(TimelineEntry(
                    ev.time, "span", party, f"event:{ev.name}", ev.msg_id,
                ))
                if ev.name.startswith("evidence:"):
                    key = (party, ev.attrs.get("signer", ""),
                           ev.name.split(":", 1)[1])
                    evidence_event_times.setdefault(key, []).append(ev.time)
            if span.finished:
                entries.append(TimelineEntry(
                    span.end, "span", span.attrs.get("party", ""),
                    f"span-end:{span.name}", 0, f"status={span.status}",
                ))

        # 2. Wire events, joined via msg_id (or wholesale when the
        # trace is known to cover only this transaction).
        window = ([e.time for e in entries] or [0.0])
        lo, hi = min(window), max(window)
        wire_events: list = []
        for event in self.trace.events:
            if self.exclusive_trace or not spans:
                joined = True
            elif event.msg_id:
                joined = event.msg_id in span_msg_ids
            else:
                # Process-level marks (crash windows) carry no msg_id;
                # join them by time when they fall inside the txn.
                joined = event.kind == "process" and lo <= event.time <= hi
            if not joined:
                continue
            wire_events.append(event)
            detail = f"{event.src}->{event.dst} {event.size_bytes}B"
            if event.note:
                detail += f" [{event.note}]"
            entries.append(TimelineEntry(
                event.time, "wire", event.src,
                f"wire:{event.action}:{event.kind}", event.msg_id, detail,
            ))

        # 3. WAL records: every journaled record stamped for this txn.
        wal_evidence_times: dict[tuple[str, str, str], list[float]] = {}
        for party in self.parties:
            journal = getattr(party, "journal", None)
            if journal is None:
                continue
            last_at = 0.0
            for record in journal.wal.records():
                at = record.get("at")
                if at is None:
                    at = last_at  # pre-stamp records inherit the scan position
                else:
                    last_at = at
                if not self._wal_record_matches(record, transaction_id):
                    continue
                rtype = record.get("type", "?")
                detail = self._wal_detail(record)
                entries.append(TimelineEntry(
                    at, "wal", party.name, f"wal:{rtype}", 0, detail,
                ))
                if rtype == "evidence":
                    header = record.get("header", {})
                    key = (party.name, record.get("signer", ""),
                           header.get("flag", ""))
                    wal_evidence_times.setdefault(key, []).append(at)

        # 4. Replica store events: the provider-side fan-out, keyed by
        # object key (the provider stores the payload under the txn id).
        if self.replication is not None:
            for ev in self.replication.events:
                if ev.key != transaction_id:
                    continue
                detail = f"{ev.container}/{ev.key} v{ev.version}"
                if ev.detail:
                    detail += f" [{ev.detail}]"
                entries.append(TimelineEntry(
                    ev.time, "replica", ev.replica,
                    f"replica:{ev.action}", 0, detail,
                ))

        # 5. Evidence archives, timed through their span events (or
        # their WAL append when spans are off).
        facts: list[EvidenceFact] = []
        used: dict[tuple[str, str, str], int] = {}
        fallback_time = max((e.time for e in entries), default=0.0)
        for party in self.parties:
            for opened in party.evidence_store.for_transaction(transaction_id):
                flag = opened.header.flag.value
                key = (party.name, opened.signer, flag)
                index = used.get(key, 0)
                used[key] = index + 1
                times = (evidence_event_times.get(key)
                         or wal_evidence_times.get(key) or [])
                at = times[index] if index < len(times) else (
                    times[-1] if times else fallback_time)
                verified = self._verify(opened)
                facts.append(EvidenceFact(
                    holder=party.name,
                    signer=opened.signer,
                    flag=flag,
                    transaction_id=opened.header.transaction_id,
                    data_hash=opened.header.data_hash,
                    verified=verified,
                    time=at,
                ))
                entries.append(TimelineEntry(
                    at, "evidence", party.name, f"evidence:{flag}", 0,
                    f"signer={opened.signer} "
                    f"hash={opened.header.data_hash.hex()[:12]} "
                    f"verified={'yes' if verified else 'NO'}",
                ))

        indexed = sorted(
            enumerate(entries),
            key=lambda pair: (pair[1].time, _SOURCE_RANK[pair[1].source], pair[0]),
        )
        return Timeline(
            transaction_id=transaction_id,
            entries=[entry for _, entry in indexed],
            evidence_facts=facts,
            wire_events=wire_events,
            span_send_ids=frozenset(span_send_ids),
            span_count=len(spans),
        )

    # -- helpers -------------------------------------------------------------

    def _verify(self, opened) -> bool:
        if self.registry is None:
            return True
        from ..core.evidence import verify_opened_evidence  # lazy: core imports obs

        return verify_opened_evidence(opened, self.registry)

    @staticmethod
    def _wal_record_matches(record: dict, transaction_id: str) -> bool:
        if record.get("txn") == transaction_id:
            return True
        if record.get("transaction_id") == transaction_id:
            return True
        header = record.get("header")
        return isinstance(header, dict) and header.get("txn") == transaction_id

    @staticmethod
    def _wal_detail(record: dict) -> str:
        rtype = record.get("type")
        if rtype in ("send", "recv"):
            return f"peer={record.get('peer')} seq={record.get('seq')}"
        if rtype == "evidence":
            header = record.get("header", {})
            return f"{header.get('flag')} signer={record.get('signer')}"
        if rtype == "txn":
            return f"status={record.get('status')}"
        keys = sorted(k for k in record if k not in ("type", "at"))
        return " ".join(f"{k}={record[k]!r}"[:32] for k in keys[:3])


# ---------------------------------------------------------------------------
# Cross-source consistency auditing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AuditFinding:
    """One classified cross-source inconsistency."""

    category: str
    subject: str
    detail: str = ""

    def __str__(self) -> str:
        return f"{self.category}: {self.subject}"


# What each fault-injection action means for the transaction's story.
_FAULT_CATEGORY = {
    "fault.drop": "message-loss",
    "fault.crash": "message-loss",
    "fault.corrupt": "message-corruption",
    "fault.duplicate": "duplicate-injection",
    "fault.delay": "message-delay",
    "fault.reorder": "message-delay",
}


class ConsistencyAuditor:
    """Checks cross-surface invariants and classifies the violations.

    The checks mirror the recording discipline: every delivered wire
    event must have a matching span send event (same ``msg_id``); every
    journaled log-before-act entry must precede — and be corroborated
    by — its wire send; evidence digests must agree across signers with
    custody (receipt vs. served hash); crash windows and fault
    decisions must account for every non-delivery.  Violations carry a
    category (``message-loss``, ``amnesia-rollback``,
    ``in-storage-tampering``, ``trace-gap``, ...), so a campaign can
    attribute every bad outcome to a concrete cause — and a clean run
    must produce zero findings.
    """

    def __init__(self, reconstructor: TimelineReconstructor, provider_name: str = "bob") -> None:
        self.reconstructor = reconstructor
        self.provider_name = provider_name

    @classmethod
    def for_deployment(cls, dep: "Deployment", exclusive_trace: bool = False) -> "ConsistencyAuditor":
        return cls(
            TimelineReconstructor.for_deployment(dep, exclusive_trace=exclusive_trace),
            provider_name=dep.provider.name,
        )

    def audit(self, transaction_id: str, timeline: Timeline | None = None) -> list[AuditFinding]:
        if timeline is None:
            timeline = self.reconstructor.reconstruct(transaction_id)
        findings: list[AuditFinding] = []
        findings.extend(self._check_fault_marks(timeline))
        findings.extend(self._check_wire_vs_spans(timeline))
        findings.extend(self._check_journal_vs_wire(timeline))
        findings.extend(self._check_evidence_digests(timeline))
        findings.extend(self._check_durability(timeline))
        findings.extend(self._check_replication(timeline))
        unique: dict[tuple[str, str], AuditFinding] = {}
        for finding in findings:
            unique.setdefault((finding.category, finding.subject), finding)
        return list(unique.values())

    # -- wire-level fates ----------------------------------------------------

    def _check_fault_marks(self, timeline: Timeline) -> list[AuditFinding]:
        from ..net.trace import parse_fault_note  # lazy: obs stays importable from net

        out: list[AuditFinding] = []
        for event in timeline.wire_events:
            if event.action == "drop":
                out.append(AuditFinding(
                    "message-loss",
                    f"msg {event.msg_id} ({event.kind})",
                    f"dropped by channel at {event.time:.6g}s",
                ))
                continue
            if not event.action.startswith("fault."):
                continue
            if event.action in ("fault.crash-begin", "fault.crash-end"):
                if event.action == "fault.crash-end":
                    continue
                note = parse_fault_note(event.note)
                if note is not None and note.action == "amnesia-crash":
                    out.append(AuditFinding(
                        "amnesia-rollback",
                        f"{event.src} amnesia crash",
                        f"volatile state wiped at {event.time:.6g}s ({event.note})",
                    ))
                else:
                    out.append(AuditFinding(
                        "crash-outage",
                        f"{event.src} crash window",
                        f"down from {event.time:.6g}s ({event.note})",
                    ))
                continue
            category = _FAULT_CATEGORY.get(event.action)
            if category is None:
                continue
            out.append(AuditFinding(
                category,
                f"msg {event.msg_id} ({event.kind})",
                f"{event.action} at {event.time:.6g}s [{event.note}]",
            ))
        return out

    # -- spans vs. wire ------------------------------------------------------

    def _check_wire_vs_spans(self, timeline: Timeline) -> list[AuditFinding]:
        """Every delivered tpnr message must appear as a span send
        event, and every span send event must appear on the wire."""
        if timeline.span_count == 0:
            return []  # tracer off: nothing to cross-check
        out: list[AuditFinding] = []
        wire_ids = {e.msg_id for e in timeline.wire_events if e.msg_id}
        for event in timeline.wire_events:
            if event.action != "deliver" or not event.kind.startswith("tpnr."):
                continue
            if event.msg_id not in timeline.span_send_ids:
                out.append(AuditFinding(
                    "trace-gap",
                    f"msg {event.msg_id} ({event.kind})",
                    "delivered on the wire but absent from the span tree",
                ))
        for msg_id in sorted(timeline.span_send_ids - wire_ids):
            out.append(AuditFinding(
                "trace-gap",
                f"msg {msg_id}",
                "span tree records a send the wire trace never saw",
            ))
        return out

    # -- journal vs. wire ----------------------------------------------------

    def _check_journal_vs_wire(self, timeline: Timeline) -> list[AuditFinding]:
        """Log-before-act: a journaled ``send`` commits to a wire send
        at the same sim instant.  A journaled send with no wire send
        means the WAL and the network disagree about history."""
        out: list[AuditFinding] = []
        sends_by_party: dict[str, list[float]] = {}
        for event in timeline.wire_events:
            if event.action == "send":
                sends_by_party.setdefault(event.src, []).append(event.time)
        for entry in timeline.from_source("wal"):
            if entry.kind != "wal:send":
                continue
            times = sends_by_party.get(entry.party, [])
            if not any(abs(t - entry.time) < 1e-9 for t in times):
                out.append(AuditFinding(
                    "trace-gap",
                    f"{entry.party} journaled send @{entry.time:.6g}s",
                    "no matching wire send at the journaled instant "
                    f"({entry.detail})",
                ))
        return out

    # -- evidence digests ----------------------------------------------------

    def _check_evidence_digests(self, timeline: Timeline) -> list[AuditFinding]:
        """The signed digests must tell one story: what the provider
        acknowledged (receipt) is what it serves (download response) is
        what the client committed to (upload NRO)."""
        out: list[AuditFinding] = []
        for fact in timeline.evidence_facts:
            if not fact.verified:
                out.append(AuditFinding(
                    "in-storage-tampering",
                    f"{fact.flag} held by {fact.holder}",
                    f"signature attributed to {fact.signer} does not verify",
                ))
        provider = self.provider_name

        def latest(flag: str, signer: str | None = None) -> EvidenceFact | None:
            matches = [
                f for f in timeline.evidence_facts
                if f.verified and f.flag == flag
                and (signer is None or f.signer == signer)
            ]
            return matches[-1] if matches else None

        receipt = latest("UPLOAD_RECEIPT", provider)
        served = latest("DOWNLOAD_RESPONSE", provider)
        origin = latest("UPLOAD")
        if receipt is not None and served is not None \
                and served.data_hash != receipt.data_hash:
            out.append(AuditFinding(
                "in-storage-tampering",
                f"txn {timeline.transaction_id}",
                f"receipt hash {receipt.data_hash.hex()[:12]} != served hash "
                f"{served.data_hash.hex()[:12]}: data changed in custody",
            ))
        if receipt is not None and origin is not None \
                and origin.data_hash != receipt.data_hash:
            out.append(AuditFinding(
                "in-storage-tampering",
                f"txn {timeline.transaction_id}",
                "provider-acknowledged hash differs from the client's "
                "signed upload NRO",
            ))
        return out

    # -- durability ----------------------------------------------------------

    def _check_durability(self, timeline: Timeline) -> list[AuditFinding]:
        """Durably-acknowledged evidence must exist in the live store;
        an amnesia crash without a journal is irrecoverable loss."""
        out: list[AuditFinding] = []
        amnesia_parties = {
            f.subject.split(" ")[0]
            for f in self._check_fault_marks(timeline)
            if f.category == "amnesia-rollback"
        }
        for party in self.reconstructor.parties:
            journal = getattr(party, "journal", None)
            if journal is None:
                if party.name in amnesia_parties:
                    out.append(AuditFinding(
                        "amnesia-rollback",
                        f"{party.name} unjournaled state",
                        "amnesia crash with no durable journal: "
                        "state irrecoverably lost",
                    ))
                continue
            lost = journal.acked_evidence - party.evidence_store.seen_keys()
            if lost:
                out.append(AuditFinding(
                    "amnesia-rollback",
                    f"{party.name} evidence store",
                    f"{len(lost)} durably-acknowledged evidence record(s) "
                    "missing from the live store",
                ))
        return out

    # -- replica consistency -------------------------------------------------

    def _check_replication(self, timeline: Timeline) -> list[AuditFinding]:
        """When the deployment stores through a replicated store, the
        fork-consistency verifier's error findings for this transaction's
        object become audit findings — silent divergence by a replica is
        as much an inconsistency as a forged digest."""
        replication = getattr(self.reconstructor, "replication", None)
        if replication is None:
            return []
        out: list[AuditFinding] = []
        for f in replication.verifier.findings_for(key=timeline.transaction_id):
            if not f.is_error:
                continue
            out.append(AuditFinding(
                f.category,
                f"{f.replica} {f.container}/{f.key}",
                f.detail,
            ))
        return out


# ---------------------------------------------------------------------------
# Dispute dossiers
# ---------------------------------------------------------------------------


class DisputeDossier:
    """A transaction's reconstructed case file for the Arbitrator.

    Bundles the timeline, the auditor's findings, and both parties'
    evidence.  :meth:`reconstructed_verdict` recomputes the ruling from
    the timeline's evidence facts alone; :meth:`rule` feeds the raw
    evidence to a real :class:`~repro.core.arbitrator.Arbitrator`.  The
    two must agree — :meth:`agrees` is the drift detector between the
    evidence path and the reconstruction path.
    """

    def __init__(
        self,
        transaction_id: str,
        provider_name: str,
        ttp_name: str,
        timeline: Timeline,
        findings: list[AuditFinding],
        claimant_evidence: list,
        respondent_evidence: list,
    ) -> None:
        self.transaction_id = transaction_id
        self.provider_name = provider_name
        self.ttp_name = ttp_name
        self.timeline = timeline
        self.findings = findings
        self.claimant_evidence = claimant_evidence
        self.respondent_evidence = respondent_evidence

    @classmethod
    def build(
        cls,
        dep: "Deployment",
        transaction_id: str,
        claimant_name: str | None = None,
        exclusive_trace: bool = False,
    ) -> "DisputeDossier":
        claimant = (dep.client if claimant_name is None
                    else dep.any_client(claimant_name))
        auditor = ConsistencyAuditor.for_deployment(
            dep, exclusive_trace=exclusive_trace
        )
        timeline = auditor.reconstructor.reconstruct(transaction_id)
        return cls(
            transaction_id=transaction_id,
            provider_name=dep.provider.name,
            ttp_name=dep.ttp.name,
            timeline=timeline,
            findings=auditor.audit(transaction_id, timeline),
            claimant_evidence=claimant.evidence_store.for_transaction(transaction_id),
            respondent_evidence=dep.provider.evidence_store.for_transaction(transaction_id),
        )

    # -- verdicts ------------------------------------------------------------

    def _latest_fact(self, flag: str, signer: str | None = None) -> EvidenceFact | None:
        matches = [
            f for f in self.timeline.evidence_facts
            if f.verified and f.flag == flag
            and (signer is None or f.signer == signer)
        ]
        return matches[-1] if matches else None

    def reconstructed_verdict(self, dispute: str = "tampering"):
        """The verdict implied by the reconstructed timeline alone,
        applying the Arbitrator's decision rules to the evidence facts
        the reconstruction recovered."""
        from ..core.arbitrator import Verdict  # lazy: core imports obs

        if dispute == "tampering":
            receipt = self._latest_fact("UPLOAD_RECEIPT", self.provider_name)
            served = self._latest_fact("DOWNLOAD_RESPONSE", self.provider_name)
            if receipt is not None and served is not None:
                if served.data_hash != receipt.data_hash:
                    return Verdict.PROVIDER_FAULT
                return Verdict.CLAIM_REJECTED
            ack = self._latest_fact("DOWNLOAD_ACK")
            if receipt is not None and ack is not None:
                if ack.data_hash == receipt.data_hash:
                    return Verdict.CLAIM_REJECTED
                return Verdict.PROVIDER_FAULT
            return Verdict.UNRESOLVED
        if dispute == "missing-receipt":
            receipt = self._latest_fact("UPLOAD_RECEIPT", self.provider_name)
            if receipt is None:
                receipt = self._latest_fact("RESOLVE_REPLY", self.provider_name)
            if receipt is not None:
                return Verdict.CLAIM_REJECTED
            statement = self._latest_fact("RESOLVE_FAILED", self.ttp_name)
            if statement is not None:
                return Verdict.PROVIDER_FAULT
            return Verdict.UNRESOLVED
        raise ValueError(f"unknown dispute type {dispute!r}")

    def rule(self, arbitrator, dispute: str = "tampering"):
        """Submit the dossier's evidence to a real Arbitrator."""
        if dispute == "tampering":
            return arbitrator.rule_on_tampering(
                self.transaction_id,
                self.provider_name,
                self.claimant_evidence,
                self.respondent_evidence,
            )
        if dispute == "missing-receipt":
            return arbitrator.rule_on_missing_receipt(
                self.transaction_id,
                self.provider_name,
                self.ttp_name,
                self.claimant_evidence,
                self.respondent_evidence,
            )
        raise ValueError(f"unknown dispute type {dispute!r}")

    def agrees(self, arbitrator, dispute: str = "tampering") -> bool:
        """True iff the Arbitrator's ruling on the raw evidence matches
        the verdict recomputed from the reconstructed timeline."""
        return self.rule(arbitrator, dispute).verdict is \
            self.reconstructed_verdict(dispute)

    # -- rendering -----------------------------------------------------------

    def render(self, arbitrator=None, max_rows: int | None = 40) -> str:
        from ..analysis.report import render_kv  # lazy: obs stays importable from net/core

        pairs: list[tuple[str, object]] = [
            ("transaction", self.transaction_id),
            ("provider", self.provider_name),
            ("claimant evidence", len(self.claimant_evidence)),
            ("respondent evidence", len(self.respondent_evidence)),
            ("findings", "; ".join(str(f) for f in self.findings) or "none"),
            ("reconstructed verdict (tampering)",
             self.reconstructed_verdict("tampering").value),
            ("reconstructed verdict (missing-receipt)",
             self.reconstructed_verdict("missing-receipt").value),
        ]
        if arbitrator is not None:
            for dispute in ("tampering", "missing-receipt"):
                ruling = self.rule(arbitrator, dispute)
                agree = ruling.verdict is self.reconstructed_verdict(dispute)
                pairs.append((
                    f"arbitrator ({dispute})",
                    f"{ruling.verdict.value} "
                    f"[{'agrees' if agree else 'DISAGREES'}]",
                ))
        header = render_kv(pairs, title=f"Dispute dossier {self.transaction_id}")
        return f"{header}\n{self.timeline.render(max_rows=max_rows)}"
