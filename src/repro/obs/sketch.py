"""Mergeable quantile sketches and bounded streaming aggregation.

The sharded-engine telemetry substrate: a DDSketch-style quantile
sketch with **fixed** gamma (no collapsing, no rebinning) so that
per-shard sketches merge *exactly* — the merged bucket map equals the
bucket map a single global sketch would have built from the union of
the samples, and therefore every merged quantile equals the global
one bit-for-bit.  The price of exactness is an unbounded (but in
practice tiny: one int per occupied log-bucket) bucket map instead of
DDSketch's collapsed fixed-size array; for sim-latency ranges the
occupied-bucket count stays in the low hundreds.

Accuracy contract: for any value ``v > 0`` observed into the sketch,
the representative value of its bucket is within ``alpha`` *relative*
error of ``v``; hence any quantile estimate is within ``alpha``
relative error of some sample at a neighbouring rank.

:class:`SketchAggregator` adds the streaming layer: tumbling windows
over **sim time** with a bounded retention and a label-cardinality
budget, so high-cardinality per-tenant/per-replica series roll up
centrally without retaining raw samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_ALPHA",
    "QuantileSketch",
    "SketchAggregator",
    "WindowSnapshot",
]

# Default relative-error bound: 1% — p99 of a 10 s latency is known
# to within 100 ms, far below any bucket-histogram resolution.
DEFAULT_ALPHA = 0.01


@dataclass
class QuantileSketch:
    """A deterministic, exactly-mergeable log-bucket quantile sketch.

    Values map to integer buckets ``i = ceil(log_gamma(v))`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; each bucket's representative
    value ``2 * gamma**i / (gamma + 1)`` (the geometric midpoint of the
    bucket) is within ``alpha`` relative error of every value in the
    bucket.  Values below ``min_trackable`` (and exact zeros) land in a
    dedicated zero bucket.  Negative values are rejected — every series
    this repo sketches (latency, sizes, counts) is non-negative.

    Merging requires equal ``alpha``; it adds bucket maps integerwise,
    so shard-merge == global-build is an *identity* on the bucket map,
    ``count``, ``zero_count``, ``min`` and ``max`` (``sum`` may differ
    in the last float ulps by addition order).
    """

    name: str = ""
    alpha: float = DEFAULT_ALPHA
    labels: tuple[tuple[str, str], ...] = ()
    min_trackable: float = 1e-9
    buckets: dict[int, int] = field(default_factory=dict)
    zero_count: int = 0
    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"sketch alpha must be in (0, 1), got {self.alpha}")
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)

    # -- writing -------------------------------------------------------------

    def observe(self, value: float) -> None:
        if value < 0.0:
            raise ValueError(f"sketch {self.name!r} takes non-negative values, got {value}")
        if value < self.min_trackable:
            self.zero_count += 1
        else:
            index = self._index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _index(self, value: float) -> int:
        return math.ceil(math.log(value) / self._log_gamma)

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The *q*-quantile, within ``alpha`` relative error.

        Rank-walks the sorted bucket indices; the answer is the bucket
        representative clamped into ``[min, max]`` (so q=0 and q=1
        return the exact observed extremes).  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min if self.min is not None else 0.0
        if q == 1.0:
            return self.max if self.max is not None else 0.0
        rank = q * (self.count - 1)
        if rank < self.zero_count:
            return self.min if self.min is not None else 0.0
        running = self.zero_count
        value = self.min if self.min is not None else 0.0
        for index in sorted(self.buckets):
            running += self.buckets[index]
            if running > rank:
                value = self._representative(index)
                break
        lo = self.min if self.min is not None else value
        hi = self.max if self.max is not None else value
        return min(max(value, lo), hi)

    def count_le(self, threshold: float) -> int:
        """How many observations were ``<= threshold`` *up to the
        sketch's error bound*: buckets whose representative is within
        the bound count fully (used by threshold SLIs)."""
        if threshold < 0.0:
            return 0
        total = self.zero_count
        limit = threshold * (1.0 + self.alpha)
        for index, n in self.buckets.items():
            if self._representative(index) <= limit:
                total += n
        return total

    # -- merging -------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold *other* into this sketch in place (exact on buckets)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def merged(cls, name: str, shards: list["QuantileSketch"],
               alpha: float | None = None) -> "QuantileSketch":
        """A fresh sketch equal to the integerwise sum of *shards*."""
        if alpha is None:
            alpha = shards[0].alpha if shards else DEFAULT_ALPHA
        out = cls(name, alpha=alpha)
        for shard in shards:
            out.merge(shard)
        return out

    # -- serialization -------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe dict; buckets as sorted ``[index, count]`` pairs
        (a dict would stringify keys and sort them lexicographically)."""
        return {
            "name": self.name,
            "alpha": self.alpha,
            "labels": dict(self.labels),
            "buckets": [[i, self.buckets[i]] for i in sorted(self.buckets)],
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_snapshot(cls, row: dict) -> "QuantileSketch":
        out = cls(
            row.get("name", ""),
            alpha=row.get("alpha", DEFAULT_ALPHA),
            labels=tuple(sorted((k, v) for k, v in row.get("labels", {}).items())),
        )
        out.buckets = {int(i): int(n) for i, n in row.get("buckets", [])}
        out.zero_count = int(row.get("zero_count", 0))
        out.count = int(row.get("count", 0))
        out.sum = float(row.get("sum", 0.0))
        out.min = row.get("min")
        out.max = row.get("max")
        return out


@dataclass
class WindowSnapshot:
    """One closed tumbling window: ``[start, start + width)`` sim
    seconds, one merged sketch per (name, labels) series."""

    start: float
    width: float
    sketches: dict[tuple[str, tuple[tuple[str, str], ...]], QuantileSketch]

    @property
    def end(self) -> float:
        return self.start + self.width


class SketchAggregator:
    """Tumbling-window sketch aggregation with bounded memory.

    Samples are observed into per-series sketches inside the current
    window ``[k*width, (k+1)*width)``; when sim time crosses a window
    boundary the window closes and is retained (at most *retain*
    closed windows, oldest dropped).  Each metric name gets a
    label-cardinality *budget*: once a name has ``budget`` distinct
    label sets, further label sets fold into a shared
    ``("overflow", "true")`` series and ``dropped_labels`` counts the
    folded observations — cardinality explosions degrade resolution,
    never memory.

    Everything is keyed to sim time passed by the caller, so two
    same-seed runs aggregate identically.
    """

    def __init__(self, width: float = 5.0, retain: int = 12,
                 alpha: float = DEFAULT_ALPHA, budget: int = 64) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        if budget < 1:
            raise ValueError(f"label budget must be >= 1, got {budget}")
        self.width = width
        self.retain = retain
        self.alpha = alpha
        self.budget = budget
        self.dropped_labels = 0
        self._window_start = 0.0
        self._live: dict[tuple[str, tuple[tuple[str, str], ...]], QuantileSketch] = {}
        self._closed: list[WindowSnapshot] = []
        self._label_sets: dict[str, set[tuple[tuple[str, str], ...]]] = {}

    OVERFLOW = (("overflow", "true"),)

    def observe(self, now: float, name: str, value: float, **labels: str) -> None:
        self._roll(now)
        key = (name, self._admit(name, tuple(sorted((k, str(v)) for k, v in labels.items()))))
        sketch = self._live.get(key)
        if sketch is None:
            sketch = self._live[key] = QuantileSketch(name, alpha=self.alpha, labels=key[1])
        sketch.observe(value)

    def _admit(self, name: str, labels: tuple[tuple[str, str], ...]) -> tuple:
        seen = self._label_sets.setdefault(name, set())
        if labels in seen or len(seen) < self.budget:
            seen.add(labels)
            return labels
        self.dropped_labels += 1
        return self.OVERFLOW

    def _roll(self, now: float) -> None:
        if now < self._window_start + self.width:
            return
        if self._live:
            self._closed.append(WindowSnapshot(
                self._window_start, self.width, self._live))
            self._live = {}
            if len(self._closed) > self.retain:
                del self._closed[: len(self._closed) - self.retain]
        # Jump straight to the window containing `now` — skipped
        # intermediate windows were empty and are never materialized.
        self._window_start = self.width * math.floor(now / self.width)

    def flush(self, now: float) -> None:
        """Force-close the live window (end of run)."""
        if self._live:
            self._closed.append(WindowSnapshot(
                self._window_start, self.width, self._live))
            self._live = {}
            if len(self._closed) > self.retain:
                del self._closed[: len(self._closed) - self.retain]
        self._window_start = self.width * math.floor(now / self.width)

    @property
    def windows(self) -> list[WindowSnapshot]:
        return list(self._closed)

    def rollup(self, name: str, window_start: float | None = None) -> QuantileSketch:
        """Merge every retained series of *name* (all label sets, all
        retained windows — or one window) into a single sketch."""
        shards = []
        for window in self._closed:
            if window_start is not None and window.start != window_start:
                continue
            for (n, _labels), sketch in window.sketches.items():
                if n == name:
                    shards.append(sketch)
        for (n, _labels), sketch in self._live.items():
            if window_start is None and n == name:
                shards.append(sketch)
        return QuantileSketch.merged(name, shards, alpha=self.alpha)

    def series_count(self, name: str) -> int:
        return len(self._label_sets.get(name, ()))
