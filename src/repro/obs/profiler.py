"""Deterministic dual-clock region profiler + critical-path analysis.

The observe→attribute→protect gap this module closes: spans record
*what happened* per transaction and the crypto observer records *flat*
call/wall sums, but nothing attributes cost to a place in the code.
:class:`RegionProfiler` does, on two clocks at once:

* **sim time** — the deterministic simulation clock.  Per-region sim
  elapsed is a pure function of the seed, so sim-side profiles are
  byte-reproducible and comparable across machines;
* **wall time** — ``time.perf_counter``.  The real CPU cost, which is
  what a human optimizes; inherently nondeterministic and therefore
  quarantined out of every deterministic artifact.

Regions nest (``with profiler.region("engine/drive"): ...``) and each
region keeps call counts, total/self elapsed on both clocks, and a
:class:`~repro.obs.sketch.QuantileSketch` per clock — the sketch merge
is an exact integer operation, so merging per-shard profilers
reconstructs the unsharded profile bit-for-bit
(:meth:`RegionProfiler.merged`).

**Shard invariance** is a per-region contract, not a global one.  A
harness region entered once per shard (``engine/drive``) has a
shard-dependent call count; the crypto leaves recorded *under* it are
session-driven and sum exactly across shards.  Each region therefore
carries an ``invariant`` flag and the deterministic exporters
(:func:`flamegraph_text`, :func:`profile_jsonl`) emit only invariant
regions with deterministic fields — which is what makes the artifacts
byte-identical across 1/2/4/8 shard counts and across same-seed runs.
The ``scope`` flag sets the default for descendants, so a non-invariant
harness frame can still host invariant leaves (``engine/drive`` sets
``scope=True``) or poison them (``engine/build`` sets ``scope=False``
because enrollment crypto repeats per shard).

The critical-path extractor walks an existing span tree (no new
instrumentation): from the root, repeatedly descend into the child
whose span ends last; each step's *self* time is its duration minus
the chosen child's.  On the protocol's nested trees the stage
self-times telescope to exactly the root duration — the reconciliation
the OB4 experiment asserts.

Disabled cost follows the repo's observability idiom: the pool seats
:data:`NULL_PROFILER` (shared no-op, reentrant null context manager)
unless ``EngineConfig.profile`` is set, so the off path is one
attribute load and a no-op ``with`` (``benchmarks/bench_profiler.py``
proves the <= 3% bound).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..determinism import canon_float
from .sketch import DEFAULT_ALPHA, QuantileSketch
from .span import Span, Tracer

__all__ = [
    "RegionStat",
    "RegionProfiler",
    "NullRegionProfiler",
    "NULL_PROFILER",
    "CriticalStage",
    "CriticalPath",
    "critical_path",
    "campaign_critical_paths",
    "shard_utilization",
    "flamegraph_text",
    "profile_jsonl",
    "top_regions",
]

#: Path separator in collapsed-stack form (the flamegraph convention).
PATH_SEP = ";"


@dataclass
class RegionStat:
    """Accumulated cost of one region path across all its entries."""

    path: str
    invariant: bool = True
    calls: int = 0
    sim_total: float = 0.0
    wall_total: float = 0.0
    self_sim_total: float = 0.0
    self_wall_total: float = 0.0
    sim_sketch: QuantileSketch = field(default=None)  # type: ignore[assignment]
    wall_sketch: QuantileSketch = field(default=None)  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self.path.rsplit(PATH_SEP, 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count(PATH_SEP)

    def deterministic_row(self) -> dict:
        """The seed-stable projection: calls + sim-clock fields only.

        Wall-clock fields never appear here — they are real CPU time,
        different on every run and every machine.
        """
        return {
            "path": self.path,
            "calls": self.calls,
            "sim_total": canon_float(self.sim_total),
            "self_sim_total": canon_float(self.self_sim_total),
            "sim_p50": canon_float(self.sim_sketch.quantile(0.50)),
            "sim_p99": canon_float(self.sim_sketch.quantile(0.99)),
        }

    def full_row(self) -> dict:
        row = self.deterministic_row()
        row.update({
            "invariant": self.invariant,
            "wall_total": self.wall_total,
            "self_wall_total": self.self_wall_total,
            "wall_p50": self.wall_sketch.quantile(0.50),
            "wall_p99": self.wall_sketch.quantile(0.99),
        })
        return row


class _Frame:
    """One open region on the stack (internal)."""

    __slots__ = ("path", "invariant", "scope", "start_sim", "start_wall",
                 "child_sim", "child_wall")

    def __init__(self, path: str, invariant: bool, scope: bool,
                 start_sim: float, start_wall: float) -> None:
        self.path = path
        self.invariant = invariant
        self.scope = scope
        self.start_sim = start_sim
        self.start_wall = start_wall
        self.child_sim = 0.0
        self.child_wall = 0.0


class _Region:
    """The reusable context manager handed out by :meth:`region`."""

    __slots__ = ("_profiler", "_name", "_invariant", "_scope")

    def __init__(self, profiler: "RegionProfiler", name: str,
                 invariant: bool | None, scope: bool | None) -> None:
        self._profiler = profiler
        self._name = name
        self._invariant = invariant
        self._scope = scope

    def __enter__(self) -> "_Region":
        self._profiler._push(self._name, self._invariant, self._scope)
        return self

    def __exit__(self, *exc) -> None:
        self._profiler._pop()


class RegionProfiler:
    """Hierarchical dual-clock region accounting with exact merge."""

    enabled = True

    def __init__(self, clock=None, alpha: float = DEFAULT_ALPHA) -> None:
        # Sim clock: a callable -> current sim seconds (0 when absent,
        # e.g. a profiler timing pure-compute setup before a Simulator
        # exists).
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.alpha = alpha
        self._stats: dict[str, RegionStat] = {}
        self._stack: list[_Frame] = []

    # -- recording -----------------------------------------------------------

    def region(self, name: str, invariant: bool | None = None,
               scope: bool | None = None) -> _Region:
        """A ``with``-able region.  ``invariant=None`` inherits the
        enclosing scope (root scope: invariant).  ``scope`` sets the
        default for descendants and leaves recorded inside."""
        return _Region(self, name, invariant, scope)

    def _current_scope(self) -> bool:
        return self._stack[-1].scope if self._stack else True

    def _push(self, name: str, invariant: bool | None,
              scope: bool | None) -> None:
        from time import perf_counter

        parent_path = self._stack[-1].path if self._stack else ""
        path = parent_path + PATH_SEP + name if parent_path else name
        inherited = self._current_scope()
        resolved_invariant = inherited if invariant is None else invariant
        resolved_scope = resolved_invariant if scope is None else scope
        self._stack.append(_Frame(
            path, resolved_invariant, resolved_scope,
            float(self._clock()), perf_counter(),
        ))

    def _pop(self) -> None:
        from time import perf_counter

        frame = self._stack.pop()
        sim_elapsed = max(0.0, float(self._clock()) - frame.start_sim)
        wall_elapsed = max(0.0, perf_counter() - frame.start_wall)
        self._record(frame.path, frame.invariant, sim_elapsed, wall_elapsed,
                     max(0.0, sim_elapsed - frame.child_sim),
                     max(0.0, wall_elapsed - frame.child_wall))
        if self._stack:
            parent = self._stack[-1]
            parent.child_sim += sim_elapsed
            parent.child_wall += wall_elapsed

    def record_leaf(self, name: str, wall_seconds: float,
                    sim_seconds: float = 0.0,
                    invariant: bool | None = None) -> None:
        """Record one leaf call under the current region (no nesting):
        the crypto observer's feed.  Invariance follows the enclosing
        scope unless overridden, and the leaf's elapsed counts as
        *child* time of the open frame — so a parent's self time never
        double-counts the crypto calls made inside it."""
        wall_seconds = max(0.0, wall_seconds)
        sim_seconds = max(0.0, sim_seconds)
        parent_path = self._stack[-1].path if self._stack else ""
        path = parent_path + PATH_SEP + name if parent_path else name
        if invariant is None:
            invariant = self._current_scope()
        self._record(path, invariant, sim_seconds, wall_seconds,
                     sim_seconds, wall_seconds)
        if self._stack:
            parent = self._stack[-1]
            parent.child_sim += sim_seconds
            parent.child_wall += wall_seconds

    def _record(self, path: str, invariant: bool, sim_elapsed: float,
                wall_elapsed: float, self_sim: float, self_wall: float) -> None:
        stat = self._stats.get(path)
        if stat is None:
            stat = RegionStat(
                path=path,
                invariant=invariant,
                sim_sketch=QuantileSketch(
                    "profile.sim_seconds", alpha=self.alpha,
                    labels=(("region", path),)),
                wall_sketch=QuantileSketch(
                    "profile.wall_seconds", alpha=self.alpha,
                    labels=(("region", path),)),
            )
            self._stats[path] = stat
        stat.invariant = stat.invariant and invariant
        stat.calls += 1
        stat.sim_total += sim_elapsed
        stat.wall_total += wall_elapsed
        stat.self_sim_total += self_sim
        stat.self_wall_total += self_wall
        stat.sim_sketch.observe(sim_elapsed)
        stat.wall_sketch.observe(wall_elapsed)

    # -- reading -------------------------------------------------------------

    def stats(self) -> list[RegionStat]:
        """Every region stat, sorted by path (creation-order free)."""
        return [self._stats[path] for path in sorted(self._stats)]

    def get(self, path: str) -> RegionStat | None:
        return self._stats.get(path)

    @property
    def open_regions(self) -> int:
        return len(self._stack)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "RegionProfiler") -> "RegionProfiler":
        """Fold *other*'s stats into this profiler, exactly.

        Counts and totals add; sketches merge bucket-wise (the exact
        integer merge — see :mod:`repro.obs.sketch`); invariance ANDs,
        so a path that was shard-dependent anywhere stays excluded from
        deterministic exports after the merge.
        """
        for path in sorted(other._stats):
            theirs = other._stats[path]
            mine = self._stats.get(path)
            if mine is None:
                mine = RegionStat(
                    path=path,
                    invariant=theirs.invariant,
                    sim_sketch=QuantileSketch(
                        "profile.sim_seconds", alpha=self.alpha,
                        labels=(("region", path),)),
                    wall_sketch=QuantileSketch(
                        "profile.wall_seconds", alpha=self.alpha,
                        labels=(("region", path),)),
                )
                self._stats[path] = mine
            mine.invariant = mine.invariant and theirs.invariant
            mine.calls += theirs.calls
            mine.sim_total += theirs.sim_total
            mine.wall_total += theirs.wall_total
            mine.self_sim_total += theirs.self_sim_total
            mine.self_wall_total += theirs.self_wall_total
            mine.sim_sketch.merge(theirs.sim_sketch)
            mine.wall_sketch.merge(theirs.wall_sketch)
        return self

    @classmethod
    def merged(cls, profilers, alpha: float | None = None) -> "RegionProfiler":
        """A fresh profiler holding the exact fold of *profilers*."""
        profilers = list(profilers)
        if alpha is None:
            alpha = profilers[0].alpha if profilers else DEFAULT_ALPHA
        out = cls(alpha=alpha)
        for prof in profilers:
            out.merge(prof)
        return out


class _NullRegion:
    """Shared reentrant no-op context manager (stateless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_REGION = _NullRegion()


class NullRegionProfiler(RegionProfiler):
    """The disabled profiler: every operation is a no-op.

    ``region()`` returns one shared stateless context manager, so the
    off path costs an attribute load and a method call — the same
    budget as :data:`~repro.obs.metrics.NULL_METRICS`.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def region(self, name: str, invariant: bool | None = None,
               scope: bool | None = None) -> _NullRegion:  # type: ignore[override]
        return _NULL_REGION

    def record_leaf(self, name: str, wall_seconds: float,
                    sim_seconds: float = 0.0,
                    invariant: bool | None = None) -> None:
        return None

    def merge(self, other: RegionProfiler) -> RegionProfiler:
        return self


NULL_PROFILER = NullRegionProfiler()


# ---------------------------------------------------------------------------
# Critical-path extraction over span trees
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CriticalStage:
    """One span on the critical path with its self (exclusive) time."""

    name: str
    span_id: int
    start: float
    end: float
    self_seconds: float


@dataclass
class CriticalPath:
    """The dominant root-to-leaf chain of one transaction's span tree."""

    trace_id: str
    stages: list[CriticalStage]
    total: float  # measured elapsed: chain extent, first start to last end

    @property
    def length(self) -> float:
        """Sum of stage self-times; equals ``total`` when the chain has
        no dead time (each stage's self = duration minus its overlap
        with the chosen child, so the sum is the union of the chain's
        intervals)."""
        return sum(stage.self_seconds for stage in self.stages)

    def dominant(self) -> CriticalStage:
        """The stage with the most self time (ties: first on the path)."""
        return max(self.stages, key=lambda s: s.self_seconds)

    def reconciles(self, tolerance: float = 1e-9) -> bool:
        """Do the stage self-times account for the measured elapsed?

        False means dead time: somewhere on the path a child started
        after its parent span had already ended, and that gap belongs
        to no stage — the tree under-explains the transaction.
        """
        return abs(self.length - self.total) <= tolerance * max(1.0, abs(self.total))

    def rows(self) -> list[list]:
        return [
            [stage.name, canon_float(stage.start), canon_float(stage.end),
             canon_float(stage.self_seconds)]
            for stage in self.stages
        ]


def _span_end(span: Span) -> float:
    return span.end if span.end is not None else span.start


def critical_path(tracer: Tracer, trace_id: str) -> CriticalPath | None:
    """Extract the critical path of one trace (None if it has no root).

    From the root, descend into the child whose span *ends last* (the
    one that kept the transaction open); ties break toward the earliest
    span id.  A stage's self time is its duration minus its *overlap*
    with the chosen child, clamped at zero.  On strictly nested trees
    the overlap is the child's full duration and the sum telescopes to
    the root's duration; on handoff-shaped trees (a child opened as its
    parent closes — the download leg of a session) the sum is the union
    of the chain's intervals, so ``length == total`` exactly unless the
    chain has unattributed dead time.
    """
    root = tracer.root(trace_id)
    if root is None:
        return None
    by_parent: dict[int, list[Span]] = {}
    for span in tracer.trace(trace_id):
        by_parent.setdefault(span.parent_id, []).append(span)
    chain: list[Span] = [root]
    node = root
    while True:
        kids = by_parent.get(node.span_id)
        if not kids:
            break
        node = max(kids, key=lambda s: (_span_end(s), -s.span_id))
        chain.append(node)
    stages = []
    for i, span in enumerate(chain):
        end = _span_end(span)
        if i + 1 < len(chain):
            child = chain[i + 1]
            overlap = max(
                0.0, min(end, _span_end(child)) - max(span.start, child.start))
        else:
            overlap = 0.0
        stages.append(CriticalStage(
            name=span.name,
            span_id=span.span_id,
            start=span.start,
            end=end,
            self_seconds=max(0.0, span.duration - overlap),
        ))
    # Measured elapsed: the chain's extent.  On nested trees the root
    # ends last; on handoff trees the final child does.
    total = max(0.0, max(_span_end(s) for s in chain) - root.start)
    return CriticalPath(trace_id=trace_id, stages=stages, total=total)


def campaign_critical_paths(tracer: Tracer) -> dict:
    """Per-campaign dominant-stage report over every trace.

    Returns a deterministic summary: per-stage occurrence counts and
    summed self time (sorted keys), plus how often each stage was the
    transaction's dominant one.
    """
    stage_counts: dict[str, int] = {}
    stage_self: dict[str, float] = {}
    dominant_counts: dict[str, int] = {}
    transactions = 0
    for trace_id in sorted(tracer.trace_ids()):
        path = critical_path(tracer, trace_id)
        if path is None or not path.stages:
            continue
        transactions += 1
        for stage in path.stages:
            stage_counts[stage.name] = stage_counts.get(stage.name, 0) + 1
            stage_self[stage.name] = stage_self.get(stage.name, 0.0) + stage.self_seconds
        top = path.dominant().name
        dominant_counts[top] = dominant_counts.get(top, 0) + 1
    return {
        "transactions": transactions,
        "stages": {
            name: {
                "count": stage_counts[name],
                "self_seconds": canon_float(stage_self[name]),
            }
            for name in sorted(stage_counts)
        },
        "dominant": {name: dominant_counts[name] for name in sorted(dominant_counts)},
    }


# ---------------------------------------------------------------------------
# Shard utilization / imbalance
# ---------------------------------------------------------------------------


def shard_utilization(shard_summaries) -> dict:
    """Imbalance metrics from merged per-shard summaries (post-merge,
    no re-run needed — the satellite contract of PR 10).

    * ``skew_ratio`` — slowest shard's drive wall time over the mean
      (1.0 = perfectly balanced);
    * ``idle_fraction`` — fraction of total shard-seconds spent waiting
      for the straggler (0.0 = perfectly balanced);
    * ``session_skew`` — max per-shard session count over the mean.
    """
    summaries = list(shard_summaries)
    if not summaries:
        return {"shards": 0, "skew_ratio": 1.0, "idle_fraction": 0.0,
                "session_skew": 1.0}
    drives = [float(s.get("drive_seconds", 0.0)) for s in summaries]
    sessions = [int(s.get("sessions", 0)) for s in summaries]
    n = len(summaries)
    mean_drive = sum(drives) / n
    peak_drive = max(drives)
    mean_sessions = sum(sessions) / n
    return {
        "shards": n,
        "skew_ratio": round(peak_drive / mean_drive, 6) if mean_drive > 0 else 1.0,
        "idle_fraction": round(1.0 - sum(drives) / (n * peak_drive), 6)
        if peak_drive > 0 else 0.0,
        "session_skew": round(max(sessions) / mean_sessions, 6)
        if mean_sessions > 0 else 1.0,
    }


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def flamegraph_text(profiler: RegionProfiler, weight: str = "calls",
                    deterministic_only: bool = True) -> str:
    """Collapsed-stack flamegraph text: one ``path value`` line per
    region, sorted by path.

    The default weight (``calls``) and filter (invariant regions only)
    make the output byte-identical across same-seed runs *and* across
    shard counts.  ``weight="wall_us"``/``"sim_us"`` weigh by self time
    (microseconds) for human flamegraphs; wall weights are inherently
    nondeterministic, so pair them with ``deterministic_only=False``.
    """
    lines = []
    for stat in profiler.stats():
        if deterministic_only and not stat.invariant:
            continue
        if weight == "calls":
            value = stat.calls
        elif weight == "sim_us":
            value = int(round(stat.self_sim_total * 1e6))
        elif weight == "wall_us":
            value = int(round(stat.self_wall_total * 1e6))
        else:
            raise ValueError(f"unknown flamegraph weight {weight!r}")
        lines.append(f"{stat.path} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def profile_jsonl(profiler: RegionProfiler, deterministic_only: bool = True) -> str:
    """The profile as JSONL: a RunStamp header row, then one region row
    per line (sorted by path, sorted keys, tight separators).

    With the default ``deterministic_only`` the document carries only
    invariant regions and sim-clock fields — the byte-identity surface
    OB4 gates on.  ``deterministic_only=False`` adds wall-clock fields
    and shard-dependent regions for human analysis.
    """
    from ..scenarios.context import current_stamp

    stamp = current_stamp()
    header: dict = {"kind": "profile", "alpha": profiler.alpha,
                    "deterministic_only": deterministic_only}
    if stamp is not None:
        header.update(stamp.as_meta())
    rows = [header]
    for stat in profiler.stats():
        if deterministic_only:
            if not stat.invariant:
                continue
            rows.append(stat.deterministic_row())
        else:
            rows.append(stat.full_row())
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )


def top_regions(profiler: RegionProfiler, k: int = 5,
                deterministic_only: bool = True) -> list[tuple[str, int, float]]:
    """The *k* hottest regions as ``(path, calls, self_sim_total)``
    rows for the dashboard panel — ranked by calls then path, so the
    ranking is deterministic whenever the inputs are."""
    stats = [
        s for s in profiler.stats()
        if not deterministic_only or s.invariant
    ]
    ranked = sorted(stats, key=lambda s: (-s.calls, s.path))
    return [
        (s.path, s.calls, canon_float(s.self_sim_total))
        for s in ranked[:k]
    ]
