"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the
subsystem layout: crypto, network simulation, storage platforms, and the
non-repudiation protocols.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# --------------------------------------------------------------------------
# Crypto substrate
# --------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for failures inside :mod:`repro.crypto`."""


class InvalidKeyError(CryptoError):
    """A key object is malformed, of the wrong type, or too small."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted or failed its integrity check."""


class SecretSharingError(CryptoError):
    """Invalid parameters or shares in Shamir secret sharing."""


class CertificateError(CryptoError):
    """A certificate is invalid, expired, or not signed by a trusted CA."""


# --------------------------------------------------------------------------
# Network simulation
# --------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for failures inside :mod:`repro.net`."""


class DeliveryError(NetworkError):
    """A message could not be delivered (unknown node, closed channel)."""


class TimeoutError_(NetworkError):
    """A protocol step timed out waiting for a response."""


class HandshakeError(NetworkError):
    """The secure-channel handshake failed (bad signature, bad MAC...)."""


class RecordError(NetworkError):
    """A secure-channel record failed its MAC or sequence check."""


# --------------------------------------------------------------------------
# Storage platforms
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for failures inside :mod:`repro.storage`."""


class AuthenticationError(StorageError):
    """A request's credentials (HMAC signature, signed request) are invalid."""


class AuthorizationError(StorageError):
    """Authenticated principal is not allowed to access the resource."""


class IntegrityError(StorageError):
    """A checksum (Content-MD5 etc.) did not match the payload."""


class NoSuchObjectError(StorageError):
    """The requested blob / job / account does not exist."""


class ShippingError(StorageError):
    """A simulated device shipment failed or was lost in transit."""


# --------------------------------------------------------------------------
# Protocols (bridging schemes, TPNR, baselines)
# --------------------------------------------------------------------------

class ProtocolError(ReproError):
    """Base class for protocol violations."""


class EvidenceError(ProtocolError):
    """Evidence (NRO/NRR) failed verification or is inconsistent."""


class ReplayError(ProtocolError):
    """A message reused a nonce / sequence number and was rejected."""


class StateError(ProtocolError):
    """A protocol message arrived in a state where it is not legal."""


class AbortedError(ProtocolError):
    """The transaction was aborted (by request or by policy)."""


class DisputeError(ProtocolError):
    """Arbitration could not reach a verdict from the supplied evidence."""
