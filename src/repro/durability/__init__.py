"""Crash-recovery subsystem: durable party state for TPNR roles.

PR 1 made the reproduction survive *message* faults; this package makes
it survive *process* faults.  The pieces, bottom-up:

* :mod:`repro.durability.wal` — a simulated :class:`StableStore`
  (write buffer + fsync + crash with seeded torn-write/partial-fsync
  faults) and a length+CRC-framed append-only :class:`WriteAheadLog`
  whose reader truncates at the first damaged frame instead of raising;
* :mod:`repro.durability.checkpoint` — :class:`PartyState`, the
  snapshot+replay representation of one party's protocol state
  (transactions, anti-replay counters, evidence, role handles), with
  idempotent record application so a replayed prefix is harmless;
* :mod:`repro.durability.journal` — :class:`PartyJournal`, the hook a
  :class:`~repro.core.party.TpnrParty` writes every evidence-bearing
  transition through *before* acting on it, with periodic snapshots;
* :mod:`repro.durability.recovery` — :func:`recover`, which rebuilds a
  party from its last durable prefix, then resumes in-flight
  transactions (re-send + re-arm timers) or deterministically
  escalates them to Abort/Resolve.

The invariant the whole package exists to uphold (and that
:class:`repro.net.faults.CampaignRunner` audits): **no evidence that
was durably acknowledged before a crash is ever missing after
recovery**, and recovered runs still reach a terminal state with no
conflicting evidence.
"""

from .checkpoint import PartyState, apply_state, capture_state
from .journal import PartyJournal
from .recovery import RecoveryReport, recover
from .wal import CrashFaultPolicy, StableStore, WalScan, WriteAheadLog

__all__ = [
    "CrashFaultPolicy",
    "StableStore",
    "WalScan",
    "WriteAheadLog",
    "PartyState",
    "capture_state",
    "apply_state",
    "PartyJournal",
    "RecoveryReport",
    "recover",
]
