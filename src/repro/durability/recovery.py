"""The recovery driver: rebuild a party from its durable prefix.

:func:`recover` is what "the process restarts" means in this
reproduction.  It scans the party's WAL (truncating at any damaged
tail), folds snapshot + records into a
:class:`~repro.durability.checkpoint.PartyState`, overwrites the
party's wiped in-memory state, and then makes the *liveness* decisions
persistence alone cannot: every in-flight transaction is either
**resumed** (re-send with fresh header, re-armed timers) or
**deterministically escalated** to Abort/Resolve/FAILED — a restarted
party must never sit on a PENDING transaction with no timer armed, or
PR 1's no-run-hangs guarantee dies at the first reboot.

The decision table for a recovered client:

==========  ===========================  =================================
status      recovered context            action
==========  ===========================  =================================
RESOLVING   —                            re-send the Resolve request
PENDING     abort was in flight          re-send the Abort
PENDING     payload survived in the WAL  re-send the upload
PENDING     payload lost, TTP known      escalate to Resolve
PENDING     payload lost, no TTP         finish FAILED (documented loss)
==========  ===========================  =================================

A recovered TTP re-opens every pending resolve (fresh query +
timeout); a recovered provider is purely reactive, so restoring its
state is the whole job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.transaction import TxStatus
from .checkpoint import PartyState, apply_state

if TYPE_CHECKING:  # pragma: no cover
    from ..core.party import TpnrParty

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What one :func:`recover` call found and did."""

    party: str
    role: str
    records_replayed: int = 0
    snapshots_seen: int = 0
    tail_truncated: bool = False
    transactions: int = 0
    evidence_restored: int = 0
    resumed: int = 0
    escalated: int = 0
    actions: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.party}/{self.role}: {self.records_replayed} records"
            f" ({self.snapshots_seen} snapshots"
            f"{', tail truncated' if self.tail_truncated else ''}),"
            f" {self.transactions} txns, {self.evidence_restored} evidence,"
            f" {self.resumed} resumed, {self.escalated} escalated"
        )


def recover(party: "TpnrParty", resume: bool = True) -> RecoveryReport:
    """Rebuild *party* from its journal's durable prefix.

    With ``resume=False`` only the state restore runs (useful for
    inspecting what a recovery *would* see); with the default, in-flight
    work is re-sent or escalated as documented above.
    """
    journal = party.journal
    role = journal.role if journal is not None else "unknown"
    report = RecoveryReport(party=party.name, role=role)
    party.crashed = False
    if journal is None:
        # Amnesia with no journal: nothing to restore.  The party runs
        # on from a blank slate; the campaign audit is what notices.
        party.recoveries += 1
        return report
    state, scan, snapshots = journal.durable_state()
    report.records_replayed = len(scan.records)
    report.snapshots_seen = snapshots
    report.tail_truncated = scan.truncated
    apply_state(party, state)
    report.transactions = len(party.transactions)
    report.evidence_restored = len(party.evidence_store)
    party.recoveries += 1
    obs = party.obs
    spans = {}
    if obs.enabled:
        # One recovery span per restored in-flight transaction, parented
        # under that transaction's root — the tracer lives on the
        # network, so the tree survived the amnesia wipe that just
        # destroyed the party's own state.  Terminal transactions are
        # restored too but get no span: across a long campaign every
        # restart would otherwise re-annotate every historical trace.
        for txn in sorted(party.transactions):
            if party.transactions[txn].status in (
                TxStatus.PENDING,
                TxStatus.RESOLVING,
            ) and obs.tracer.root(txn) is not None:
                spans[txn] = obs.tracer.start(
                    txn, f"recovery.{role}",
                    party=party.name,
                    records_replayed=report.records_replayed,
                    snapshots=report.snapshots_seen,
                    tail_truncated=report.tail_truncated,
                )
    if resume:
        if role == "client":
            _resume_client(party, report)
        elif role == "ttp":
            _resume_ttp(party, state, report)
        # provider: reactive role; restored state is the whole job.
    if obs.enabled:
        for action in report.actions:
            # Actions read "<what>: <transaction id>"; annotate the span
            # of the transaction they acted on.
            what, _, txn = action.rpartition(": ")
            span = spans.get(txn)
            if span is not None:
                span.event(party.now, f"recovery:{what}")
        for span in spans.values():
            obs.tracer.finish(span, status="ok")
        obs.metrics.counter("recovery.runs", role=role).inc()
        obs.metrics.counter("recovery.resumed", role=role).inc(report.resumed)
        obs.metrics.counter("recovery.escalated", role=role).inc(report.escalated)
        obs.metrics.histogram(
            "recovery.wal_replay_records",
            buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        ).observe(report.records_replayed)
    return report


# ---------------------------------------------------------------------------
# Role-specific resume/escalate
# ---------------------------------------------------------------------------


def _resume_client(party, report: RecoveryReport) -> None:
    for transaction_id in sorted(party.transactions):
        record = party.transactions[transaction_id]
        handle = party.uploads.get(transaction_id)
        if record.status is TxStatus.RESOLVING:
            party.start_resolve(transaction_id, report="resumed after crash recovery")
            report.resumed += 1
            report.actions.append(f"resolve resumed: {transaction_id}")
        elif record.status is TxStatus.PENDING:
            if handle is not None and handle.aborting:
                party.abort(transaction_id)
                report.resumed += 1
                report.actions.append(f"abort re-sent: {transaction_id}")
            elif handle is not None and handle.data is not None:
                party.resume_upload(transaction_id)
                report.resumed += 1
                report.actions.append(f"upload re-sent: {transaction_id}")
            elif handle is not None and handle.auto_resolve and party.ttp_name:
                # The payload bytes did not survive; the NRO may have
                # landed at the provider, so ask the TTP rather than
                # silently forgetting the session.
                party.start_resolve(
                    transaction_id,
                    report="crash recovery: upload payload not recoverable",
                )
                report.escalated += 1
                report.actions.append(f"upload escalated to resolve: {transaction_id}")
            else:
                party.finish_txn(
                    record, TxStatus.FAILED, "crash recovery: cannot resume upload"
                )
                report.escalated += 1
                report.actions.append(f"upload failed at recovery: {transaction_id}")
    for transaction_id in sorted(party.downloads):
        result = party.downloads[transaction_id]
        unfinished = (
            result.data is None and not result.detail and not result.verified
        )
        if unfinished and transaction_id in party.uploads:
            party.download(transaction_id)
            report.resumed += 1
            report.actions.append(f"download re-requested: {transaction_id}")


def _resume_ttp(party, state: PartyState, report: RecoveryReport) -> None:
    for transaction_id in sorted(state.role_state.get("pending", {})):
        info = state.role_state["pending"][transaction_id]
        party.reopen_resolve(
            transaction_id,
            requester=info["requester"],
            counterparty=info["counterparty"],
            report=info["report"],
            data_hash=info["data_hash"],
        )
        report.resumed += 1
        report.actions.append(f"resolve query re-armed: {transaction_id}")
