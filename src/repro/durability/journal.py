"""The journal: one party's write-ahead log plus snapshot policy.

:class:`PartyJournal` is the object a :class:`~repro.core.party.TpnrParty`
holds (``party.journal``) and writes every evidence-bearing transition
through **before** acting on it — the WAL discipline.  It owns:

* the party's file in a shared :class:`~repro.durability.wal.StableStore`
  (``<name>.wal``),
* the snapshot cadence (every ``snapshot_interval`` records a full
  :class:`~repro.durability.checkpoint.PartyState` snapshot is written
  *before* the triggering record, bounding replay work),
* the crash fault policy applied to this party's file when the process
  dies (:meth:`crash`).

The convenience loggers (:meth:`log_send` … :meth:`log_txn`) define the
record vocabulary :meth:`PartyState.apply_record` understands; roles
append their own ``client.*`` / ``provider.*`` / ``ttp.*`` records via
the generic :meth:`log`.
"""

from __future__ import annotations

from ..crypto.drbg import HmacDrbg
from .checkpoint import (
    PartyState,
    capture_state,
    evidence_to_dict,
    header_to_dict,
    rebuild,
    txn_to_dict,
)
from .wal import HONEST_DISK, CrashFaultPolicy, StableStore, WalScan, WriteAheadLog

__all__ = ["PartyJournal"]


class PartyJournal:
    """Durable journal for one party, over one stable-store file."""

    def __init__(
        self,
        store: StableStore,
        filename: str,
        role: str,
        snapshot_interval: int = 48,
        crash_policy: CrashFaultPolicy = HONEST_DISK,
        fault_rng: HmacDrbg | None = None,
    ) -> None:
        self.wal = WriteAheadLog(store, filename)
        self.role = role
        self.snapshot_interval = max(1, snapshot_interval)
        self.crash_policy = crash_policy
        self.fault_rng = fault_rng
        self._party = None
        self._since_snapshot = 0
        self.records_logged = 0
        self.snapshots_written = 0
        self.crashes = 0
        # Incremental record of every evidence key fsynced so far; with
        # an honest disk this equals the scan-derived
        # :meth:`durable_evidence_keys` (a lying disk makes them differ
        # — which is exactly what the durability audit must notice).
        self.acked_evidence: set[tuple[str, bytes]] = set()

    def bind(self, party) -> None:
        self._party = party

    def _now(self) -> float | None:
        """The bound party's sim time, or None when unbindable (a
        standalone journal in tests has no network clock)."""
        party = self._party
        if party is None:
            return None
        try:
            return party.now
        except AttributeError:
            return None

    # -- writing ------------------------------------------------------------

    def log(self, record_type: str, **fields) -> None:
        """Durably append one record (snapshotting first if due).

        The snapshot goes *before* the triggering record: a snapshot
        reflects completed effects of everything already logged, and
        the new record replays idempotently on top of it.
        """
        if (
            self._party is not None
            and self._since_snapshot >= self.snapshot_interval
        ):
            self.write_snapshot()
        # Stamp the sim time so forensic reconstruction can place the
        # record on a cross-surface timeline.  Replay ignores unknown
        # keys, so pre-stamp WALs and stamped WALs interoperate.
        at = self._now()
        if at is not None and "at" not in fields:
            fields["at"] = at
        self.wal.append({"type": record_type, **fields})
        self.records_logged += 1
        self._since_snapshot += 1
        party = self._party
        if party is not None:
            obs = party.obs
            if obs.enabled:
                obs.metrics.counter(
                    "wal.records", party=party.name, type=record_type
                ).inc()

    def write_snapshot(self) -> None:
        state = capture_state(self._party, self.role)
        self.wal.append({"type": "snapshot", "state": state.to_dict()})
        self.snapshots_written += 1
        self._since_snapshot = 0
        party = self._party
        if party is not None:
            obs = party.obs
            if obs.enabled:
                obs.metrics.counter("wal.snapshots", party=party.name).inc()

    # -- the record vocabulary ----------------------------------------------

    def log_send(self, header) -> None:
        self.log(
            "send",
            peer=header.recipient_id,
            seq=header.sequence_number,
            txn=header.transaction_id,
        )

    def log_recv(self, header) -> None:
        self.log(
            "recv",
            peer=header.sender_id,
            seq=header.sequence_number,
            nonce=header.nonce,
            txn=header.transaction_id,
        )

    def log_evidence(self, evidence) -> None:
        self.log("evidence", **evidence_to_dict(evidence))
        self.acked_evidence.add(
            (evidence.signer, evidence.header.to_signed_bytes())
        )

    def log_txn(self, record) -> None:
        self.log("txn", **txn_to_dict(record))

    # -- crashing and reading back ------------------------------------------

    def crash(self) -> None:
        """The process died: lose this file's write buffer (per the
        journal's fault policy)."""
        self.wal.store.crash(
            self.crash_policy, rng=self.fault_rng, filenames=[self.wal.filename]
        )
        self.crashes += 1

    def durable_scan(self) -> WalScan:
        return self.wal.durable_scan()

    def durable_state(self) -> tuple[PartyState, WalScan, int]:
        """Rebuild the state the durable prefix describes.

        Returns ``(state, scan, snapshots_seen)``.
        """
        scan = self.durable_scan()
        state, snapshots = rebuild(scan.records, self.role)
        return state, scan, snapshots

    def durable_evidence_keys(self) -> set[tuple[str, bytes]]:
        """Identity keys of every durably-acknowledged piece of
        evidence — the set the campaign audit checks is never lost."""
        state, _, _ = self.durable_state()
        return state.evidence_keys()
