"""Simulated stable storage and a checksummed write-ahead log.

The persistence model (PAPERS.md: *Don't Trust the Cloud, Verify*
argues integrity protocols must be stated against one) is the classic
two-tier disk abstraction:

* bytes **appended** to a file land in a volatile write buffer;
* **fsync** moves the buffer to the durable region;
* a **crash** discards the buffer — except when a seeded
  :class:`CrashFaultPolicy` injects the realistic failure modes: a torn
  write (a byte-prefix of the buffer reached the platter), a partial
  fsync (the platter acknowledged more than it kept), a corrupted or
  lost durable tail (firmware lying about write-back caches).

On top of that sits :class:`WriteAheadLog`: length+CRC-framed records
(``>I length, >I crc32, payload``) encoded as canonical JSON with
hex-tagged byte strings.  The reader (:meth:`WriteAheadLog.scan`)
**truncates at the first damaged frame** instead of raising — a torn
tail must cost at most the un-synced suffix, never the whole log.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..crypto.drbg import HmacDrbg
from ..errors import StorageError

__all__ = [
    "CrashFaultPolicy",
    "StableStore",
    "WalScan",
    "WriteAheadLog",
    "encode_record",
    "decode_record",
]

_FRAME_HEADER = struct.Struct(">II")  # (payload length, crc32(payload))
_MAX_RECORD = 16 * 1024 * 1024
_BYTES_TAG = "__bytes__"


# ---------------------------------------------------------------------------
# Record codec: canonical JSON with tagged byte strings
# ---------------------------------------------------------------------------


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise StorageError(f"cannot journal a {type(value).__name__}")


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def encode_record(record: dict) -> bytes:
    """Canonical (sorted-key, compact) encoding of one WAL record."""
    return json.dumps(
        _to_jsonable(record), sort_keys=True, separators=(",", ":")
    ).encode()


def decode_record(payload: bytes) -> dict:
    return _from_jsonable(json.loads(payload.decode()))


# ---------------------------------------------------------------------------
# Stable storage with crash faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFaultPolicy:
    """Seeded storage-fault mix applied when a :class:`StableStore`
    crashes.  The default (all zeros) is an honest disk: fsynced bytes
    survive, buffered bytes vanish.

    :param keep_pending_prob: chance the un-synced buffer (or a prefix
        of it) reached the platter anyway — the flip side of a lying
        write-back cache, which recovery must treat as a *bonus*, never
        rely on.
    :param torn_write_prob: given the buffer survived, chance only a
        byte-prefix of it did (a torn frame the WAL reader must stop at).
    :param corrupt_tail_prob: chance a byte near the surviving end is
        flipped (media error on the last sector).
    :param lose_durable_tail_prob: chance a few *fsynced* tail bytes
        vanish — firmware lying about durability.  Enabling this can
        violate the no-acknowledged-loss invariant by construction; it
        exists so tests can show the audit *catches* that class.
    """

    keep_pending_prob: float = 0.0
    torn_write_prob: float = 0.0
    corrupt_tail_prob: float = 0.0
    lose_durable_tail_prob: float = 0.0


HONEST_DISK = CrashFaultPolicy()


class _StableFile:
    __slots__ = ("durable", "pending")

    def __init__(self) -> None:
        self.durable = bytearray()
        self.pending = bytearray()


class StableStore:
    """Named byte files with an explicit durable/buffered boundary."""

    def __init__(self, name: str = "stable") -> None:
        self.name = name
        self._files: dict[str, _StableFile] = {}
        self.crashes = 0
        self.fsyncs = 0

    def _file(self, filename: str) -> _StableFile:
        return self._files.setdefault(filename, _StableFile())

    def append(self, filename: str, data: bytes) -> None:
        """Buffer *data* at the end of *filename* (volatile until fsync)."""
        self._file(filename).pending.extend(data)

    def fsync(self, filename: str) -> None:
        """Make every buffered byte of *filename* durable."""
        f = self._file(filename)
        f.durable.extend(f.pending)
        f.pending.clear()
        self.fsyncs += 1

    def durable_bytes(self, filename: str) -> bytes:
        """What would survive a crash right now."""
        return bytes(self._file(filename).durable)

    def volatile_view(self, filename: str) -> bytes:
        """What the running process sees (durable + buffered)."""
        f = self._file(filename)
        return bytes(f.durable) + bytes(f.pending)

    def pending_bytes(self, filename: str) -> int:
        return len(self._file(filename).pending)

    def filenames(self) -> list[str]:
        return sorted(self._files)

    def crash(
        self,
        policy: CrashFaultPolicy = HONEST_DISK,
        rng: HmacDrbg | None = None,
        filenames: list[str] | None = None,
    ) -> None:
        """Lose the write buffers, applying *policy*'s storage faults.

        Deterministic given *rng*; with the default policy no *rng* is
        needed and the durable region is untouched.
        """
        self.crashes += 1
        targets = filenames if filenames is not None else self.filenames()
        for filename in targets:
            f = self._file(filename)
            survivor = b""
            if f.pending and rng is not None and rng.random() < policy.keep_pending_prob:
                survivor = bytes(f.pending)
                if rng.random() < policy.torn_write_prob:
                    survivor = survivor[: rng.randint(0, len(survivor) - 1)]
            f.pending.clear()
            f.durable.extend(survivor)
            if (
                f.durable
                and rng is not None
                and rng.random() < policy.lose_durable_tail_prob
            ):
                chop = rng.randint(1, min(64, len(f.durable)))
                del f.durable[-chop:]
            if (
                f.durable
                and rng is not None
                and rng.random() < policy.corrupt_tail_prob
            ):
                span = min(32, len(f.durable))
                pos = len(f.durable) - 1 - rng.randint(0, span - 1)
                f.durable[pos] ^= 0xFF


# ---------------------------------------------------------------------------
# The write-ahead log
# ---------------------------------------------------------------------------


@dataclass
class WalScan:
    """Result of reading back a (possibly damaged) log image."""

    records: list[dict] = field(default_factory=list)
    valid_bytes: int = 0
    total_bytes: int = 0

    @property
    def truncated(self) -> bool:
        """True when a damaged/incomplete tail was cut off."""
        return self.valid_bytes < self.total_bytes


class WriteAheadLog:
    """Append-only framed records over one :class:`StableStore` file."""

    def __init__(self, store: StableStore, filename: str) -> None:
        self.store = store
        self.filename = filename
        self.appends = 0

    def append(self, record: dict, sync: bool = True) -> None:
        """Frame and append one record; fsync by default (the WAL
        discipline: the record must be durable before its effect is
        acted on)."""
        payload = encode_record(record)
        if len(payload) > _MAX_RECORD:
            raise StorageError(f"WAL record too large ({len(payload)} bytes)")
        frame = _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self.store.append(self.filename, frame)
        if sync:
            self.store.fsync(self.filename)
        self.appends += 1

    def sync(self) -> None:
        self.store.fsync(self.filename)

    @staticmethod
    def scan(image: bytes) -> WalScan:
        """Parse a log image, truncating at the first damaged frame.

        A short header, an absurd length, a CRC mismatch, or an
        undecodable payload all end the scan *cleanly*: every record
        before the damage is returned, the damage itself is reported
        via :attr:`WalScan.truncated` — never an exception.
        """
        scan = WalScan(total_bytes=len(image))
        offset = 0
        while offset + _FRAME_HEADER.size <= len(image):
            length, crc = _FRAME_HEADER.unpack_from(image, offset)
            start = offset + _FRAME_HEADER.size
            end = start + length
            if length > _MAX_RECORD or end > len(image):
                break
            payload = image[start:end]
            if zlib.crc32(payload) != crc:
                break
            try:
                record = decode_record(payload)
            except Exception:
                break
            scan.records.append(record)
            offset = end
            scan.valid_bytes = offset
        return scan

    def durable_scan(self) -> WalScan:
        """Records that would survive a crash right now."""
        return self.scan(self.store.durable_bytes(self.filename))

    def records(self) -> Iterator[dict]:
        """All records visible to the running process."""
        return iter(self.scan(self.store.volatile_view(self.filename)).records)
