"""Snapshot + replay representation of one TPNR party's durable state.

:class:`PartyState` is the hinge of the crash-recovery design: it is at
once the *snapshot format* (a periodic ``{"type": "snapshot"}`` WAL
record carries :meth:`PartyState.to_dict`), the *replay accumulator*
(:meth:`PartyState.apply_record` folds every later WAL record in), and
the *restore source* (:func:`apply_state` rebuilds a live
:class:`~repro.core.party.TpnrParty` from it).

Record application is **idempotent** — sequence counters are folded
with ``max``, nonces and evidence with set union, statuses by
overwrite — so a record that is both reflected in a snapshot and
replayed after it does no harm.  That property is what lets the
journal write snapshots at any record boundary without coordination.

What is deliberately *not* captured: armed timers and retransmission
loops (a restarted process has none — :mod:`repro.durability.recovery`
re-arms or escalates them), the DRBG position (nonce uniqueness is a
harness property), and observability counters (they model the test
harness, not the process, and survive crashes on the live object).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.client import DownloadResult, TpnrClient, UploadHandle
from ..core.evidence import OpenedEvidence
from ..core.messages import Flag, Header
from ..core.transaction import (
    EvidenceStore,
    PeerState,
    TransactionRecord,
    TxStatus,
)
from ..storage.blobstore import BlobStore

if TYPE_CHECKING:  # pragma: no cover
    from ..core.party import TpnrParty

__all__ = [
    "PartyState",
    "capture_state",
    "apply_state",
    "rebuild",
    "header_to_dict",
    "header_from_dict",
    "evidence_to_dict",
    "evidence_from_dict",
]

_BLOB_CONTAINER = "tpnr-data"


# ---------------------------------------------------------------------------
# Field-level codecs
# ---------------------------------------------------------------------------


def header_to_dict(header: Header) -> dict:
    return {
        "flag": header.flag.value,
        "sender": header.sender_id,
        "recipient": header.recipient_id,
        "ttp": header.ttp_id,
        "txn": header.transaction_id,
        "seq": header.sequence_number,
        "nonce": header.nonce,
        "time_limit": header.time_limit,
        "data_hash": header.data_hash,
    }


def header_from_dict(d: dict) -> Header:
    return Header(
        flag=Flag(d["flag"]),
        sender_id=d["sender"],
        recipient_id=d["recipient"],
        ttp_id=d["ttp"],
        transaction_id=d["txn"],
        sequence_number=d["seq"],
        nonce=d["nonce"],
        time_limit=d["time_limit"],
        data_hash=d["data_hash"],
    )


def evidence_to_dict(evidence: OpenedEvidence) -> dict:
    return {
        "signer": evidence.signer,
        "header": header_to_dict(evidence.header),
        "sig_data": evidence.signature_over_data_hash,
        "sig_header": evidence.signature_over_header,
    }


def evidence_from_dict(d: dict) -> OpenedEvidence:
    return OpenedEvidence(
        header=header_from_dict(d["header"]),
        signature_over_data_hash=d["sig_data"],
        signature_over_header=d["sig_header"],
        signer=d["signer"],
    )


def txn_to_dict(record: TransactionRecord) -> dict:
    return {
        "transaction_id": record.transaction_id,
        "role": record.role,
        "peer": record.peer,
        "status": record.status.value,
        "data_hash": record.data_hash,
        "data_size": record.data_size,
        "started_at": record.started_at,
        "finished_at": record.finished_at,
        "detail": record.detail,
    }


def txn_from_dict(d: dict) -> TransactionRecord:
    return TransactionRecord(
        transaction_id=d["transaction_id"],
        role=d["role"],
        peer=d["peer"],
        status=TxStatus(d["status"]),
        data_hash=d["data_hash"],
        data_size=d["data_size"],
        started_at=d["started_at"],
        finished_at=d["finished_at"],
        detail=d["detail"],
    )


def _evidence_key(ev_dict: dict) -> tuple[str, bytes]:
    """Same identity the live :class:`EvidenceStore` dedups on."""
    return (ev_dict["signer"], header_from_dict(ev_dict["header"]).to_signed_bytes())


# ---------------------------------------------------------------------------
# The state object
# ---------------------------------------------------------------------------


class PartyState:
    """Snapshot/replay accumulator for one party's protocol state."""

    def __init__(self, role: str) -> None:
        self.role = role
        self.transactions: dict[str, dict] = {}
        self.peers: dict[str, dict] = {}  # name -> {"send", "recv", "nonces": set}
        self.evidence: list[dict] = []
        self._evidence_keys: set[tuple[str, bytes]] = set()
        self.role_state: dict[str, Any] = {}

    # -- peers ---------------------------------------------------------------

    def _peer(self, name: str) -> dict:
        return self.peers.setdefault(name, {"send": 0, "recv": -1, "nonces": set()})

    def _add_evidence(self, ev_dict: dict) -> None:
        key = _evidence_key(ev_dict)
        if key not in self._evidence_keys:
            self._evidence_keys.add(key)
            self.evidence.append(ev_dict)

    def evidence_keys(self) -> set[tuple[str, bytes]]:
        return set(self._evidence_keys)

    # -- replay --------------------------------------------------------------

    def apply_record(self, record: dict) -> None:
        """Fold one WAL record in; unknown types are ignored (a newer
        writer must not make an older reader's recovery explode)."""
        rtype = record.get("type")
        if rtype == "send":
            peer = self._peer(record["peer"])
            peer["send"] = max(peer["send"], record["seq"] + 1)
        elif rtype == "recv":
            peer = self._peer(record["peer"])
            peer["recv"] = max(peer["recv"], record["seq"])
            peer["nonces"].add(record["nonce"])
        elif rtype == "evidence":
            self._add_evidence(
                {
                    "signer": record["signer"],
                    "header": record["header"],
                    "sig_data": record["sig_data"],
                    "sig_header": record["sig_header"],
                }
            )
        elif rtype == "txn":
            fields = dict(record)
            fields.pop("type")
            self.transactions[record["transaction_id"]] = fields
        elif rtype == "client.upload":
            uploads = self.role_state.setdefault("uploads", {})
            uploads[record["txn"]] = {
                "provider": record["provider"],
                "data": record["data"],
                "data_hash": record["data_hash"],
                "data_size": record["data_size"],
                "auto_resolve": record["auto_resolve"],
                "aborting": False,
            }
        elif rtype == "client.abort":
            handle = self.role_state.setdefault("uploads", {}).get(record["txn"])
            if handle is not None:
                handle["aborting"] = True
        elif rtype == "client.download":
            downloads = self.role_state.setdefault("downloads", {})
            downloads[record["txn"]] = {
                "data": None,
                "verified": False,
                "tampering": False,
                "detail": "",
                "flags": [],
            }
        elif rtype == "client.download.result":
            downloads = self.role_state.setdefault("downloads", {})
            downloads[record["txn"]] = {
                "data": record["data"],
                "verified": record["verified"],
                "tampering": record["tampering"],
                "detail": record["detail"],
                "flags": list(record["flags"]),
            }
        elif rtype == "provider.blob":
            blobs = self.role_state.setdefault("blobs", {})
            blobs[record["txn"]] = {
                "container": record["container"],
                "key": record["key"],
                "data": record["data"],
            }
        elif rtype == "provider.grant":
            grants = self.role_state.setdefault("grants", {})
            grantees = grants.setdefault(record["txn"], [])
            if record["grantee"] not in grantees:
                grantees.append(record["grantee"])
        elif rtype == "ttp.pending":
            pending = self.role_state.setdefault("pending", {})
            pending[record["txn"]] = {
                "requester": record["requester"],
                "counterparty": record["counterparty"],
                "report": record["report"],
                "data_hash": record["data_hash"],
            }
        elif rtype == "ttp.done":
            self.role_state.setdefault("pending", {}).pop(record["txn"], None)
        # else: forward-compatible no-op

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "role": self.role,
            "transactions": {k: dict(v) for k, v in sorted(self.transactions.items())},
            "peers": {
                name: {
                    "send": p["send"],
                    "recv": p["recv"],
                    "nonces": sorted(p["nonces"]),
                }
                for name, p in sorted(self.peers.items())
            },
            "evidence": [dict(e) for e in self.evidence],
            "role_state": self.role_state,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PartyState":
        state = cls(d["role"])
        state.transactions = {k: dict(v) for k, v in d["transactions"].items()}
        state.peers = {
            name: {"send": p["send"], "recv": p["recv"], "nonces": set(p["nonces"])}
            for name, p in d["peers"].items()
        }
        for ev in d["evidence"]:
            state._add_evidence(dict(ev))
        state.role_state = {k: v for k, v in d["role_state"].items()}
        return state


def rebuild(records: list[dict], role: str) -> tuple[PartyState, int]:
    """Fold a WAL record sequence into the state it describes.

    Returns ``(state, snapshots_seen)``.  Replay restarts from the most
    recent snapshot and folds every record after it.
    """
    state = PartyState(role)
    snapshots = 0
    for record in records:
        if record.get("type") == "snapshot":
            state = PartyState.from_dict(record["state"])
            state.role = role
            snapshots += 1
        else:
            state.apply_record(record)
    return state, snapshots


# ---------------------------------------------------------------------------
# Live party <-> PartyState
# ---------------------------------------------------------------------------


def capture_state(party: "TpnrParty", role: str) -> PartyState:
    """Photograph a live party's durable-relevant state."""
    state = PartyState(role)
    for txn, record in party.transactions.items():
        state.transactions[txn] = txn_to_dict(record)
    for name, peer in party._peers.items():
        state.peers[name] = {
            "send": peer.next_send_seq,
            "recv": peer.highest_recv_seq,
            "nonces": set(peer.seen_nonces),
        }
    for evidence in party.evidence_store.all_entries():
        state._add_evidence(evidence_to_dict(evidence))
    if role == "client":
        uploads = {}
        for txn, handle in party.uploads.items():
            uploads[txn] = {
                "provider": handle.provider,
                "data": handle.data,
                "data_hash": handle.data_hash,
                "data_size": handle.data_size,
                "auto_resolve": handle.auto_resolve,
                "aborting": handle.aborting,
            }
        downloads = {}
        for txn, result in party.downloads.items():
            downloads[txn] = {
                "data": result.data,
                "verified": result.verified,
                "tampering": result.tampering_detected,
                "detail": result.detail,
                "flags": list(result.evidence_flags),
            }
        state.role_state = {"uploads": uploads, "downloads": downloads}
    elif role == "provider":
        blobs = {}
        for obj in party.store.objects():
            blobs[obj.key] = {
                "container": obj.container,
                "key": obj.key,
                "data": obj.data,
            }
        state.role_state = {
            "blobs": blobs,
            "grants": {txn: sorted(names) for txn, names in party.grants.items()},
            "acked": sorted(list(pair) for pair in party._download_acked),
        }
    elif role == "ttp":
        pending = {}
        for txn, entry in party._pending.items():
            pending[txn] = {
                "requester": entry.requester,
                "counterparty": entry.counterparty,
                "report": entry.report,
                "data_hash": entry.data_hash,
            }
        state.role_state = {"pending": pending}
    return state


def apply_state(party: "TpnrParty", state: PartyState) -> None:
    """Overwrite a (wiped) party's protocol state from *state*.

    Timers and retransmission loops are NOT re-armed here — that is
    :func:`repro.durability.recovery.recover`'s resume step, which
    needs to make escalation decisions this layer must not.
    """
    party.transactions = {
        txn: txn_from_dict(fields) for txn, fields in state.transactions.items()
    }
    party._peers = {
        name: PeerState(
            next_send_seq=p["send"],
            highest_recv_seq=p["recv"],
            seen_nonces=set(p["nonces"]),
        )
        for name, p in state.peers.items()
    }
    duplicates = party.evidence_store.duplicates_suppressed
    store = EvidenceStore(party.name)
    store.duplicates_suppressed = duplicates
    for ev_dict in state.evidence:
        store.add(evidence_from_dict(ev_dict))
    party.evidence_store = store
    if state.role == "client":
        _apply_client(party, state)
    elif state.role == "provider":
        _apply_provider(party, state)
    elif state.role == "ttp":
        # Pending resolves are re-opened (fresh query + timers) by the
        # recovery driver; here the slate is just cleaned.
        party._pending = {}


def _apply_client(party: "TpnrClient", state: PartyState) -> None:
    party.uploads = {}
    for txn, h in state.role_state.get("uploads", {}).items():
        party.uploads[txn] = UploadHandle(
            transaction_id=txn,
            provider=h["provider"],
            data_hash=h["data_hash"],
            data_size=h["data_size"],
            auto_resolve=h["auto_resolve"],
            data=h["data"],
            aborting=h["aborting"],
        )
    party.downloads = {}
    for txn, d in state.role_state.get("downloads", {}).items():
        party.downloads[txn] = DownloadResult(
            transaction_id=txn,
            data=d["data"],
            verified=d["verified"],
            tampering_detected=d["tampering"],
            detail=d["detail"],
            evidence_flags=list(d["flags"]),
        )


def _apply_provider(party: "TpnrParty", state: PartyState) -> None:
    party.store = BlobStore(f"{party.name}/store")
    for blob in state.role_state.get("blobs", {}).values():
        party.store.put(
            blob["container"], blob["key"], blob["data"], at_time=party.now
        )
    party.grants = {
        txn: set(names) for txn, names in state.role_state.get("grants", {}).items()
    }
    party._download_acked = {
        tuple(pair) for pair in state.role_state.get("acked", [])
    }
