"""Throughput measurement: engine sweeps versus the sequential baseline.

Two ways of pushing N transactions through the protocol are compared
in the same process:

* **baseline** — the repo's status quo before this engine existed: a
  fresh :func:`~repro.core.protocol.make_deployment` and one
  :func:`~repro.core.protocol.run_session` per transaction, no crypto
  caches.  Every transaction pays key generation for four parties plus
  every signature and KEM operation from scratch.
* **engine** — one :class:`~repro.engine.pool.SessionPool` world per
  sweep point, tenants' keys amortized through a shared
  :class:`~repro.engine.pool.TenantDirectory` (warmed outside the
  timed region), and the :mod:`repro.crypto.cache` bundle active on
  the hot path.

Transactions/sec is **wall-clock** (real CPU cost of the simulation
process — the quantity the caches improve); latency percentiles are
**simulated** seconds from the engine's obs histograms (deterministic
per seed).  The two are reported side by side and never mixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from ..core.protocol import DEFAULT_KEY_BITS, make_deployment, run_session
from .pool import EngineConfig, PoolResult, SessionPool, TenantDirectory
from .sharding import ShardedSessionPool

__all__ = [
    "ThroughputSample",
    "BaselineSample",
    "ThroughputReport",
    "ShardedSample",
    "ShardedReport",
    "run_pool",
    "run_baseline",
    "run_throughput",
    "run_sharded_throughput",
]


@dataclass(frozen=True)
class ThroughputSample:
    """One engine sweep point, flattened for tables and JSON."""

    tenants: int
    transactions: int
    completed: int
    verified: int
    wall_seconds: float
    tx_per_sec: float
    p50_latency: float
    p99_latency: float
    verify_cache_hit_rate: float
    verify_cache_hits: int
    kem_wrap_hit_rate: float
    signature: str

    def row(self) -> list:
        return [
            self.tenants,
            self.transactions,
            self.completed,
            self.verified,
            f"{self.wall_seconds:.3f}",
            f"{self.tx_per_sec:.1f}",
            f"{self.p50_latency:.4f}",
            f"{self.p99_latency:.4f}",
            f"{self.verify_cache_hit_rate:.3f}",
            f"{self.kem_wrap_hit_rate:.3f}",
        ]


@dataclass(frozen=True)
class BaselineSample:
    """The uncached sequential status quo over the same channel."""

    transactions: int
    completed: int
    wall_seconds: float
    tx_per_sec: float


@dataclass
class ThroughputReport:
    """A full sweep plus the baseline measured in the same run."""

    samples: list[ThroughputSample]
    baseline: BaselineSample
    seed: str

    def sample_at(self, tenants: int) -> ThroughputSample:
        for sample in self.samples:
            if sample.tenants == tenants:
                return sample
        raise KeyError(f"no sweep point at {tenants} tenants")

    def speedup_at(self, tenants: int) -> float:
        """Engine tx/sec over baseline tx/sec at one sweep point."""
        if self.baseline.tx_per_sec <= 0:
            return 0.0
        return self.sample_at(tenants).tx_per_sec / self.baseline.tx_per_sec


def _flatten(result: PoolResult) -> ThroughputSample:
    stats = result.cache_stats or {}
    verify = stats.get("verify", {})
    wrap = stats.get("kem_wrap", {})
    return ThroughputSample(
        tenants=result.config.n_tenants,
        transactions=len(result.sessions),
        completed=result.completed,
        verified=result.verified,
        wall_seconds=result.wall_seconds,
        tx_per_sec=result.tx_per_sec,
        p50_latency=result.p50_latency,
        p99_latency=result.p99_latency,
        verify_cache_hit_rate=float(verify.get("hit_rate", 0.0)),
        verify_cache_hits=int(verify.get("hits", 0)),
        kem_wrap_hit_rate=float(wrap.get("hit_rate", 0.0)),
        signature=result.signature(),
    )


def run_pool(
    seed: bytes | str,
    n_tenants: int,
    directory: TenantDirectory | None = None,
    use_caches: bool = True,
    transactions_per_tenant: int = 1,
    observe: bool = True,
    shards: int = 1,
    batch_size: int | None = None,
    key_bits: int = DEFAULT_KEY_BITS,
    profile: bool = False,
) -> PoolResult:
    """One engine run at one tenant count; the low-level entry point.

    ``shards > 1`` routes through :class:`ShardedSessionPool` (merged
    result, signature-identical to ``shards=1``); *batch_size* switches
    on Merkle-batched evidence; *profile* attaches a
    :class:`~repro.obs.profiler.RegionProfiler` per shard and merges
    them exactly into ``result.profile``.
    """
    config = EngineConfig(
        n_tenants=n_tenants,
        transactions_per_tenant=transactions_per_tenant,
        use_caches=use_caches,
        observe=observe,
        batch_size=batch_size,
        key_bits=key_bits,
        profile=profile,
    )
    if shards > 1:
        return ShardedSessionPool(
            config, seed=seed, shards=shards, directory=directory
        ).run()
    return SessionPool(config, seed=seed, directory=directory).run()


@dataclass(frozen=True)
class ShardedSample:
    """One sharded sweep point (fixed tenants, varying shard count)."""

    shards: int
    batch_size: int
    tenants: int
    transactions: int
    completed: int
    verified: int
    wall_seconds: float
    tx_per_sec: float
    p50_latency: float
    p99_latency: float
    batches_sealed: int
    signature: str

    def row(self) -> list:
        return [
            self.shards,
            self.batch_size,
            self.tenants,
            self.completed,
            f"{self.wall_seconds:.3f}",
            f"{self.tx_per_sec:.1f}",
            f"{self.p50_latency:.4f}",
            f"{self.p99_latency:.4f}",
            self.batches_sealed,
            self.signature[:16],
        ]


@dataclass
class ShardedReport:
    """A shard-count sweep plus the classic (unbatched, unsharded)
    point measured at the same tenant count in the same run."""

    samples: list[ShardedSample]
    classic: ThroughputSample
    seed: str

    @property
    def signatures_identical(self) -> bool:
        """Bit-identical merged signature at every shard count."""
        return len({s.signature for s in self.samples}) == 1

    def sample_at(self, shards: int) -> ShardedSample:
        for sample in self.samples:
            if sample.shards == shards:
                return sample
        raise KeyError(f"no sweep point at {shards} shards")

    def speedup_at(self, shards: int) -> float:
        """Batched+sharded tx/sec over the classic engine's tx/sec."""
        if self.classic.tx_per_sec <= 0:
            return 0.0
        return self.sample_at(shards).tx_per_sec / self.classic.tx_per_sec


def _flatten_sharded(result: PoolResult, shards: int) -> ShardedSample:
    batch = result.batch_stats or {}
    return ShardedSample(
        shards=shards,
        batch_size=result.config.batch_size or 0,
        tenants=result.config.n_tenants,
        transactions=len(result.sessions),
        completed=result.completed,
        verified=result.verified,
        wall_seconds=result.wall_seconds,
        tx_per_sec=result.tx_per_sec,
        p50_latency=result.p50_latency,
        p99_latency=result.p99_latency,
        batches_sealed=int(batch.get("batches", 0)),
        signature=result.signature(),
    )


def run_sharded_throughput(
    seed: bytes | str = b"tpnr-throughput",
    n_tenants: int = 100,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    batch_size: int = 64,
    transactions_per_tenant: int = 1,
    key_bits: int = DEFAULT_KEY_BITS,
    warm_directory: bool = True,
) -> ShardedReport:
    """Sweep shard counts at one tenant count, batched evidence on.

    Every point reuses one warmed :class:`TenantDirectory` (keygen is
    provisioning, not throughput), and the classic engine — per-message
    signatures, one shard — is measured in the same run as the
    comparison point the speedup claims are made against.
    """
    directory = TenantDirectory(seed, key_bits=key_bits)
    if warm_directory:
        directory.warm(["bob", "ttp", *[f"tenant-{i:04d}" for i in range(n_tenants)]])
    classic = _flatten(run_pool(
        seed, n_tenants, directory=directory,
        transactions_per_tenant=transactions_per_tenant, key_bits=key_bits,
    ))
    samples = []
    for shards in shard_counts:
        result = run_pool(
            seed, n_tenants, directory=directory,
            transactions_per_tenant=transactions_per_tenant,
            shards=shards, batch_size=batch_size, key_bits=key_bits,
        )
        samples.append(_flatten_sharded(result, shards))
    seed_text = seed.decode("utf-8", "replace") if isinstance(seed, bytes) else str(seed)
    return ShardedReport(samples=samples, classic=classic, seed=seed_text)


def run_baseline(seed: bytes | str, n_transactions: int, payload_size: int = 256) -> BaselineSample:
    """The pre-engine status quo: one fresh world per transaction."""
    seed_bytes = seed.encode("utf-8") if isinstance(seed, str) else bytes(seed)
    completed = 0
    started = perf_counter()
    for index in range(n_transactions):
        dep = make_deployment(seed=seed_bytes + b"/baseline/%d" % index)
        outcome = run_session(dep, bytes(payload_size))
        if outcome.upload_status.value in ("completed", "resolved"):
            completed += 1
    wall = perf_counter() - started
    return BaselineSample(
        transactions=n_transactions,
        completed=completed,
        wall_seconds=wall,
        tx_per_sec=completed / wall if wall > 0 else 0.0,
    )


def run_throughput(
    seed: bytes | str = b"tpnr-throughput",
    tenant_counts: tuple[int, ...] = (1, 10, 100),
    baseline_transactions: int = 10,
    warm_directory: bool = True,
) -> ThroughputReport:
    """Sweep tenant counts and measure the baseline in the same run.

    One :class:`TenantDirectory` is shared across sweep points; with
    *warm_directory* the largest point's identities are generated up
    front, outside every timed region — key generation is a one-time
    provisioning cost, not a per-transaction one, and amortizing it is
    exactly the multi-tenant claim under test.  The baseline gets no
    such amortization because the status quo had none.
    """
    directory = TenantDirectory(seed)
    if warm_directory:
        biggest = max(tenant_counts)
        directory.warm(["bob", "ttp", *[f"tenant-{i:04d}" for i in range(biggest)]])
    samples = [
        _flatten(run_pool(seed, n, directory=directory))
        for n in tenant_counts
    ]
    baseline = run_baseline(seed, baseline_transactions)
    seed_text = seed.decode("utf-8", "replace") if isinstance(seed, bytes) else str(seed)
    return ThroughputReport(samples=samples, baseline=baseline, seed=seed_text)
