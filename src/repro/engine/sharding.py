"""Sharded session engine: partition tenants, run shards, merge.

The unsharded :class:`~repro.engine.pool.SessionPool` steps every
session on one sequential simulator loop; this module splits the
tenant population into N worker shards — each a complete pool world
(own :class:`~repro.net.events.Simulator`, network, provider, TTP)
over its slice of the roster — and reconstructs the global
:class:`~repro.engine.pool.PoolResult` from the per-shard results.

**Shard assignment is deterministic and seed-keyed**: tenant ``t``
lands on ``HMAC-SHA256(seed, domain || t) mod N`` — the PT-002 seed
scheme's construction (keyed HMAC over a domain-prefixed label)
applied to placement, so the same ``(seed, tenant)`` maps to the same
shard on every machine and the assignment redistributes statistically
uniformly when N changes.

**Why the merge is exact** (``signature()`` bit-identical across shard
counts — proven in ``tests/engine/test_sharding.py``): tenants never
interact with each other, only with the provider/TTP, and

* every tenant stream is a *named* DRBG keyed by the global tenant
  name and index, never a fork — so tenant 7's payloads, arrival
  offsets, and transaction IDs are the same in any layout;
* per-peer sequence numbers live on the (client, provider) pair, and
  the provider's per-tenant state is independent across tenants, so
  each session transcript is layout-invariant;
* wire sizes are layout-invariant (RSA/KEM blobs are modulus-sized,
  batched-evidence blobs are the fixed 32-byte leaf), so per-shard
  ``bytes_on_wire`` sums to the global number;
* the drive loop advances the clock on the ``sample_interval`` grid,
  so a shard's ``sim_duration`` is a pure function of its last event
  time — the max over shards equals the global run's duration;
* provider/TTP tallies are sums of per-event counters, so key-wise
  addition reconstructs them.

Latency quantiles are the one *approximate* surface: the merged result
reads them from the exact integer merge of the per-shard
``engine.session_latency`` sketches (shard-merge == global-build is an
identity on the sketch, see :mod:`repro.obs.sketch`), but they are
telemetry, excluded from ``signature()``.

Shards run as sequential loop-based workers in one process: the
workload is pure-Python compute (GIL-bound), so process fan-out would
pay serialization for no wall-clock win — the throughput gain comes
from batched evidence amortizing RSA, not from parallelism.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter

from ..core.policy import DEFAULT_POLICY, TpnrPolicy
from ..core.provider import HONEST, ProviderBehavior
from ..crypto.hmac_ import hmac_digest
from ..net.channel import PERFECT, ChannelSpec
from ..obs import NULL_OBS
from ..obs.profiler import RegionProfiler
from ..obs.sketch import QuantileSketch
from .pool import EngineConfig, PoolResult, SessionPool, TenantDirectory, _seed_bytes

__all__ = [
    "SHARD_DOMAIN",
    "ShardedSessionPool",
    "merge_pool_results",
    "shard_of",
    "shard_plan",
]

#: Domain prefix for shard placement, mirroring the PT-002 seed-scheme
#: convention (`repro.scenarios.seed/v1|` there, shard placement here).
SHARD_DOMAIN = b"repro.engine.shard/v1|"


def shard_of(seed: bytes | str, tenant: str, shards: int) -> int:
    """The shard index for *tenant* under *seed*: HMAC mod N."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    mac = hmac_digest(_seed_bytes(seed), SHARD_DOMAIN + tenant.encode("utf-8"))
    return int.from_bytes(mac, "big") % shards


def shard_plan(
    seed: bytes | str, n_tenants: int, shards: int
) -> list[tuple[tuple[int, str], ...]]:
    """Partition the global roster into per-shard rosters.

    Every entry keeps its **global** index — transaction IDs and named
    streams key off it, which is what makes shard worlds reproduce the
    unsharded world's rows exactly.  Shards may be empty (they are
    simply skipped at run time).
    """
    rosters: list[list[tuple[int, str]]] = [[] for _ in range(shards)]
    for index in range(n_tenants):
        name = f"tenant-{index:04d}"
        rosters[shard_of(seed, name, shards)].append((index, name))
    return [tuple(r) for r in rosters]


def merge_pool_results(
    config: EngineConfig, shard_results: list[tuple[int, PoolResult]]
) -> PoolResult:
    """Reconstruct the global :class:`PoolResult` from shard results."""
    sessions = []
    messages_sent = bytes_on_wire = 0
    sim_duration = 0.0
    build_seconds = drive_seconds = 0.0
    provider_stats: dict[str, int] = {}
    ttp_stats: dict[str, int] = {}
    alerts: list = []
    sketches: list[QuantileSketch] = []
    cache_totals: dict[str, dict[str, float]] | None = None
    batch_totals: dict[str, int] | None = None
    profiles: list[RegionProfiler] = []
    summaries = []
    for shard_index, result in shard_results:
        sessions.extend(result.sessions)
        messages_sent += result.messages_sent
        bytes_on_wire += result.bytes_on_wire
        sim_duration = max(sim_duration, result.sim_duration)
        build_seconds += result.build_seconds
        drive_seconds += result.drive_seconds
        for key, value in result.provider_stats.items():
            provider_stats[key] = provider_stats.get(key, 0) + value
        for key, value in result.ttp_stats.items():
            ttp_stats[key] = ttp_stats.get(key, 0) + value
        alerts.extend(result.alerts)
        if result.obs.enabled:
            sketches.append(result.obs.metrics.sketch("engine.session_latency"))
        if result.cache_stats is not None:
            if cache_totals is None:
                cache_totals = {}
            for cache_name, stats in result.cache_stats.items():
                bucket = cache_totals.setdefault(
                    cache_name, {"size": 0, "capacity": 0, "hits": 0,
                                 "misses": 0, "evictions": 0})
                for key in ("size", "capacity", "hits", "misses", "evictions"):
                    bucket[key] += stats.get(key, 0)
        if result.batch_stats is not None:
            if batch_totals is None:
                batch_totals = {"batches": 0, "leaves": 0, "resolved": 0, "failed": 0}
            for key in batch_totals:
                batch_totals[key] += result.batch_stats.get(key, 0)
        if result.profile is not None:
            profiles.append(result.profile)
        summaries.append({
            "shard": shard_index,
            "tenants": result.config.n_tenants,
            "sessions": len(result.sessions),
            "completed": result.completed,
            "messages_sent": result.messages_sent,
            "sim_duration": result.sim_duration,
            # Per-shard wall-clock accounting: drive AND build, so
            # utilization/imbalance (skew ratio, idle fraction) is
            # computable from the merged result without re-running.
            "drive_seconds": result.drive_seconds,
            "build_seconds": result.build_seconds,
        })
    if cache_totals is not None:
        for bucket in cache_totals.values():
            asked = bucket["hits"] + bucket["misses"]
            bucket["hit_rate"] = round(bucket["hits"] / asked, 6) if asked else 0.0
    if sketches:
        merged = QuantileSketch.merged("engine.session_latency", sketches)
        p50, p99 = merged.quantile(0.50), merged.quantile(0.99)
    else:
        p50 = p99 = 0.0
    return PoolResult(
        config=config,
        sessions=sorted(sessions, key=lambda s: s.transaction_id),
        sim_duration=sim_duration,
        build_seconds=build_seconds,
        drive_seconds=drive_seconds,
        messages_sent=messages_sent,
        bytes_on_wire=bytes_on_wire,
        provider_stats=provider_stats,
        ttp_stats=ttp_stats,
        p50_latency=p50,
        p99_latency=p99,
        cache_stats=cache_totals,
        obs=NULL_OBS,
        alerts=alerts,
        slo=None,
        batch_stats=batch_totals,
        shard_summaries=summaries,
        # The exact fold of the per-shard profilers: counts/totals sum,
        # sketches merge bucket-wise, invariance ANDs — so the merged
        # profile's invariant regions are byte-identical to the
        # unsharded run's (tests/obs/test_profiler.py proves it).
        profile=RegionProfiler.merged(profiles) if profiles else None,
    )


class ShardedSessionPool:
    """Drive one pool workload as N loop-based shard workers.

    Same constructor surface as :class:`SessionPool` plus *shards*;
    ``run()`` returns a merged :class:`PoolResult` whose
    ``signature()`` is bit-identical to the unsharded pool's for the
    same ``(config, seed)`` — at any shard count.
    """

    def __init__(
        self,
        config: EngineConfig,
        seed: bytes | str = b"tpnr-engine",
        shards: int = 1,
        directory: TenantDirectory | None = None,
        channel: ChannelSpec = PERFECT,
        policy: TpnrPolicy = DEFAULT_POLICY,
        behavior: ProviderBehavior = HONEST,
        provider_name: str = "bob",
        ttp_name: str = "ttp",
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.config = config
        self.seed = seed
        self.shards = shards
        # One shared directory: keygen is paid once across all shards
        # (its lock makes the sharing safe), and every shard sees the
        # same keys for the provider/TTP names it re-instantiates.
        if directory is None:
            directory = TenantDirectory(seed, key_bits=config.key_bits)
        self.directory = directory
        self.channel = channel
        self.policy = policy
        self.behavior = behavior
        self.provider_name = provider_name
        self.ttp_name = ttp_name
        self.plan = shard_plan(seed, config.n_tenants, shards)
        self.shard_results: list[tuple[int, PoolResult]] = []

    def run(self) -> PoolResult:
        """Run every (non-empty) shard and merge."""
        merge_started = perf_counter()
        self.shard_results = []
        for shard_index, roster in enumerate(self.plan):
            if not roster:
                continue
            pool = SessionPool(
                replace(self.config, n_tenants=len(roster)),
                seed=self.seed,
                directory=self.directory,
                channel=self.channel,
                policy=self.policy,
                behavior=self.behavior,
                provider_name=self.provider_name,
                ttp_name=self.ttp_name,
                roster=roster,
            )
            self.shard_results.append((shard_index, pool.run()))
        merged = merge_pool_results(self.config, self.shard_results)
        # The per-shard build/drive stopwatches already sum into the
        # merged result; the merge step itself is accounted to build
        # (it is setup/teardown, not protocol driving).
        merge_overhead = (
            perf_counter() - merge_started
            - sum(r.build_seconds + r.drive_seconds for _, r in self.shard_results)
        )
        merged.build_seconds += merge_overhead
        if merged.profile is not None:
            # The merge step exists only in sharded runs, so it can
            # never be part of the shard-invariant artifact surface.
            merged.profile.record_leaf(
                "engine/merge", max(0.0, merge_overhead), invariant=False)
        return merged
