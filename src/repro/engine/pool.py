"""Multi-tenant TPNR session pool.

One :class:`SessionPool` drives N concurrent Normal-mode sessions —
one client per tenant, all against one provider, one TTP, one
:class:`~repro.net.network.Network` and one
:class:`~repro.net.events.Simulator`.  This is the paper's open
performance question (§6) made concrete: what does the protocol cost
when a provider serves heavy traffic rather than one Alice at a time?

Determinism under any interleaving is the design constraint.  Every
random stream is a *named* :class:`~repro.crypto.drbg.HmacDrbg`
(Proteus-style: ``HmacDrbg(seed, personalization=...)``), never a
``fork()`` off a shared parent — forking mutates the parent, so the
stream a tenant received would depend on construction order.  With
named streams, tenant 7's nonces are the same whether 10 or 1000
tenants run beside it, and two same-seed runs are byte-identical
(:meth:`PoolResult.signature` is the proof handle; ``tests/engine``
asserts it).

Transaction IDs are likewise explicit (``TXN-E{tenant}-{k}``) instead
of the process-global counter, so a pool's IDs do not depend on how
many transactions ran earlier in the process.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field as dataclass_field
from time import perf_counter

from ..core.client import DownloadResult, TpnrClient
from ..core.policy import DEFAULT_POLICY, TpnrPolicy
from ..core.protocol import DEFAULT_KEY_BITS
from ..core.provider import HONEST, ProviderBehavior, TpnrProvider
from ..core.transaction import TransactionRecord, TxStatus
from ..core.ttp import TrustedThirdParty
from ..crypto import cache as crypto_cache
from ..crypto.batch import BatchLedger, EvidenceBatcher
from ..crypto.drbg import HmacDrbg
from ..crypto.pki import CertificateAuthority, Identity, KeyRegistry
from ..determinism import canon_float
from ..errors import EvidenceError
from ..net.channel import PERFECT, ChannelSpec
from ..net.events import Simulator
from ..net.network import Network
from ..obs import NULL_OBS, Observability
from ..obs.profiler import NULL_PROFILER, RegionProfiler
from ..obs.anomaly import (
    AnomalyMonitor,
    BurnRateDetector,
    QuantileThresholdDetector,
    RateShiftDetector,
)
from ..obs.slo import SLOManager, standard_engine_slos

__all__ = [
    "EngineConfig",
    "TenantDirectory",
    "SessionRecord",
    "PoolResult",
    "SessionPool",
    "attach_engine_detectors",
]


def attach_engine_detectors(
    monitor: AnomalyMonitor, metrics, retransmit_reader
) -> AnomalyMonitor:
    """Subscribe the standard pool detectors to the engine metrics.

    One poll window is one ``sample_interval`` slice of the driving
    loop: retransmission storms, tail-latency blowups, and session SLO
    burn all fire while the pool is still running — the live complement
    to the post-mortem forensics layer.
    """
    latency = metrics.histogram("engine.session_latency_seconds")
    sessions_ok = metrics.counter("engine.sessions_finished", outcome="ok")
    sessions_bad = metrics.counter("engine.sessions_finished", outcome="failed")
    monitor.add(RateShiftDetector(
        "retransmit-rate", retransmit_reader,
        subject="engine.retransmits",
        window=10, factor=4.0, min_events=4,
    ))
    monitor.add(QuantileThresholdDetector(
        "latency-p99", lambda: latency,
        subject="engine.session_latency_seconds",
        q=0.99, threshold=5.0, window=10, min_count=5,
    ))
    monitor.add(BurnRateDetector(
        "session-slo",
        lambda: sessions_ok.value, lambda: sessions_bad.value,
        subject="engine.sessions_finished",
        slo=0.95, threshold=2.0, window=10, min_events=5,
    ))
    return monitor


def _seed_bytes(seed: bytes | str) -> bytes:
    return seed.encode("utf-8") if isinstance(seed, str) else bytes(seed)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one pool run."""

    n_tenants: int = 10
    transactions_per_tenant: int = 1
    payload_min: int = 64
    payload_max: int = 512
    arrival_window: float = 5.0  # uploads start uniformly inside this (sim s)
    with_download: bool = True
    key_bits: int = DEFAULT_KEY_BITS
    use_caches: bool = True
    observe: bool = True
    sample_interval: float = 0.5  # in-flight gauge sampling period (sim s)
    anomaly: bool = True  # poll anomaly detectors per sample (observe only)
    slo: bool = True  # evaluate the standard engine SLOs (observe only)
    # Merkle-batched evidence: one RSA signature per batch of this many
    # evidence leaves (None = classic per-message signatures).  Batch
    # layout never reaches the wire accounting (the blob is the fixed
    # 32-byte leaf), so signature() is invariant in batch_size.
    batch_size: int | None = None
    # Region profiling: build/schedule/drive/settle regions + crypto
    # leaves land in PoolResult.profile (telemetry only — the profile
    # never reaches signature()).  Requires observe.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        if self.transactions_per_tenant < 1:
            raise ValueError("transactions_per_tenant must be >= 1")
        if not 0 < self.payload_min <= self.payload_max:
            raise ValueError("need 0 < payload_min <= payload_max")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1 (or None for per-message)")
        if self.profile and not self.observe:
            raise ValueError("profile=True requires observe=True")


class TenantDirectory:
    """Memoised identities for pool worlds.

    Key generation dominates world-building cost, so the directory
    caches every :class:`Identity` (tenants, provider, TTP, CA) and a
    sweep reuses them across points — the 100-tenant point pays keygen
    only for the 90 tenants the 10-tenant point did not create.  Each
    identity derives from its own named DRBG stream, so the keys a name
    gets are independent of creation order and of which other names
    exist.

    Safe under concurrent/shard use: memoization is guarded by an
    RLock, so a directory shared across engine shards generates each
    identity exactly once (``keygen_count`` is the proof handle — a
    double-warm or a cross-shard race can only read the cache, never
    regenerate).  Because streams are *named*, two shards asking for
    the same label get equal, independent streams — a label collision
    across shards yields the same keys, not corrupted ones.

    ``len(directory)`` counts only **materialized** identities (the CA
    is not an identity and never counts); a directory object itself is
    always truthy — an empty-but-live directory must still be honored,
    which is why consumers check ``is None``, never falsiness.
    """

    def __init__(self, seed: bytes | str = b"tpnr-engine", key_bits: int = DEFAULT_KEY_BITS) -> None:
        self._seed = _seed_bytes(seed)
        self.key_bits = key_bits
        self._identities: dict[str, Identity] = {}
        self._ca: CertificateAuthority | None = None
        self._lock = threading.RLock()
        self.keygen_count = 0

    def stream(self, label: str) -> HmacDrbg:
        """A named DRBG stream under this directory's seed.

        Stateless with respect to the directory (a fresh DRBG each
        call), hence safe to call from any shard without the lock.
        """
        return HmacDrbg(self._seed, personalization=label.encode("utf-8"))

    def identity(self, name: str) -> Identity:
        with self._lock:
            found = self._identities.get(name)
            if found is None:
                found = Identity.generate(
                    name, self.stream(f"engine/identity/{name}"), bits=self.key_bits
                )
                self._identities[name] = found
                self.keygen_count += 1
            return found

    def certificate_authority(self) -> CertificateAuthority:
        with self._lock:
            if self._ca is None:
                self._ca = CertificateAuthority(
                    "repro-ca", self.stream("engine/ca"), bits=self.key_bits
                )
            return self._ca

    def warm(self, names: list[str]) -> None:
        """Pre-generate identities outside any timed region."""
        for name in names:
            self.identity(name)

    def __len__(self) -> int:
        """Materialized identities only (the CA does not count)."""
        return len(self._identities)

    def __bool__(self) -> bool:
        """Always truthy: emptiness is not absence (see class docs)."""
        return True


@dataclass
class SessionRecord:
    """One tenant transaction's lifecycle, in simulated time."""

    tenant: str
    transaction_id: str
    payload_size: int
    started_at: float
    upload_done_at: float | None = None
    download_done_at: float | None = None
    upload_status: str = "pending"
    download_verified: bool = False
    download_detail: str = ""
    finished: bool = False

    @property
    def latency(self) -> float | None:
        """Sim seconds from upload start to session end, if finished."""
        end = self.download_done_at if self.download_done_at is not None else self.upload_done_at
        return None if end is None else end - self.started_at

    def row(self) -> tuple:
        """Canonical deterministic projection for signatures.

        Every float goes through :func:`repro.determinism.canon_float`
        — the one normalization point for hashed floats, so a row built
        on shard 3 of 8 hashes identically to the same row built
        unsharded.
        """
        return (
            self.tenant,
            self.transaction_id,
            self.payload_size,
            canon_float(self.started_at),
            None if self.upload_done_at is None else canon_float(self.upload_done_at),
            None if self.download_done_at is None else canon_float(self.download_done_at),
            self.upload_status,
            self.download_verified,
            self.download_detail,
        )


@dataclass
class PoolResult:
    """Everything one pool run produced.

    :meth:`signature` hashes only the deterministic simulation outputs
    (session rows, wire accounting, party tallies) — wall-clock timings
    and cache statistics are deliberately excluded, so the signature
    must be byte-identical across same-seed runs *and* across runs with
    the crypto caches on or off (the caches change CPU time, never
    simulated behavior).
    """

    config: EngineConfig
    sessions: list[SessionRecord]
    sim_duration: float
    build_seconds: float
    drive_seconds: float
    messages_sent: int
    bytes_on_wire: int
    provider_stats: dict[str, int]
    ttp_stats: dict[str, int]
    p50_latency: float
    p99_latency: float
    cache_stats: dict[str, dict[str, float]] | None = None
    obs: Observability = NULL_OBS
    # Anomaly alerts from the sampling loop; telemetry only, excluded
    # from signature() like the wall-clock timings.
    alerts: list = dataclass_field(default_factory=list)
    # End-of-run SLOReport (config.slo); telemetry only, excluded from
    # signature() like alerts.
    slo: object | None = None
    # Batched-evidence telemetry ({"batches": n, "leaves": n,
    # "resolved": n, "failed": n}); excluded from signature() — batch
    # layout is a crypto-amortization choice, not simulated behavior.
    batch_stats: dict | None = None
    # Per-shard summaries when this result was merged from a sharded
    # run ([{"shard": i, "tenants": n, "sessions": n, ...}]); empty for
    # an unsharded run.  Telemetry only, excluded from signature().
    shard_summaries: list = dataclass_field(default_factory=list)
    # The run's RegionProfiler (config.profile); telemetry only,
    # excluded from signature() like obs/cache_stats — profiles carry
    # wall-clock data and shard-dependent harness regions.
    profile: object | None = None

    @property
    def completed(self) -> int:
        return sum(1 for s in self.sessions if s.upload_status in ("completed", "resolved"))

    @property
    def verified(self) -> int:
        return sum(1 for s in self.sessions if s.download_verified)

    @property
    def failed(self) -> int:
        return len(self.sessions) - self.completed

    @property
    def wall_seconds(self) -> float:
        return self.build_seconds + self.drive_seconds

    @property
    def tx_per_sec(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def signature(self) -> str:
        h = hashlib.sha256()
        for session in sorted(self.sessions, key=lambda s: s.transaction_id):
            h.update(repr(session.row()).encode("utf-8"))
            h.update(b"\n")
        h.update(repr((
            self.messages_sent,
            self.bytes_on_wire,
            canon_float(self.sim_duration),
            sorted(self.provider_stats.items()),
            sorted(self.ttp_stats.items()),
        )).encode("utf-8"))
        return h.hexdigest()


class SessionPool:
    """Build one multi-tenant world, drive it to quiescence, report.

    Usage::

        pool = SessionPool(EngineConfig(n_tenants=100), seed=b"tp1")
        result = pool.run()
    """

    def __init__(
        self,
        config: EngineConfig,
        seed: bytes | str = b"tpnr-engine",
        directory: TenantDirectory | None = None,
        channel: ChannelSpec = PERFECT,
        policy: TpnrPolicy = DEFAULT_POLICY,
        behavior: ProviderBehavior = HONEST,
        provider_name: str = "bob",
        ttp_name: str = "ttp",
        roster: "tuple[tuple[int, str], ...] | None" = None,
    ) -> None:
        self.config = config
        self._seed = _seed_bytes(seed)
        # `is None`, not `or`: consumers must never rely on directory
        # truthiness (an empty directory memoizes as the pool builds).
        if directory is None:
            directory = TenantDirectory(self._seed, key_bits=config.key_bits)
        self.directory = directory
        if self.directory.key_bits != config.key_bits:
            raise ValueError(
                f"directory key_bits {self.directory.key_bits} != config {config.key_bits}"
            )
        self.channel = channel
        self.policy = policy
        self.behavior = behavior
        self.provider_name = provider_name
        self.ttp_name = ttp_name
        # The roster maps each tenant to its GLOBAL index: transaction
        # IDs, workload streams, and party streams all key off it, so a
        # shard pool running tenants (3, 7, 11) of a 16-tenant world
        # produces exactly the rows the unsharded world would.
        if roster is None:
            roster = tuple(
                (i, f"tenant-{i:04d}") for i in range(config.n_tenants)
            )
        if len(roster) != config.n_tenants:
            raise ValueError(
                f"roster has {len(roster)} tenants, config says {config.n_tenants}"
            )
        self.roster = tuple(roster)
        self.tenant_names = [name for _, name in self.roster]
        # Populated by build()/run():
        self.sim: Simulator | None = None
        self.network: Network | None = None
        self.provider: TpnrProvider | None = None
        self.ttp: TrustedThirdParty | None = None
        self.clients: dict[str, TpnrClient] = {}
        self._sessions: dict[str, SessionRecord] = {}
        self._inflight = 0
        self._obs: Observability = NULL_OBS
        self.monitor: AnomalyMonitor | None = None
        self.slos: SLOManager | None = None
        self.ledger: BatchLedger | None = None
        # Region profiler: NULL unless config.profile; _run_inner seats
        # a live one before build() so enrollment crypto is attributed.
        self.profiler: RegionProfiler = NULL_PROFILER
        self._crypto_scope = None  # open observe_crypto() CM while profiling

    # -- world construction --------------------------------------------------

    def _stream(self, label: str) -> HmacDrbg:
        profiler = self.profiler
        if not profiler.enabled:
            return HmacDrbg(self._seed, personalization=label.encode("utf-8"))
        started = perf_counter()
        drbg = HmacDrbg(self._seed, personalization=label.encode("utf-8"))
        profiler.record_leaf("engine/stream", perf_counter() - started)
        return drbg

    def build(self) -> None:
        """Wire the world: PKI, network, provider, TTP, tenant clients."""
        config = self.config
        self.sim = Simulator()
        self.network = Network(self.sim, self._stream("engine/net"), default_channel=self.channel)
        if config.observe:
            sim = self.sim
            self.network.obs = Observability(clock=lambda: sim.now)
        self._obs = self.network.obs
        if self._obs.enabled and self.profiler.enabled:
            # Seat the pool's profiler on the bundle and install the
            # crypto observer *now*, so the enrollment signatures below
            # are already attributed; _run_inner restores the seat.
            self._obs.profiler = self.profiler
            self._crypto_scope = self._obs.observe_crypto()
            self._crypto_scope.__enter__()
        with self.profiler.region("engine/keygen", invariant=False):
            registry = KeyRegistry(self.directory.certificate_authority())
            provider_id = self.directory.identity(self.provider_name)
            ttp_id = self.directory.identity(self.ttp_name)
            tenant_ids = [self.directory.identity(name) for name in self.tenant_names]
        for identity in (provider_id, ttp_id, *tenant_ids):
            registry.enroll(identity)
        self.provider = TpnrProvider(
            provider_id, registry, self._stream("engine/party/provider"),
            ttp_name=self.ttp_name, policy=self.policy, behavior=self.behavior,
        )
        self.ttp = TrustedThirdParty(
            ttp_id, registry, self._stream("engine/party/ttp"), policy=self.policy
        )
        self.network.add_node(self.provider)
        self.network.add_node(self.ttp)
        self.clients = {}
        for identity in tenant_ids:
            client = TpnrClient(
                identity, registry, self._stream(f"engine/party/{identity.name}"),
                ttp_name=self.ttp_name, policy=self.policy,
            )
            client.on_txn_terminal = self._upload_terminal
            client.on_download_complete = self._download_complete
            self.network.add_node(client)
            self.clients[identity.name] = client
        self.ledger = None
        if config.batch_size is not None:
            self.ledger = BatchLedger()
            for party in self._parties():
                party.configure_batching(
                    self.ledger,
                    EvidenceBatcher(party.identity, config.batch_size, self.ledger),
                )
        self.monitor = None
        if config.observe and config.anomaly:
            self.monitor = attach_engine_detectors(
                self._obs.monitor, self._obs.metrics, self._total_retransmits
            )
        self.slos = None
        if config.observe and config.slo:
            sim = self.sim
            self.slos = standard_engine_slos(
                SLOManager(self._obs.metrics, clock=lambda: sim.now))

    def _parties(self):
        assert self.provider is not None and self.ttp is not None
        return (self.provider, self.ttp, *self.clients.values())

    def _settle_batches(self) -> dict | None:
        """End-of-run batched-evidence settlement (fail-closed).

        Seals every party's partial batch, resolves all pending items,
        and raises :class:`~repro.errors.EvidenceError` if anything
        fails — a pool run must never report success while holding
        evidence that cannot be proven.
        """
        if self.ledger is None:
            return None
        for party in self._parties():
            if party.batcher is not None:
                party.batcher.seal()
        resolved = failed = 0
        for party in self._parties():
            got, bad = party.settle_batched_evidence()
            resolved += got
            failed += bad
        if failed:
            losers = [
                (p.name, e.header.transaction_id)
                for p in self._parties() for e in p.batched_failures
            ]
            raise EvidenceError(
                f"{failed} batched evidence item(s) failed settlement: {losers[:8]}"
            )
        return {
            "batches": len(self.ledger.batches),
            "leaves": self.ledger.leaves_published,
            "resolved": resolved,
            "failed": failed,
        }

    def _total_retransmits(self) -> int:
        assert self.provider is not None and self.ttp is not None
        return (
            self.provider.retransmits_sent
            + self.ttp.retransmits_sent
            + sum(c.retransmits_sent for c in self.clients.values())
        )

    def _schedule_workload(self) -> None:
        """Schedule every tenant's uploads inside the arrival window.

        Payload bytes and arrival offsets come from per-tenant named
        streams, so tenant k's workload is identical no matter which
        other tenants exist.
        """
        config = self.config
        assert self.sim is not None
        for index, name in self.roster:
            # Per-tenant work is shard-invariant by construction (named
            # streams + global indices): tenant k's draws are identical
            # whichever shard hosts it, so counts sum exactly.
            with self.profiler.region("engine/workload", invariant=True):
                workload = self._stream(f"engine/workload/{name}")
                for k in range(config.transactions_per_tenant):
                    size = workload.randint(config.payload_min, config.payload_max)
                    payload = workload.generate(size)
                    offset = workload.random() * config.arrival_window
                    transaction_id = f"TXN-E{index:04d}-{k:03d}"
                    self._sessions[transaction_id] = SessionRecord(
                        tenant=name,
                        transaction_id=transaction_id,
                        payload_size=size,
                        started_at=offset,
                    )
                    self.sim.schedule_at(
                        offset,
                        lambda n=name, d=payload, t=transaction_id: self._start_upload(n, d, t),
                    )

    def _start_upload(self, tenant: str, data: bytes, transaction_id: str) -> None:
        self._inflight += 1
        self.clients[tenant].upload(
            self.provider_name, data, transaction_id=transaction_id
        )

    # -- session lifecycle hooks ---------------------------------------------

    def _upload_terminal(self, record: TransactionRecord) -> None:
        session = self._sessions.get(record.transaction_id)
        if session is None or session.finished:
            return
        assert self.sim is not None
        session.upload_status = record.status.value
        session.upload_done_at = self.sim.now
        chain_download = (
            self.config.with_download
            and record.status in (TxStatus.COMPLETED, TxStatus.RESOLVED)
        )
        if chain_download:
            self.clients[session.tenant].download(record.transaction_id)
        else:
            self._finish_session(session)

    def _download_complete(self, result: DownloadResult) -> None:
        session = self._sessions.get(result.transaction_id)
        if session is None or session.finished:
            return
        assert self.sim is not None
        session.download_done_at = self.sim.now
        session.download_verified = result.verified
        session.download_detail = result.detail
        self._finish_session(session)

    def _finish_session(self, session: SessionRecord) -> None:
        session.finished = True
        self._inflight -= 1
        obs = self._obs
        if obs.enabled:
            ok = session.upload_status in ("completed", "resolved")
            obs.metrics.counter(
                "engine.sessions_finished", outcome="ok" if ok else "failed"
            ).inc()
            latency = session.latency
            if latency is not None:
                obs.metrics.histogram("engine.session_latency_seconds").observe(latency)
                # The sketch twin of the latency histogram: mergeable
                # per-shard once the engine shards, and the series the
                # session-latency SLO reads.
                obs.metrics.sketch("engine.session_latency").observe(latency)

    # -- driving -------------------------------------------------------------

    def _drive(self) -> None:
        """Run to quiescence, sampling the in-flight gauge per slice."""
        assert self.sim is not None
        sim = self.sim
        obs = self._obs
        monitor = self.monitor
        while sim.next_event_time() is not None:
            sim.run(until=sim.now + self.config.sample_interval)
            if obs.enabled:
                obs.metrics.gauge("engine.inflight_sessions").set(self._inflight)
                if monitor is not None:
                    monitor.poll(sim.now)
                if self.slos is not None:
                    self.slos.poll(sim.now)

    def run(self) -> PoolResult:
        """Build, schedule, drive, and summarize one pool run.

        With ``config.use_caches`` a fresh scoped
        :class:`~repro.crypto.cache.CryptoCaches` bundle covers the
        whole run (build included — enrollment signatures hit the sign
        cache too) and its statistics land in the result; the previous
        process-wide cache seat is restored afterwards either way.
        """
        if self.config.use_caches:
            with crypto_cache.crypto_caches() as bundle:
                return self._run_inner(bundle)
        return self._run_inner(None)

    def _run_inner(self, bundle) -> PoolResult:
        config = self.config
        profiler: RegionProfiler = NULL_PROFILER
        if config.observe and config.profile:
            # The sim clock closure reads self.sim *lazily*: the
            # Simulator only exists once build() runs inside the first
            # region, and pre-build region time is sim-zero anyway.
            profiler = RegionProfiler(
                clock=lambda: self.sim.now if self.sim is not None else 0.0)
        self.profiler = profiler
        try:
            build_started = perf_counter()
            # Harness regions are never shard-invariant (one entry per
            # shard world).  build/settle poison their leaf scope too:
            # enrollment signatures repeat per shard world and batch
            # flushes depend on the shard layout.  drive's leaves stay
            # invariant only while evidence is per-message — with
            # batching on, auto-seals inside the drive make the inner
            # merkle/rsa counts layout-dependent.
            drive_scope = config.batch_size is None
            with profiler.region("engine/build", invariant=False, scope=False):
                self.build()
            with profiler.region("engine/schedule", invariant=False, scope=True):
                self._schedule_workload()
            build_seconds = perf_counter() - build_started
            drive_started = perf_counter()
            with profiler.region("engine/drive", invariant=False, scope=drive_scope):
                self._drive()
            with profiler.region("engine/settle", invariant=False, scope=False):
                batch_stats = self._settle_batches()
            drive_seconds = perf_counter() - drive_started
        finally:
            if self._crypto_scope is not None:
                self._crypto_scope.__exit__(None, None, None)
                self._crypto_scope = None
        assert self.sim is not None and self.network is not None
        assert self.provider is not None and self.ttp is not None
        sends = self.network.trace.sends("tpnr.")
        obs = self._obs
        if obs.enabled:
            latency_hist = obs.metrics.histogram("engine.session_latency_seconds")
            p50, p99 = latency_hist.quantile(0.50), latency_hist.quantile(0.99)
        else:
            p50 = p99 = 0.0
        return PoolResult(
            config=self.config,
            sessions=sorted(self._sessions.values(), key=lambda s: s.transaction_id),
            sim_duration=self.sim.now,
            build_seconds=build_seconds,
            drive_seconds=drive_seconds,
            messages_sent=len(sends),
            bytes_on_wire=sum(e.size_bytes for e in sends),
            provider_stats=self.provider.stats(),
            ttp_stats=self.ttp.stats(),
            p50_latency=p50,
            p99_latency=p99,
            cache_stats=bundle.stats() if bundle is not None else None,
            obs=obs,
            alerts=list(self.monitor.alerts) if self.monitor is not None else [],
            slo=self.slos.report(self.sim.now) if self.slos is not None else None,
            batch_stats=batch_stats,
            profile=profiler if profiler.enabled else None,
        )
