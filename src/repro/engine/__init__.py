"""repro.engine — the multi-tenant TPNR throughput engine.

The paper's §6 leaves performance evaluation open; this package closes
the measurement gap.  :class:`~repro.engine.pool.SessionPool` drives N
concurrent client/provider TPNR sessions over one simulated network,
deterministically (per-tenant named DRBG streams, explicit transaction
IDs), while the opt-in :mod:`repro.crypto.cache` bundle removes
repeated modular exponentiation from the hot path.
:mod:`repro.engine.throughput` sweeps tenant counts and compares
against the uncached one-world-per-transaction baseline.
"""

from .pool import EngineConfig, PoolResult, SessionPool, SessionRecord, TenantDirectory
from .throughput import (
    BaselineSample,
    ThroughputReport,
    ThroughputSample,
    run_baseline,
    run_pool,
    run_throughput,
)

__all__ = [
    "EngineConfig",
    "PoolResult",
    "SessionPool",
    "SessionRecord",
    "TenantDirectory",
    "BaselineSample",
    "ThroughputReport",
    "ThroughputSample",
    "run_baseline",
    "run_pool",
    "run_throughput",
]
