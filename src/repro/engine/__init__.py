"""repro.engine — the multi-tenant TPNR throughput engine.

The paper's §6 leaves performance evaluation open; this package closes
the measurement gap.  :class:`~repro.engine.pool.SessionPool` drives N
concurrent client/provider TPNR sessions over one simulated network,
deterministically (per-tenant named DRBG streams, explicit transaction
IDs), while the opt-in :mod:`repro.crypto.cache` bundle removes
repeated modular exponentiation from the hot path.
:class:`~repro.engine.sharding.ShardedSessionPool` partitions the
tenant population across N worker shards by seed-keyed HMAC and merges
the per-shard results back into one :class:`~repro.engine.pool.PoolResult`
whose ``signature()`` is bit-identical at any shard count;
:mod:`repro.engine.throughput` sweeps tenant and shard counts and
compares against the uncached one-world-per-transaction baseline.
"""

from .pool import EngineConfig, PoolResult, SessionPool, SessionRecord, TenantDirectory
from .sharding import ShardedSessionPool, merge_pool_results, shard_of, shard_plan
from .throughput import (
    BaselineSample,
    ShardedReport,
    ShardedSample,
    ThroughputReport,
    ThroughputSample,
    run_baseline,
    run_pool,
    run_sharded_throughput,
    run_throughput,
)

__all__ = [
    "EngineConfig",
    "PoolResult",
    "SessionPool",
    "SessionRecord",
    "TenantDirectory",
    "ShardedSessionPool",
    "merge_pool_results",
    "shard_of",
    "shard_plan",
    "BaselineSample",
    "ShardedReport",
    "ShardedSample",
    "ThroughputReport",
    "ThroughputSample",
    "run_baseline",
    "run_pool",
    "run_sharded_throughput",
    "run_throughput",
]
