"""Comparison baselines.

* :mod:`repro.baselines.zhou_gollmann` — the traditional four-step fair
  non-repudiation protocol with an on-line TTP (the §4.4 comparator).
* :mod:`repro.baselines.ssl_only` — the status quo: per-session
  integrity with no receipts (the §2 platforms, abstracted).
"""

from . import ssl_only, zhou_gollmann
from .ssl_only import SslOnlyPlatform, SslSessionResult
from .zhou_gollmann import ZgClient, ZgOnlineTtp, ZgOutcome, ZgProvider

__all__ = [
    "ssl_only",
    "zhou_gollmann",
    "SslOnlyPlatform",
    "SslSessionResult",
    "ZgClient",
    "ZgOnlineTtp",
    "ZgOutcome",
    "ZgProvider",
]
