"""The status-quo baseline: per-session integrity only (paper §2).

Models what today's platforms actually give the user: authenticated,
integrity-checked *sessions* (our mini-TLS + Content-MD5 machinery)
with **no link between the upload and download sessions** and **no
signed receipts**.  The scenario API mirrors the TPNR runners so the
Fig. 5 and S5 experiments can sweep both systems symmetrically.

``md5_mode`` selects the platform behaviour from §2.4:

* ``"stored"``  — Azure model: the MD5 persisted at upload is returned
  at download; naive tampering is *detected* (but not attributable),
  cover-up tampering (FIXUP_MD5) is not.
* ``"recomputed"`` — AWS model: the MD5 is recomputed from storage at
  download; *any* in-storage tampering passes the check.

Attribution is always impossible: with no signatures, an MD5 mismatch
cannot prove *who* changed the data — user word against provider word,
the repudiation deadlock of §2.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..errors import StorageError
from ..storage.blobstore import BlobStore
from ..storage.tamper import TamperMode, apply_tamper

__all__ = ["SslOnlyPlatform", "SslSessionResult"]

_CONTAINER = "ssl-only"


@dataclass
class SslSessionResult:
    """What the user can conclude after an upload+download pair."""

    key: str
    downloaded: bytes | None
    detected_mismatch: bool
    can_attribute: bool  # always False here; True needs signed evidence
    detail: str


class SslOnlyPlatform:
    """Upload/download with session integrity but no receipts."""

    def __init__(self, rng: HmacDrbg, md5_mode: str = "stored") -> None:
        if md5_mode not in ("stored", "recomputed"):
            raise StorageError(f"unknown md5_mode {md5_mode!r}")
        self.md5_mode = md5_mode
        self.rng = rng.fork(f"ssl-only/{md5_mode}")
        self.store = BlobStore("ssl-only")
        self._counter = 0

    # -- user operations -----------------------------------------------------

    def upload(self, data: bytes) -> str:
        """Session-integrity-checked upload; returns the object key.

        The transport (modelled as already secured) guarantees the
        server stored exactly what the user sent — the paper grants
        this much to SSL.
        """
        self._counter += 1
        key = f"obj-{self._counter:06d}"
        self.store.put(_CONTAINER, key, data, content_md5=digest("md5", data))
        return key

    def tamper(self, key: str, mode: TamperMode) -> None:
        """Provider-side mutation between the sessions (Fig. 5)."""
        apply_tamper(self.store, _CONTAINER, key, mode, self.rng)

    def download(self, key: str, user_kept_md5: bytes | None = None) -> SslSessionResult:
        """Session-integrity-checked download.

        *user_kept_md5* models a diligent user who recorded the digest
        at upload time — the strongest self-help possible without
        receipts (it improves detection but never attribution).
        """
        obj = self.store.get(_CONTAINER, key)
        if self.md5_mode == "stored":
            advertised = obj.content_md5
        else:
            advertised = obj.actual_md5()
        actual = digest("md5", obj.data)
        mismatch = advertised != actual
        if not mismatch and user_kept_md5 is not None:
            mismatch = user_kept_md5 != actual
        detail = (
            "MD5 mismatch: data or metadata changed in storage — but with no "
            "signed receipt neither party can prove who is at fault"
            if mismatch
            else "checksums consistent (which does NOT prove the data is what was uploaded)"
        )
        return SslSessionResult(
            key=key,
            downloaded=obj.data,
            detected_mismatch=mismatch,
            can_attribute=False,
            detail=detail,
        )
