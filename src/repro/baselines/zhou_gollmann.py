"""Traditional fair non-repudiation baseline (Zhou-Gollmann style).

The paper's efficiency claim (§4.4) is comparative: "in the Normal and
Abort models, it takes Alice and Bob merely two steps without TTP to
exchange messages and non-repudiation evidence directly.  In contrast,
the same operation takes four steps in the traditional non-repudiation
protocol."  This module implements that traditional protocol so the S4
benchmark can measure both sides.

The classic Zhou-Gollmann construction splits the message into a
commitment and a key, with a lightweight **on-line TTP** notarizing the
key on *every* transaction:

    1. A -> B   : c = E_K(data), NRO = Sign_A(f_NRO, B, L, H(c))
    2. B -> A   : NRR = Sign_B(f_NRR, A, L, H(c))
    3. A -> TTP : K,  sub_K = Sign_A(f_SUB, B, L, K)
    4. TTP -> A : con_K = Sign_TTP(f_CON, A, B, L, K)   (A's confirmation)
    5. TTP -> B : K, con_K                              (B can now decrypt)

Evidence of origin = (NRO, con_K); evidence of receipt = (NRR, con_K).
Fairness holds because neither party gets a usable message/evidence
until the TTP publishes con_K — at the price of four protocol steps and
a TTP on the critical path of every exchange, which is exactly the
overhead TPNR's two-step Normal mode avoids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..crypto import aead, rsa
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import Identity, KeyRegistry
from ..errors import EvidenceError
from ..net.network import Envelope
from ..net.node import Node
from ..core.transaction import new_transaction_id

__all__ = ["ZgLabel", "ZgClient", "ZgProvider", "ZgOnlineTtp", "ZgOutcome"]


class ZgFlag(enum.Enum):
    NRO = "f_NRO"
    NRR = "f_NRR"
    SUB = "f_SUB"
    CON = "f_CON"


@dataclass(frozen=True)
class ZgLabel:
    """The (A, B, L) transaction label the signatures bind."""

    originator: str
    recipient: str
    label: str

    def to_bytes(self) -> bytes:
        return f"zg|{self.originator}|{self.recipient}|{self.label}".encode()


def _sign(identity: Identity, flag: ZgFlag, label: ZgLabel, payload: bytes) -> bytes:
    return rsa.sign(identity.private_key, flag.value.encode() + b"|" + label.to_bytes() + b"|" + payload)


def _verify(public, flag: ZgFlag, label: ZgLabel, payload: bytes, signature: bytes) -> bool:
    return rsa.verify(public, flag.value.encode() + b"|" + label.to_bytes() + b"|" + payload, signature)


@dataclass(frozen=True)
class ZgCommit:
    """Step 1 payload: ciphertext + NRO."""

    label: ZgLabel
    ciphertext: bytes
    nro: bytes

    def wire_size(self) -> int:
        return len(self.label.to_bytes()) + len(self.ciphertext) + len(self.nro)


@dataclass(frozen=True)
class ZgReceipt:
    """Step 2 payload: NRR over the same commitment."""

    label: ZgLabel
    commit_hash: bytes
    nrr: bytes

    def wire_size(self) -> int:
        return len(self.label.to_bytes()) + len(self.commit_hash) + len(self.nrr)


@dataclass(frozen=True)
class ZgKeySubmission:
    """Step 3 payload: the key + sub_K, lodged with the TTP."""

    label: ZgLabel
    key: bytes
    sub_k: bytes

    def wire_size(self) -> int:
        return len(self.label.to_bytes()) + len(self.key) + len(self.sub_k)


@dataclass(frozen=True)
class ZgConfirmation:
    """Steps 4/5 payload: the TTP's con_K (key included toward B)."""

    label: ZgLabel
    key: bytes
    con_k: bytes

    def wire_size(self) -> int:
        return len(self.label.to_bytes()) + len(self.key) + len(self.con_k)


@dataclass
class ZgOutcome:
    """Originator-side record of one exchange."""

    label: str
    status: str = "pending"  # pending -> receipted -> confirmed
    nrr: bytes | None = None
    con_k: bytes | None = None

    @property
    def complete(self) -> bool:
        return self.status == "confirmed" and self.nrr is not None


class ZgClient(Node):
    """The originator A."""

    def __init__(self, identity: Identity, registry: KeyRegistry, rng: HmacDrbg,
                 ttp_name: str = "zg-ttp") -> None:
        super().__init__(identity.name)
        self.identity = identity
        self.registry = registry
        self.rng = rng.fork(f"zg/{identity.name}")
        self.ttp_name = ttp_name
        self.outcomes: dict[str, ZgOutcome] = {}
        self._keys: dict[str, bytes] = {}
        self._labels: dict[str, ZgLabel] = {}

    def exchange(self, provider: str, data: bytes) -> str:
        """Step 1: commit the encrypted message with the NRO."""
        label = ZgLabel(self.name, provider, new_transaction_id("ZG"))
        key = self.rng.generate(32)
        nonce = self.rng.generate(12)
        ciphertext = aead.seal(key, nonce, data, aad=label.to_bytes())
        nro = _sign(self.identity, ZgFlag.NRO, label, digest("sha256", ciphertext))
        self._keys[label.label] = key
        self._labels[label.label] = label
        self.outcomes[label.label] = ZgOutcome(label=label.label)
        self.send(provider, "zg.commit", ZgCommit(label=label, ciphertext=ciphertext, nro=nro))
        return label.label

    def on_message(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, ZgReceipt):
            self._on_receipt(payload)
        elif isinstance(payload, ZgConfirmation):
            self._on_confirmation(payload)

    def _on_receipt(self, receipt: ZgReceipt) -> None:
        outcome = self.outcomes.get(receipt.label.label)
        if outcome is None or outcome.status != "pending":
            return
        provider_key = self.registry.lookup(receipt.label.recipient)
        if not _verify(provider_key, ZgFlag.NRR, receipt.label, receipt.commit_hash, receipt.nrr):
            raise EvidenceError("ZG: NRR invalid")
        outcome.nrr = receipt.nrr
        outcome.status = "receipted"
        # Step 3: lodge the key with the TTP.
        label = self._labels[receipt.label.label]
        key = self._keys[receipt.label.label]
        sub_k = _sign(self.identity, ZgFlag.SUB, label, key)
        self.send(self.ttp_name, "zg.submit", ZgKeySubmission(label=label, key=key, sub_k=sub_k))

    def _on_confirmation(self, confirmation: ZgConfirmation) -> None:
        outcome = self.outcomes.get(confirmation.label.label)
        if outcome is None or outcome.status != "receipted":
            return
        ttp_key = self.registry.lookup(self.ttp_name)
        if not _verify(ttp_key, ZgFlag.CON, confirmation.label, confirmation.key, confirmation.con_k):
            raise EvidenceError("ZG: con_K invalid")
        outcome.con_k = confirmation.con_k
        outcome.status = "confirmed"


class ZgProvider(Node):
    """The recipient B."""

    def __init__(self, identity: Identity, registry: KeyRegistry, rng: HmacDrbg,
                 ttp_name: str = "zg-ttp") -> None:
        super().__init__(identity.name)
        self.identity = identity
        self.registry = registry
        self.rng = rng.fork(f"zg/{identity.name}")
        self.ttp_name = ttp_name
        self.received: dict[str, bytes] = {}  # label -> recovered plaintext
        self._pending: dict[str, ZgCommit] = {}
        self.evidence: dict[str, tuple[bytes, bytes]] = {}  # label -> (nro, con_k)

    def on_message(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, ZgCommit):
            self._on_commit(payload)
        elif isinstance(payload, ZgConfirmation):
            self._on_confirmation(payload)

    def _on_commit(self, commit: ZgCommit) -> None:
        originator_key = self.registry.lookup(commit.label.originator)
        commit_hash = digest("sha256", commit.ciphertext)
        if not _verify(originator_key, ZgFlag.NRO, commit.label, commit_hash, commit.nro):
            raise EvidenceError("ZG: NRO invalid")
        self._pending[commit.label.label] = commit
        # Step 2: answer with the NRR.
        nrr = _sign(self.identity, ZgFlag.NRR, commit.label, commit_hash)
        self.send(
            commit.label.originator,
            "zg.receipt",
            ZgReceipt(label=commit.label, commit_hash=commit_hash, nrr=nrr),
        )

    def _on_confirmation(self, confirmation: ZgConfirmation) -> None:
        commit = self._pending.get(confirmation.label.label)
        if commit is None:
            return
        ttp_key = self.registry.lookup(self.ttp_name)
        if not _verify(ttp_key, ZgFlag.CON, confirmation.label, confirmation.key, confirmation.con_k):
            raise EvidenceError("ZG: con_K invalid")
        plaintext = aead.open_(confirmation.key, commit.ciphertext, aad=commit.label.to_bytes())
        self.received[confirmation.label.label] = plaintext
        self.evidence[confirmation.label.label] = (commit.nro, confirmation.con_k)


class ZgOnlineTtp(Node):
    """The on-line TTP that notarizes every key (steps 4 and 5)."""

    is_ttp = True  # role marker: analysis derives TTP attribution from this

    def __init__(self, identity: Identity, registry: KeyRegistry) -> None:
        super().__init__(identity.name)
        self.identity = identity
        self.registry = registry
        self.confirmations_issued = 0

    def on_message(self, envelope: Envelope) -> None:
        submission = envelope.payload
        if not isinstance(submission, ZgKeySubmission):
            return
        originator_key = self.registry.lookup(submission.label.originator)
        if not _verify(originator_key, ZgFlag.SUB, submission.label, submission.key, submission.sub_k):
            raise EvidenceError("ZG: sub_K invalid")
        con_k = _sign(self.identity, ZgFlag.CON, submission.label, submission.key)
        confirmation = ZgConfirmation(label=submission.label, key=submission.key, con_k=con_k)
        self.confirmations_issued += 1
        # Step 4: confirmation to A; step 5: key + confirmation to B.
        self.send(submission.label.originator, "zg.confirm", confirmation)
        self.send(submission.label.recipient, "zg.confirm", confirmation)
