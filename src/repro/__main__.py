"""``python -m repro`` entry point."""

from .cli import main

raise SystemExit(main())
