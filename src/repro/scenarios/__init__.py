"""repro.scenarios — the scenario control plane.

Declarative experiment specs with content-addressed run identity and
fail-closed benchmark gating:

* :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, canonical
  serialization, and the content-addressed ``run_key`` (spec + seed
  scheme + code version);
* :mod:`~repro.scenarios.seeds` — PT-002-style root/repetition/stage
  seed derivation;
* :mod:`~repro.scenarios.registry` — the registry that binds specs to
  runners, derives seeds, and stamps run identity into every result
  (``SCENARIOS`` is the default instance with all experiments);
* :mod:`~repro.scenarios.gate` — the promotion gate: a
  ``BENCH_PERF.json`` point is accepted only with a matching run_key,
  a correctly derived seed, and passing invariance checks — anything
  else raises :class:`PromotionError`;
* :mod:`~repro.scenarios.sentinel` — the perf-regression sentinel:
  before a gated point lands, its throughput series are compared
  against the best prior point of the same series and a drop beyond
  tolerance raises :class:`RegressionError` (fail-closed, like the
  gate).

CLI: ``python -m repro scenario list|describe|run|gate``.
"""

from .context import RunStamp, current_stamp, stamped
from .gate import (
    GATE_FLOOR_VERSION,
    PromotionError,
    audit_file,
    entry_class,
    migrate_file,
    promote,
    validate_entry,
)
from .registry import (
    DEFAULT_REGISTRY,
    SCENARIOS,
    RegisteredScenario,
    ScenarioRegistry,
    canonical_result_json,
    runner_defaults,
)
from .seeds import SEED_SCHEME, derive_seed, repetition_seed, seed_matches, stage_seed
from .sentinel import (
    DEFAULT_TOLERANCE,
    RegressionError,
    audit_trajectory,
    check_entry,
)
from .spec import CANON_SCHEME, ScenarioSpec, canonical_json, canonical_spec, compute_run_key

__all__ = [
    "RunStamp",
    "current_stamp",
    "stamped",
    "GATE_FLOOR_VERSION",
    "PromotionError",
    "audit_file",
    "entry_class",
    "migrate_file",
    "promote",
    "validate_entry",
    "DEFAULT_REGISTRY",
    "SCENARIOS",
    "RegisteredScenario",
    "ScenarioRegistry",
    "canonical_result_json",
    "runner_defaults",
    "DEFAULT_TOLERANCE",
    "RegressionError",
    "audit_trajectory",
    "check_entry",
    "SEED_SCHEME",
    "derive_seed",
    "repetition_seed",
    "seed_matches",
    "stage_seed",
    "CANON_SCHEME",
    "ScenarioSpec",
    "canonical_json",
    "canonical_spec",
    "compute_run_key",
]
