"""The scenario registry: every experiment the repo can run, as data.

One :class:`ScenarioRegistry` maps scenario ids to
:class:`~repro.scenarios.spec.ScenarioSpec` + resolved runner pairs.
The registry is what turns a spec into a run:

* it introspects the runner's signature so workload knobs are
  validated against the code and knob *defaults* never have to be
  restated (they fold out of the run key — see ``canonical_spec``);
* :meth:`RegisteredScenario.run` derives the repetition seed, installs
  the :class:`~repro.scenarios.context.RunStamp` so every metadata
  writer emits the run identity, and calls the runner;
* :meth:`RegisteredScenario.stage_context` does the same for auxiliary
  benchmark stages (the TP1 perf sweep, the OB2 cost probe), which is
  how every ``BENCH_PERF.json`` point is born already stamped;
* :func:`canonical_result_json` serializes an
  :class:`~repro.analysis.experiments.ExperimentResult` byte-stably
  (sorted keys, nondeterministic meta stripped) — the form the
  cross-seed determinism tests compare.

``DEFAULT_REGISTRY`` registers all twenty-four experiments; the ten
campaign/engine scenarios (FC1, CR1, OB1, OB2, OB3, OB4, TP1, TP2, RP1, RP2)
carry the richer specs (workload knobs, stages, invariance contracts).
"""

from __future__ import annotations

import contextlib
import dataclasses
import inspect
import json
from typing import Any, Callable, Iterator, Mapping

from ..errors import ReproError
from .context import RunStamp, stamped
from .seeds import SEED_SCHEME
from .spec import ScenarioSpec, compute_run_key

__all__ = [
    "RegisteredScenario",
    "ScenarioRegistry",
    "DEFAULT_REGISTRY",
    "SCENARIOS",
    "canonical_result_json",
]


def runner_defaults(runner: Callable) -> dict[str, Any]:
    """The runner's own keyword defaults, ``seed`` excluded."""
    return {
        name: p.default
        for name, p in inspect.signature(runner).parameters.items()
        if name != "seed" and p.default is not inspect.Parameter.empty
    }


class RegisteredScenario:
    """A spec bound to its resolved runner."""

    def __init__(self, spec: ScenarioSpec, runner: Callable) -> None:
        params = inspect.signature(runner).parameters
        unknown = [k for k in spec.workload if k not in params or k == "seed"]
        if unknown:
            raise ReproError(
                f"scenario {spec.scenario_id!r}: workload knobs {unknown} "
                f"are not parameters of {spec.runner}")
        self.spec = spec
        self.runner = runner
        self.defaults = runner_defaults(runner)

    # -- identity ----------------------------------------------------------

    def run_key(self, version: str | None = None) -> str:
        """Content address of this scenario at *version* (default: current)."""
        return compute_run_key(self.spec, self.defaults, version)

    def seed(self, stage: str = "experiment", repetition: int = 0) -> bytes:
        return self.spec.seed(stage, repetition)

    def stamp(self, stage: str = "experiment", repetition: int = 0) -> RunStamp:
        return RunStamp(
            run_key=self.run_key(),
            scenario=self.spec.scenario_id,
            stage=stage,
            repetition=repetition,
            seed=self.seed(stage, repetition).decode("latin-1"),
            seed_scheme=SEED_SCHEME,
        )

    def describe(self) -> dict[str, Any]:
        """Spec + derived identity, for ``repro scenario describe``."""
        from .spec import canonical_spec

        return {
            "title": self.spec.title,
            "spec": canonical_spec(self.spec, self.defaults),
            "run_key": self.run_key(),
            "seed_scheme": SEED_SCHEME,
            "seeds": {
                "experiment": {
                    f"rep{r}": self.seed("experiment", r).decode("latin-1")
                    for r in range(self.spec.repetitions)
                },
                **{
                    stage: {"rep0": self.seed(stage, 0).decode("latin-1")}
                    for stage in self.spec.stages
                },
            },
            "invariance": {s: list(c) for s, c in sorted(self.spec.invariance.items())},
        }

    # -- execution ---------------------------------------------------------

    def run(self, repetition: int = 0):
        """Run the experiment stage at *repetition*, identity-stamped."""
        if repetition >= self.spec.repetitions:
            raise ReproError(
                f"scenario {self.spec.scenario_id!r} declares "
                f"{self.spec.repetitions} repetition(s); rep {repetition} "
                "is outside the registered spec")
        stamp = self.stamp("experiment", repetition)
        with stamped(stamp):
            return self.runner(seed=self.seed("experiment", repetition),
                               **dict(self.spec.workload))

    @contextlib.contextmanager
    def stage_context(self, stage: str, repetition: int = 0) -> Iterator[bytes]:
        """Install the stage's run identity; yields the derived stage seed.

        Benchmark stages wrap their measurement in this so any
        ``run_meta``-built result and any promoted perf entry carries
        the scenario's run key and the stage-derived seed.
        """
        seed = self.seed(stage, repetition)
        with stamped(self.stamp(stage, repetition)):
            yield seed

    def perf_entry(self, stage: str, *, experiment_id: str | None = None,
                   repetition: int = 0,
                   invariance: Mapping[str, bool] | None = None,
                   **payload: Any) -> dict[str, Any]:
        """A ``BENCH_PERF.json`` entry skeleton the gate will accept —
        provided the invariance results really pass; the gate, not this
        helper, is the authority."""
        from .. import __version__

        entry: dict[str, Any] = {
            "experiment_id": experiment_id or self.spec.scenario_id,
            "scenario": self.spec.scenario_id,
            "stage": stage,
            "repetition": repetition,
            "run_key": self.run_key(),
            "seed": self.seed(stage, repetition).decode("latin-1"),
            "seed_scheme": SEED_SCHEME,
            "repo_version": __version__,
        }
        entry["invariance"] = dict(invariance or {})
        entry.update(payload)
        return entry


class ScenarioRegistry:
    """Scenario ids -> registered scenarios, in registration order."""

    def __init__(self) -> None:
        self._scenarios: dict[str, RegisteredScenario] = {}

    def register(self, spec: ScenarioSpec,
                 runner: Callable | None = None) -> RegisteredScenario:
        """Register *spec*, resolving its runner by name if not given."""
        if spec.scenario_id in self._scenarios:
            raise ReproError(f"scenario {spec.scenario_id!r} already registered")
        if runner is None:
            from ..analysis import experiments as exp

            runner = getattr(exp, spec.runner, None)
            if runner is None:
                raise ReproError(
                    f"scenario {spec.scenario_id!r}: no runner "
                    f"{spec.runner!r} in repro.analysis.experiments")
        registered = RegisteredScenario(spec, runner)
        self._scenarios[spec.scenario_id] = registered
        return registered

    def get(self, scenario_id: str) -> RegisteredScenario:
        try:
            return self._scenarios[scenario_id]
        except KeyError:
            raise ReproError(
                f"unknown scenario {scenario_id!r} "
                f"(registered: {', '.join(self._scenarios) or 'none'})") from None

    def run(self, scenario_id: str, repetition: int = 0):
        return self.get(scenario_id).run(repetition)

    def ids(self) -> list[str]:
        return list(self._scenarios)

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self._scenarios

    def __iter__(self) -> Iterator[RegisteredScenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)


def canonical_result_json(result, spec: ScenarioSpec | None = None) -> str:
    """Byte-stable serialization of an ExperimentResult.

    Sorted keys throughout; meta keys the spec declares nondeterministic
    (wall-clock rates) are stripped, so two same-seed runs of a
    registered scenario must serialize byte-identically.
    """
    record = dataclasses.asdict(result)
    for key in (spec.nondeterministic_meta if spec is not None else ()):
        record["meta"].pop(key, None)
    record["rows"] = [
        [c if isinstance(c, (str, int, float, bool, type(None))) else repr(c)
         for c in row]
        for row in record["rows"]
    ]
    return json.dumps(record, sort_keys=True, indent=2, default=repr)


def _default_specs() -> list[ScenarioSpec]:
    return [
        ScenarioSpec("T1", "Table 1 — REST PUT/GET with SharedKey auth",
                     "experiment_table1", "exp/t1"),
        ScenarioSpec("F1", "Fig. 1 — cloud computing principle",
                     "experiment_fig1", "exp/f1"),
        ScenarioSpec("F2", "Fig. 2 — AWS Import/Export flow",
                     "experiment_fig2", "exp/f2"),
        ScenarioSpec("F3", "Fig. 3 — Azure secure data access",
                     "experiment_fig3", "exp/f3"),
        ScenarioSpec("F4", "Fig. 4 — Google SDC work flow",
                     "experiment_fig4", "exp/f4"),
        ScenarioSpec("F5", "Fig. 5 — the integrity vulnerability",
                     "experiment_fig5", "exp/f5",
                     workload={"trials": 5}),
        ScenarioSpec("F6", "Fig. 6 — TPNR work flows",
                     "experiment_fig6", "exp/f6"),
        ScenarioSpec("S3", "§3 — bridging schemes (TAC x SKS)",
                     "experiment_bridging", "exp/s3"),
        ScenarioSpec("S4", "§4.4 — TPNR vs traditional NR",
                     "experiment_step_counts", "exp/s4"),
        ScenarioSpec("S5", "§5 — attack robustness matrix",
                     "experiment_attacks", "exp/s5"),
        ScenarioSpec("S6", "§6 — protocol vs shipping time",
                     "experiment_shipping", "exp/s6"),
        ScenarioSpec("W1", "extension — multi-client scalability",
                     "experiment_scalability", "exp/w1"),
        ScenarioSpec("R1", "extension — loss resilience",
                     "experiment_resilience", "exp/r1"),
        ScenarioSpec("A1", "ablation — evidence encryption",
                     "experiment_evidence_ablation", "exp/a1"),
        ScenarioSpec("FC1", "extension — fault-injection campaign",
                     "experiment_fault_campaign", "exp/fc1",
                     workload={"n_plans": 50}),
        ScenarioSpec("CR1", "extension — amnesia-crash recovery campaign",
                     "experiment_crash_recovery", "exp/cr1",
                     workload={"n_plans": 100}),
        ScenarioSpec("OB1", "extension — observability span trees + metrics",
                     "experiment_observability", "exp/ob1",
                     stages=("overhead",)),
        ScenarioSpec("OB2", "extension — forensic timelines + consistency audit",
                     "experiment_forensics", "exp/ob2",
                     workload={"n_plans": 100},
                     stages=("cost", "overhead"),
                     invariance={"cost": ("clean_reconstruction_zero_findings",)}),
        ScenarioSpec("OB3", "extension — SLO error budgets + burn-rate alerting",
                     "experiment_slo", "exp/ob3",
                     workload={"n_plans": 24},
                     stages=("perf",),
                     invariance={"perf": (
                         "sketch_merge_equivalent_and_alerts_deterministic",)}),
        ScenarioSpec("TP1", "extension — multi-tenant throughput engine",
                     "experiment_throughput", "exp/tp1",
                     stages=("perf", "perf-1000"),
                     invariance={"perf": ("cache_toggle_signature_identical",)},
                     nondeterministic_meta=("wall_tx_per_sec",)),
        ScenarioSpec("TP2", "extension — sharded engine + Merkle-batched evidence",
                     "experiment_sharded_throughput", "exp/tp2",
                     stages=("perf", "perf-10k"),
                     invariance={"perf": ("shard_signature_invariant_1_2_4_8",)},
                     nondeterministic_meta=("wall_tx_per_sec",)),
        ScenarioSpec("OB4", "extension — deterministic profiler + critical path "
                     "+ regression sentinel",
                     "experiment_profiler", "exp/ob4",
                     stages=("overhead",),
                     invariance={"overhead": (
                         "profile_artifacts_shard_invariant_1_2_4_8",
                         "critical_path_reconciles",
                     )},
                     nondeterministic_meta=("shard_utilization",
                                            "wall_tx_per_sec")),
        ScenarioSpec("RP1", "extension — replicated-store divergence campaign",
                     "experiment_replication", "exp/rp1",
                     workload={"n_plans": 60},
                     stages=("perf",),
                     invariance={"perf": ("all_faults_masked_or_detected",)}),
        ScenarioSpec("RP2", "extension — migration evidence continuity",
                     "experiment_migration", "exp/rp2"),
    ]


def build_default_registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    for spec in _default_specs():
        registry.register(spec)
    return registry


DEFAULT_REGISTRY = build_default_registry()
#: The short convenience alias used throughout benches and the CLI.
SCENARIOS = DEFAULT_REGISTRY
