"""Run-identity context shared between the registry and the writers.

A :class:`RunStamp` names one concrete run of a registered scenario:
the content-addressed ``run_key`` of the spec it executed, which stage
and repetition it was, and the seed that repetition derived.  The
registry installs the active stamp in a :class:`contextvars.ContextVar`
around the runner call, and every metadata writer —
:func:`repro.analysis.experiments.run_meta`, the benchmark JSON
emitters — folds the active stamp into its output.  That is what makes
*every* result file carry the same ``run_key``/``seed``/``repo_version``
block without each writer knowing about the registry.

This module is deliberately a leaf (no repro imports) so that
``analysis.experiments`` can read the stamp without creating an import
cycle with the registry, which imports the experiment runners.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["RunStamp", "current_stamp", "stamped"]


@dataclass(frozen=True)
class RunStamp:
    """Identity of one scenario run: what spec, which derivation, which seed."""

    run_key: str
    scenario: str
    stage: str
    repetition: int
    seed: str
    seed_scheme: str

    def as_meta(self) -> dict[str, Any]:
        """The uniform run-identity block every result writer emits."""
        return {
            "run_key": self.run_key,
            "scenario": self.scenario,
            "stage": self.stage,
            "repetition": self.repetition,
            "seed": self.seed,
            "seed_scheme": self.seed_scheme,
        }


_ACTIVE: ContextVar[RunStamp | None] = ContextVar("repro.scenarios.stamp", default=None)


def current_stamp() -> RunStamp | None:
    """The stamp of the scenario run currently executing, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def stamped(stamp: RunStamp) -> Iterator[RunStamp]:
    """Install *stamp* as the active run identity for the duration."""
    token = _ACTIVE.set(stamp)
    try:
        yield stamp
    finally:
        _ACTIVE.reset(token)
