"""Perf-regression sentinel over the BENCH_PERF.json trajectory.

The promotion gate (:mod:`repro.scenarios.gate`) proves a new point is
*comparable* — right run key, right seed, invariance checks passed —
but says nothing about whether it is *worse*.  This module closes that
gap: before a gated point lands on the trajectory, every throughput
sample it carries is compared against the best prior sample of the
same series, and a drop beyond the tolerance **raises**
:class:`RegressionError` — fail-closed, no warn-and-append, exactly
like the gate itself.

A *series* is the unit of comparability: ``(experiment_id, stage,
sample coordinates)`` where the coordinates are the workload knobs a
sample records (``tenants``, ``shards``, ``batch_size``) — a TP2 point
at 8 shards is never compared against one at 2.  The ``classic``
comparison block throughput benchmarks carry is its own series.

Only ``gated`` entries participate (see
:func:`~repro.scenarios.gate.entry_class`): legacy pre-gate numbers
were measured before run identity existed, so a drop across the
legacy/gated boundary (TP1's 38.69 → 28.08 is real history) is a
measurement-regime change, not a regression.  "Prior" means *strictly
lower repo version*: re-benching the same version replaces its point
and must not race itself.

Wall-clock throughput is noisy, so the default tolerance is generous
(15%); tighten it per call if a benchmark is known stable.  The
sentinel never mutates the file — :func:`check_entry` inspects, the
gate's ``promote()`` calls it before writing.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from ..errors import ReproError
from .gate import _parse_version, entry_class

__all__ = [
    "DEFAULT_TOLERANCE",
    "RegressionError",
    "extract_series",
    "best_prior",
    "check_entry",
    "audit_trajectory",
]

#: Maximum accepted fractional tx/s drop vs the best prior point of the
#: same series (0.15 = a new point may be at most 15% slower).
DEFAULT_TOLERANCE = 0.15


class RegressionError(ReproError):
    """A new trajectory point regressed beyond tolerance; reject it."""


def _coords(sample: Mapping[str, Any]) -> tuple:
    """The workload coordinates that make two samples comparable."""
    return tuple(
        (key, sample[key])
        for key in ("tenants", "shards", "batch_size")
        if key in sample
    )


def extract_series(entry: Mapping[str, Any]) -> dict[tuple, float]:
    """Every throughput series one trajectory entry carries.

    Keys are ``(experiment_id, stage, kind, coords)`` tuples; values
    are the recorded ``tx_per_sec``.  Entries with no throughput
    samples (cost/latency benchmarks) yield an empty dict — the
    sentinel has nothing to say about them.
    """
    experiment_id = str(entry.get("experiment_id", ""))
    stage = str(entry.get("stage", "experiment"))
    series: dict[tuple, float] = {}
    samples = entry.get("samples")
    if isinstance(samples, list):
        for sample in samples:
            if not isinstance(sample, Mapping) or "tx_per_sec" not in sample:
                continue
            key = (experiment_id, stage, "sample", _coords(sample))
            series[key] = float(sample["tx_per_sec"])
    for block in ("classic", "baseline"):
        comparison = entry.get(block)
        if isinstance(comparison, Mapping) and "tx_per_sec" in comparison:
            key = (experiment_id, stage, block, _coords(comparison))
            series[key] = float(comparison["tx_per_sec"])
    return series


def best_prior(
    series_key: tuple,
    prior_entries: list[Mapping[str, Any]],
    version: tuple[int, ...],
) -> float | None:
    """The best (max) tx/s recorded for *series_key* at any strictly
    lower repo version, over gated entries only; None if no history."""
    best: float | None = None
    for entry in prior_entries:
        if entry_class(entry) != "gated":
            continue
        if _parse_version(entry.get("repo_version", "0")) >= version:
            continue
        value = extract_series(entry).get(series_key)
        if value is not None and (best is None or value > best):
            best = value
    return best


def check_entry(
    entry: Mapping[str, Any],
    prior_entries: list[Mapping[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict[str, Any]]:
    """Compare every series of *entry* against its best prior point.

    Returns one report row per series (``status`` ``"ok"``,
    ``"no-history"``, or — never returned, raised — a regression).
    Raises :class:`RegressionError` on the first series whose tx/s
    dropped more than *tolerance* vs the best strictly-prior point.
    Legacy entries are exempt by construction (they can never be newly
    added; see the gate).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    if entry_class(entry) != "gated":
        return [{"status": "legacy-exempt",
                 "experiment_id": entry.get("experiment_id")}]
    version = _parse_version(entry.get("repo_version", "0"))
    reports = []
    for series_key, value in sorted(extract_series(entry).items()):
        prior = best_prior(series_key, prior_entries, version)
        if prior is None:
            reports.append({"series": series_key, "status": "no-history",
                            "tx_per_sec": value})
            continue
        floor = prior * (1.0 - tolerance)
        if value < floor:
            drop = 1.0 - value / prior
            raise RegressionError(
                f"{series_key[0]} stage {series_key[1]!r} "
                f"{dict(series_key[3])}: {value:g} tx/s is {drop:.1%} below "
                f"the best prior point ({prior:g} tx/s at a lower version); "
                f"tolerance is {tolerance:.0%} — fix the regression or "
                "re-measure before promoting")
        reports.append({"series": series_key, "status": "ok",
                        "tx_per_sec": value, "best_prior": prior,
                        "floor": round(floor, 6)})
    return reports


def audit_trajectory(
    path: pathlib.Path | str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[dict[str, Any]]:
    """Replay the sentinel over a whole trajectory file, in version
    order: each gated entry is checked against everything that precedes
    it, exactly as if the points had been promoted chronologically.

    The committed ``benchmarks/results/BENCH_PERF.json`` must pass this
    (the CI profiling job runs it); a hand-edited degraded point fails
    the build here rather than confusing a later reader.
    """
    path = pathlib.Path(path)
    entries = json.loads(path.read_text())
    if not isinstance(entries, list):
        raise RegressionError(f"{path}: trajectory file is not a JSON list")
    ordered = sorted(
        entries,
        key=lambda e: (_parse_version(e.get("repo_version", "0")),
                       str(e.get("experiment_id"))),
    )
    reports = []
    for index, entry in enumerate(ordered):
        reports.extend(check_entry(entry, ordered[:index], tolerance))
    return reports
