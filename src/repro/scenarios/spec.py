"""Declarative scenario specs and their content-addressed run keys.

A :class:`ScenarioSpec` is the complete, serializable description of
one experiment the repo can run: which runner, which root seed, which
workload knobs, how many repetitions, which auxiliary benchmark stages
exist, and which invariance checks a promoted point must pass.

The **run key** is the content address of a spec: a SHA-256 over the
*canonical* spec serialization, the seed-derivation scheme version, and
the repo code version.  Canonicalization guarantees the two properties
the gate relies on:

* **representation never matters** — dict key order is erased by
  sorted-key JSON, tuples and lists collapse to the same form, and a
  workload knob spelled out with its default value hashes identically
  to the same knob omitted (defaults come from the runner's own
  signature, so the spec cannot drift from the code);
* **semantics always matter** — changing the runner, the root seed,
  any effective knob value, the repetition count, the stage list, the
  invariance contract, the seed scheme, or the code version changes
  the run key.

Cosmetic fields (``title``) are deliberately outside the hash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..crypto.hashes import digest
from ..determinism import canon_float
from ..errors import ReproError
from .seeds import SEED_SCHEME, repetition_seed, stage_seed

__all__ = [
    "CANON_SCHEME",
    "ScenarioSpec",
    "canonical_spec",
    "canonical_json",
    "compute_run_key",
]

#: Version tag of the canonicalization itself, hashed into every run
#: key so a change in these rules can never collide with old keys.
CANON_SCHEME = "repro.scenarios.run_key/v1"


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered experiment, fully described.

    ``runner`` names a callable in :mod:`repro.analysis.experiments`
    (e.g. ``"experiment_fault_campaign"``); ``workload`` holds keyword
    knobs for it (everything except ``seed``, which the registry
    derives).  ``stages`` are the auxiliary benchmark measurements that
    may promote points to ``BENCH_PERF.json``; ``invariance`` maps a
    stage name to the check names a promoted point must carry as
    ``true``.  ``nondeterministic_meta`` lists meta keys excluded from
    the canonical result serialization (wall-clock rates and the like).
    """

    scenario_id: str
    title: str
    runner: str
    root_seed: str
    workload: Mapping[str, Any] = field(default_factory=dict)
    repetitions: int = 1
    stages: tuple[str, ...] = ()
    invariance: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    nondeterministic_meta: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.scenario_id:
            raise ReproError("scenario_id must be non-empty")
        if not self.runner:
            raise ReproError(f"scenario {self.scenario_id!r} names no runner")
        if self.repetitions < 1:
            raise ReproError(
                f"scenario {self.scenario_id!r} needs >= 1 repetition")
        if "experiment" in self.stages:
            raise ReproError("'experiment' is the implicit primary stage; "
                             "declare only auxiliary stages")
        for stage in self.invariance:
            if stage != "experiment" and stage not in self.stages:
                raise ReproError(
                    f"scenario {self.scenario_id!r} declares invariance for "
                    f"undeclared stage {stage!r}")

    # -- seed derivation (PT-002) -----------------------------------------

    def seed(self, stage: str = "experiment", repetition: int = 0) -> bytes:
        """The derived seed for one run of this scenario."""
        if stage == "experiment":
            return repetition_seed(self.root_seed, repetition)
        if stage not in self.stages:
            raise ReproError(
                f"scenario {self.scenario_id!r} has no stage {stage!r} "
                f"(declared: {list(self.stages) or 'none'})")
        return stage_seed(self.root_seed, stage, repetition)

    def checks_for(self, stage: str) -> tuple[str, ...]:
        """Invariance check names a promoted point for *stage* must pass."""
        return tuple(self.invariance.get(stage, ()))

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A derived spec (different seed, knobs, ...) — new run key."""
        return replace(self, **changes)


def _normalize(value: Any) -> Any:
    """Collapse equivalent representations before hashing.

    Tuples and lists become lists; bytes become latin-1 text (the
    repo-wide seed convention); mappings sort by key; floats go through
    :func:`repro.determinism.canon_float` — the one normalization point
    for every float that reaches a content hash, so a knob computed as
    ``0.1 + 0.2`` and one written ``0.3`` (or a ``-0.0``) spell the
    same run key.  Anything else must already be JSON-serializable —
    fail loudly otherwise, a run key over a lossy ``repr`` would not be
    content-addressed.
    """
    if isinstance(value, bool):
        # bool before int/float: True must stay True, not become 1.
        return value
    if isinstance(value, (tuple, list)):
        return [_normalize(v) for v in value]
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value).decode("latin-1")
    if isinstance(value, Mapping):
        return {str(k): _normalize(v) for k, v in sorted(value.items())}
    if isinstance(value, float):
        return canon_float(value)
    if value is None or isinstance(value, (str, int)):
        return value
    raise ReproError(f"cannot canonicalize spec value of type {type(value).__name__}")


def canonical_spec(spec: ScenarioSpec,
                   defaults: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """The semantic content of *spec* as a plain dict.

    Workload knobs whose value equals the runner's own default (per
    *defaults*, normally introspected from its signature) are dropped,
    so explicit-default and omitted spell the same spec.
    """
    workload = {k: _normalize(v) for k, v in sorted(spec.workload.items())}
    for name, default in (defaults or {}).items():
        if name in workload and workload[name] == _normalize(default):
            del workload[name]
    return {
        "scenario_id": spec.scenario_id,
        "runner": spec.runner,
        "root_seed": spec.root_seed,
        "workload": workload,
        "repetitions": spec.repetitions,
        "stages": list(spec.stages),
        "invariance": {s: list(c) for s, c in sorted(spec.invariance.items())},
        "nondeterministic_meta": sorted(spec.nondeterministic_meta),
    }


def canonical_json(payload: Any) -> str:
    """Sorted-key, tight-separator JSON — the only serialization hashed."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def compute_run_key(spec: ScenarioSpec,
                    defaults: Mapping[str, Any] | None = None,
                    version: str | None = None) -> str:
    """The content address of one (spec, seed scheme, code version)."""
    if version is None:
        from .. import __version__ as version
    blob = canonical_json({
        "canon_scheme": CANON_SCHEME,
        "seed_scheme": SEED_SCHEME,
        "code_version": version,
        "spec": canonical_spec(spec, defaults),
    })
    return digest("sha256", blob.encode()).hex()
