"""Fail-closed eligibility gating for benchmark promotion.

``benchmarks/results/BENCH_PERF.json`` is the repo's performance
trajectory; a trajectory is only trustworthy if every point on it is
reproducible and provably comparable.  This module is the gatekeeper:
a point is *promoted* (written to the file) only when

1. its ``scenario`` is registered and its ``run_key`` equals the key
   recomputed from the registered spec at the point's recorded repo
   version — a knob, seed, or derivation change can never masquerade
   as a perf delta;
2. its ``seed`` equals the PT-002 derivation for its declared stage
   and repetition — a point cannot quietly run on a different stream;
3. every invariance check the spec declares for that stage is present
   and ``true`` — e.g. TP1 perf points must prove the crypto caches
   changed wall-clock only (cache on/off result signatures identical).

Anything else **raises** :class:`PromotionError`; there is no warn-and-
append path.  Points recorded before the gate existed (repo version <
1.1.0, no ``run_key``) are *legacy*: they stay on the trajectory,
:func:`migrate_file` stamps them ``"gate": "legacy-pre-gate"`` so their
provenance is explicit, and no new legacy point can ever be added.

:func:`audit_file` replays the whole gate over an existing trajectory
file — the CI job runs it on every build, so a hand-edited or drifted
point fails the build, not a later reader.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Mapping

from ..errors import ReproError
from .registry import DEFAULT_REGISTRY, ScenarioRegistry
from .seeds import seed_matches

__all__ = [
    "PromotionError",
    "GATE_FLOOR_VERSION",
    "entry_class",
    "validate_entry",
    "promote",
    "audit_file",
    "migrate_file",
]


class PromotionError(ReproError):
    """A benchmark point failed eligibility; it must not be promoted."""


#: First repo version at which the gate exists.  Points recorded at or
#: after this version must carry a full, valid identity block.
GATE_FLOOR_VERSION = (1, 1, 0)


def _parse_version(text: Any) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in str(text).split("."))
    except ValueError:
        return (0,)


def entry_class(entry: Mapping[str, Any]) -> str:
    """``"legacy"`` for pre-gate points, ``"gated"`` for everything else.

    Fail-closed: an entry missing its run_key is legacy *only* if its
    recorded version predates the gate — at any newer version the same
    omission classifies it gated, and validation will reject it.
    """
    version = entry.get("repo_version", entry.get("version", "0"))
    if "run_key" not in entry and _parse_version(version) < GATE_FLOOR_VERSION:
        return "legacy"
    return "gated"


def validate_entry(entry: Mapping[str, Any],
                   registry: ScenarioRegistry = DEFAULT_REGISTRY) -> dict[str, Any]:
    """Check one trajectory point; raise :class:`PromotionError` unless
    it is eligible.  Returns a report dict describing what was checked."""
    experiment_id = entry.get("experiment_id")
    if not experiment_id:
        raise PromotionError("trajectory point carries no experiment_id")
    if entry_class(entry) == "legacy":
        return {"experiment_id": experiment_id, "status": "legacy-pre-gate",
                "checked": []}

    scenario_id = entry.get("scenario", experiment_id)
    if scenario_id not in registry:
        raise PromotionError(
            f"{experiment_id}: scenario {scenario_id!r} is not registered; "
            "register a spec before promoting points for it")
    scenario = registry.get(scenario_id)
    version = entry.get("repo_version")
    if not version:
        raise PromotionError(f"{experiment_id}: gated point carries no repo_version")

    # 1. Content-addressed run identity.
    recorded_key = entry.get("run_key")
    expected_key = scenario.run_key(version=str(version))
    if recorded_key != expected_key:
        raise PromotionError(
            f"{experiment_id}: run_key mismatch — recorded "
            f"{str(recorded_key)[:16]}..., spec at version {version} derives "
            f"{expected_key[:16]}... (spec, seed scheme, or knobs changed "
            "without re-running the benchmark)")

    # 2. Seed derivation.
    stage = entry.get("stage", "experiment")
    if stage != "experiment" and stage not in scenario.spec.stages:
        raise PromotionError(
            f"{experiment_id}: stage {stage!r} is not declared by scenario "
            f"{scenario_id!r} (stages: {list(scenario.spec.stages) or 'none'})")
    repetition = entry.get("repetition", 0)
    if not isinstance(repetition, int) or repetition < 0:
        raise PromotionError(f"{experiment_id}: bad repetition {repetition!r}")
    seed = entry.get("seed")
    if not isinstance(seed, str) or not seed_matches(
            scenario.spec.root_seed, seed, stage, repetition):
        raise PromotionError(
            f"{experiment_id}: seed {str(seed)[:24]!r} is not the PT-002 "
            f"derivation of root {scenario.spec.root_seed!r} for stage "
            f"{stage!r} rep {repetition}")

    # 3. Invariance contract.
    required = scenario.spec.checks_for(stage)
    recorded = entry.get("invariance", {})
    if not isinstance(recorded, Mapping):
        raise PromotionError(f"{experiment_id}: invariance block is not a mapping")
    for check in required:
        if check not in recorded:
            raise PromotionError(
                f"{experiment_id}: invariance check {check!r} required by "
                f"stage {stage!r} was never recorded")
        if recorded[check] is not True:
            raise PromotionError(
                f"{experiment_id}: invariance check {check!r} failed "
                f"({recorded[check]!r}); the point is not comparable")

    return {
        "experiment_id": experiment_id,
        "status": "accepted",
        "scenario": scenario_id,
        "stage": stage,
        "repetition": repetition,
        "run_key": expected_key,
        "checked": ["run_key", "seed-derivation",
                    *(f"invariance:{c}" for c in required)],
    }


def _load(path: pathlib.Path) -> list[dict[str, Any]]:
    if not path.exists():
        return []
    entries = json.loads(path.read_text())
    if not isinstance(entries, list):
        raise PromotionError(f"{path}: trajectory file is not a JSON list")
    return entries


def _dump(path: pathlib.Path, entries: list[dict[str, Any]]) -> None:
    entries.sort(key=lambda e: (str(e.get("experiment_id")),
                                str(e.get("repo_version"))))
    path.write_text(json.dumps(entries, indent=2, sort_keys=True, default=repr) + "\n")


def promote(path: pathlib.Path, entry: dict[str, Any],
            registry: ScenarioRegistry = DEFAULT_REGISTRY,
            tolerance: float | None = None) -> pathlib.Path:
    """Validate *entry* (fail-closed) and write it to the trajectory.

    The file keeps one point per ``(experiment_id, repo_version)``:
    re-benching the same version replaces its point, so the list reads
    as the repo's perf history over releases.

    Eligibility is necessary but not sufficient: after the identity
    checks, the perf-regression sentinel compares every throughput
    series the entry carries against the best prior point on the
    existing trajectory and raises
    :class:`~repro.scenarios.sentinel.RegressionError` on a drop beyond
    *tolerance* (default :data:`~repro.scenarios.sentinel.
    DEFAULT_TOLERANCE`) — a regressed point never lands silently.
    """
    # Imported here: sentinel imports this module's helpers.
    from .sentinel import check_entry

    report = validate_entry(entry, registry)
    if report["status"] != "accepted":
        raise PromotionError(
            f"{entry.get('experiment_id')}: only gated points may be "
            "promoted; legacy entries are grandfathered in place, never added")
    path = pathlib.Path(path)
    existing = _load(path)
    if tolerance is None:
        check_entry(entry, existing)
    else:
        check_entry(entry, existing, tolerance)
    key = (entry.get("experiment_id"), entry.get("repo_version"))
    entries = [
        e for e in existing
        if (e.get("experiment_id"), e.get("repo_version")) != key
    ]
    stored = dict(entry)
    stored["gate"] = "accepted"
    entries.append(stored)
    _dump(path, entries)
    return path


def audit_file(path: pathlib.Path,
               registry: ScenarioRegistry = DEFAULT_REGISTRY,
               strict: bool = True) -> list[dict[str, Any]]:
    """Replay the gate over every point in a trajectory file.

    With ``strict`` (the default), the first ineligible point raises —
    this is the CI entry point.  With ``strict=False``, reports carry
    ``status: "rejected"`` rows instead, for interactive inspection.
    """
    reports = []
    for entry in _load(pathlib.Path(path)):
        try:
            reports.append(validate_entry(entry, registry))
        except PromotionError as exc:
            if strict:
                raise
            reports.append({"experiment_id": entry.get("experiment_id"),
                            "status": "rejected", "reason": str(exc)})
    return reports


def migrate_file(path: pathlib.Path,
                 registry: ScenarioRegistry = DEFAULT_REGISTRY) -> int:
    """Stamp legacy pre-gate points so their provenance is explicit.

    Every legacy entry gains ``"gate": "legacy-pre-gate"``; every gated
    entry is validated (fail-closed) and gains ``"gate": "accepted"``.
    Returns the number of entries stamped as legacy.  This is the
    migration path for trajectories recorded before the gate existed:
    old points remain comparable *as history*, clearly marked as never
    having passed eligibility.
    """
    path = pathlib.Path(path)
    entries = _load(path)
    legacy = 0
    for entry in entries:
        if entry_class(entry) == "legacy":
            entry["gate"] = "legacy-pre-gate"
            legacy += 1
        else:
            validate_entry(entry, registry)
            entry["gate"] = "accepted"
    _dump(path, entries)
    return legacy
