"""Seed derivation for scenario runs (Proteus PT-002 style).

One scenario owns one *root seed*; every run of it — repetition ``r``
of the experiment proper, or an auxiliary benchmark *stage* such as the
TP1 perf sweep — draws its seed deterministically from that root
through a versioned HMAC derivation.  The rules:

* **Repetition 0 is the canonical run and uses the root seed itself.**
  This keeps every pre-registry artifact (``results/FC1.txt`` and
  friends, all regenerated from ``exp/...`` seeds) byte-identical under
  the registry.
* **Repetitions ``r >= 1`` derive** ``HMAC(root, "rep/<r>")`` —
  independent streams for replication sweeps, recoverable from the
  root alone.
* **Stages always derive** ``HMAC(root, "stage/<name>/rep/<r>")`` so a
  benchmark never silently reuses the experiment's stream.

Derived seeds are the lowercase-hex digest *as ASCII bytes*: printable
in JSON result files, byte-exact as a DRBG seed, and checkable by the
promotion gate, which recomputes the expected seed from the registered
root and refuses any benchmark point whose seed does not match
(:mod:`repro.scenarios.gate`).
"""

from __future__ import annotations

from ..crypto.hmac_ import hmac_digest
from ..errors import ReproError

__all__ = [
    "SEED_SCHEME",
    "derive_seed",
    "repetition_seed",
    "stage_seed",
    "seed_matches",
]

#: Version tag of the derivation scheme; hashed into every run_key so a
#: change to the derivation invalidates previously promoted points.
SEED_SCHEME = "pt002-hmac-sha256/v1"

_DOMAIN = b"repro.scenarios.seed/v1|"


def _as_bytes(seed: bytes | str) -> bytes:
    return seed.encode() if isinstance(seed, str) else bytes(seed)


def derive_seed(root: bytes | str, label: str) -> bytes:
    """Derive the named stream seed: hex(HMAC(root, domain|label)) as ASCII."""
    if not label:
        raise ReproError("seed derivation needs a non-empty label")
    return hmac_digest(_as_bytes(root), _DOMAIN + label.encode()).hex().encode()


def repetition_seed(root: bytes | str, repetition: int = 0) -> bytes:
    """Seed for repetition *repetition* of a scenario's experiment stage."""
    if repetition < 0:
        raise ReproError(f"repetition index must be >= 0, got {repetition}")
    if repetition == 0:
        return _as_bytes(root)
    return derive_seed(root, f"rep/{repetition}")


def stage_seed(root: bytes | str, stage: str, repetition: int = 0) -> bytes:
    """Seed for an auxiliary stage (a benchmark sweep, a cost probe)."""
    if repetition < 0:
        raise ReproError(f"repetition index must be >= 0, got {repetition}")
    return derive_seed(root, f"stage/{stage}/rep/{repetition}")


def seed_matches(root: bytes | str, seed: str, stage: str = "experiment",
                 repetition: int = 0) -> bool:
    """Does *seed* (as recorded in a result file) equal the derivation?"""
    expected = (repetition_seed(root, repetition) if stage == "experiment"
                else stage_seed(root, stage, repetition))
    return expected.decode("latin-1") == seed
