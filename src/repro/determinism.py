"""Canonical float normalization for signatures and run keys.

Every float that reaches a content hash — a :meth:`PoolResult.signature`
row, a scenario ``run_key`` — must be normalized through ONE helper so
that two code paths computing the same quantity can never drift on
float repr.  Two drift classes this guards against:

* **precision noise**: ``0.1 + 0.2`` vs ``0.3`` differ in the last
  ulps; rounding to 9 decimal places (far finer than any simulated
  time step or measured duration this repo hashes) collapses them;
* **signed zero**: ``repr(-0.0)`` is ``'-0.0'`` while ``repr(0.0)`` is
  ``'0.0'`` — adding ``0.0`` after rounding normalizes the sign, since
  ``-0.0 + 0.0 == 0.0`` under IEEE 754 round-to-nearest.

Kept dependency-free on purpose: both the engine and the scenario
control plane import it, and neither may import the other.
"""

from __future__ import annotations

__all__ = ["CANON_FLOAT_DECIMALS", "canon_float"]

#: Rounding precision (decimal places) for hashed floats.  Nanosecond
#: resolution on simulated seconds — orders of magnitude finer than the
#: millisecond-scale timings being protected, coarse enough to absorb
#: accumulation-order noise.
CANON_FLOAT_DECIMALS = 9


def canon_float(value: float) -> float:
    """The canonical representative of *value* for hashing.

    Rounds to :data:`CANON_FLOAT_DECIMALS` places and normalizes
    ``-0.0`` to ``0.0``.  Non-finite values pass through unchanged
    (``repr`` of ``inf``/``nan`` is already stable).
    """
    if value != value or value in (float("inf"), float("-inf")):
        return value
    return round(value, CANON_FLOAT_DECIMALS) + 0.0
