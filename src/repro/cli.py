"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show every reproducible experiment with its paper artifact.
``experiment <id> [--seed S]``
    Run one experiment (T1, F1..F6, S3..S6, W1, R1, A1) and print the
    regenerated table.
``gauntlet [--seed S]``
    Run the §5 attack gauntlet and print the success matrix.
``demo [--seed S]``
    One TPNR session with a tampering provider, through arbitration.
``workload [--clients N] [--transactions M] [--drop P] [--seed S]``
    Drive a multi-client workload and print the outcome summary.
``obs [--seed S] [--dump-dir DIR]``
    Run one observed TPNR session and print (or dump) its telemetry:
    the span tree, the metrics summary, and — with ``--dump-dir`` —
    ``spans.jsonl`` / ``metrics.jsonl`` / ``metrics.prom`` files.
``throughput [--tenants N...] [--baseline M] [--no-caches] [--seed S]``
    Sweep the multi-tenant session engine over tenant counts, print
    wall tx/sec and sim-time latency percentiles per point, and compare
    against the uncached one-deployment-per-transaction baseline.
``scenario list | describe <id> | run <id> [--rep N] [--json] | gate``
    The scenario control plane.  ``list`` shows every registered
    scenario with its content-addressed run key; ``describe`` prints a
    spec's canonical form, run key, and derived seeds; ``run``
    executes a registered scenario (identity-stamped, derived seed);
    ``gate`` re-derives every run key and replays the fail-closed
    eligibility gate over ``BENCH_PERF.json``, exiting non-zero on any
    mismatch.
``forensics [--tamper] [--selftest] [--plans N] [--seed S]``
    Reconstruct one observed session's cross-surface timeline and
    print its dispute dossier (reconstructed verdict cross-checked
    against the Arbitrator); with ``--selftest``, sweep a seeded fault
    sub-campaign and require every failure to be attributed to a
    classified violation with zero false positives.
``slo [--watch] [--profile P] [--plans N] [--seed S]``
    Run a fault campaign with the standard SLOs attached (session
    success, terminal-verdict latency, evidence verification) and
    print the error-budget table plus any multi-window burn-rate
    alerts.  ``--profile`` picks the plan mix (``clean`` or one of the
    ``blackout``/``delay``/``corrupt``/``mixed`` storms); ``--watch``
    renders the live dashboard (per-SLO budget bars, burn rates, top
    offending fault classes) after every plan.  Exit status checks the
    alerting contract: clean runs must stay silent, storms must page.
``replication [--campaign|--migrate] [--plans N] [--replica R] [--seed S]``
    One TPNR session over the replicated three-backend store: a
    replica is tampered mid-session, the read hedges past it, and the
    fork-consistency audit names the culprit.  ``--campaign`` sweeps
    the seeded RP1 replica-fault campaign (every fault masked or
    detected, never silent); ``--migrate`` runs the RP2 live
    s3like→azurelike migration with evidence continuity; ``--profile
    --profile-dir DIR`` profiles the demo session and writes
    ``flamegraph.txt`` / ``profile.jsonl``.
``profile [--flamegraph] [--critical-path] [--check-regression] [...]``
    The deterministic profiler.  Default mode runs the (sharded)
    engine with the region profiler attached and prints the hot
    regions plus shard utilization; ``--flamegraph`` prints the
    collapsed-stack flamegraph instead (``--dump-dir`` writes
    ``flamegraph.txt`` / ``profile.jsonl`` — byte-identical across
    same-seed runs and shard counts with per-message evidence);
    ``--critical-path`` extracts a live observed session's dominant
    stage chain and checks it reconciles with the measured elapsed;
    ``--check-regression`` replays the perf-regression sentinel over
    the committed ``BENCH_PERF.json`` trajectory, exiting non-zero on
    any tx/s drop beyond ``--tolerance``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .analysis.diagram import sequence_diagram
from .analysis.report import render_kv, render_table
from .analysis.workload import WorkloadSpec, run_workload
from .attacks import run_gauntlet, tpnr_defense_holds
from .core import (
    ProviderBehavior,
    Verdict,
    dispute_tampering,
    make_deployment,
    run_download,
    run_session,
    run_upload,
)
from .net.channel import ChannelSpec
from .scenarios import SCENARIOS
from .storage.tamper import TamperMode

__all__ = ["main", "EXPERIMENTS"]

# The scenario registry is the single source of truth; the flat
# id -> (runner, title) view survives for ad-hoc `repro experiment`
# runs with a caller-chosen seed (unregistered, hence unstamped).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    scenario.spec.scenario_id: (scenario.runner, scenario.spec.title)
    for scenario in SCENARIOS
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print(render_table(
        ["id", "reproduces"],
        [[key, title] for key, (_, title) in EXPERIMENTS.items()],
        title="Experiments (run with: python -m repro experiment <id>)",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    key = args.id.upper()
    if key not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    runner, _ = EXPERIMENTS[key]
    result = runner(seed=args.seed.encode())
    print(render_table(result.headers, result.rows,
                       title=f"[{result.experiment_id}] {result.title}"))
    if result.notes:
        print(f"Note: {result.notes}")
    return 0


def _cmd_gauntlet(args: argparse.Namespace) -> int:
    results = run_gauntlet(seed=args.seed.encode())
    print(render_table(
        ["attack", "target", "outcome", "detail"],
        [[r.attack, r.target, "SUCCEEDED" if r.succeeded else "defeated", r.detail[:60]]
         for r in results],
        title="§5 attack gauntlet",
    ))
    holds = tpnr_defense_holds(results)
    print(f"\nTPNR defense holds: {holds}")
    return 0 if holds else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    dep = make_deployment(
        seed=args.seed.encode(),
        behavior=ProviderBehavior(tamper_mode=TamperMode.FIXUP_MD5),
    )
    outcome = run_upload(dep, b"the company financial data " * 16)
    download = run_download(dep, outcome.transaction_id)
    ruling = dispute_tampering(dep, outcome.transaction_id)
    print(render_kv(
        [
            ("transaction", outcome.transaction_id),
            ("upload status", outcome.upload_status.value),
            ("upload messages", outcome.steps),
            ("tampering detected at download", download.tampering_detected),
            ("arbitrator verdict", ruling.verdict.value),
        ],
        title="TPNR demo: upload -> covert tampering -> download -> arbitration",
    ))
    print("\nWire sequence:")
    print(sequence_diagram(dep.network.trace, "tpnr.",
                           participants=[dep.client.name, dep.provider.name, dep.ttp.name]))
    return 0 if ruling.verdict is Verdict.PROVIDER_FAULT else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(n_clients=args.clients, transactions_per_client=args.transactions)
    channel = ChannelSpec(base_latency=0.02, drop_prob=args.drop)
    _, report = run_workload(args.seed.encode(), spec, channel)
    print(render_kv(
        [
            ("clients", spec.n_clients),
            ("transactions", spec.total_transactions),
            ("drop probability", args.drop),
            ("success rate", f"{report.success_rate:.2f}"),
            ("outcomes", str(report.status_counts)),
            ("messages", report.total_messages),
            ("bytes on wire", report.total_bytes),
            ("all terminated", report.all_terminated),
        ],
        title="Workload summary",
    ))
    return 0 if report.all_terminated else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    """One observed TPNR session; exit non-zero unless the telemetry is
    complete (non-empty metrics, valid span JSONL, complete span tree)."""
    import json
    import pathlib

    from .obs.exporters import span_tree_text

    dep = make_deployment(seed=args.seed.encode(), observe=True)
    with dep.obs.observe_crypto():
        outcome = run_session(dep, b"observed session payload " * 16)
    txn = outcome.transaction_id
    spans_text = dep.obs.spans_jsonl()
    metrics_text = dep.obs.metrics_jsonl()
    prom_text = dep.obs.prometheus_text()
    snapshot = dep.obs.metrics.snapshot()
    span_lines = [json.loads(line) for line in spans_text.splitlines()]
    ok = (
        bool(snapshot)
        and bool(span_lines)
        and all("span_id" in d and "trace_id" in d for d in span_lines)
        and dep.obs.tracer.tree_complete(txn)
    )
    print(span_tree_text(dep.obs.tracer, txn))
    print(dep.obs.summary_table(title=f"Metrics (seed={args.seed!r})"))
    print(render_kv(
        [
            ("transaction", txn),
            ("status", outcome.upload_status.value),
            ("spans", len(span_lines)),
            ("tree complete", dep.obs.tracer.tree_complete(txn)),
            ("metric series", len(snapshot)),
            ("telemetry ok", ok),
        ],
        title="Observability check",
    ))
    if args.dump_dir:
        out = pathlib.Path(args.dump_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "spans.jsonl").write_text(spans_text)
        (out / "metrics.jsonl").write_text(metrics_text)
        (out / "metrics.prom").write_text(prom_text)
        print(f"\nwrote spans.jsonl, metrics.jsonl, metrics.prom to {out}/")
    return 0 if ok else 1


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Reconstruct one observed session's cross-surface timeline and
    print the dossier; with ``--selftest``, sweep a seeded fault
    sub-campaign and require total attribution plus verdict agreement."""
    from .net.faults import CampaignRunner, FaultPlan, generate_plans
    from .obs.anomaly import alerts_table

    seed = args.seed.encode()
    if args.selftest:
        plans = [FaultPlan(name="selftest-noop")] + generate_plans(seed, args.plans - 1)
        runner = CampaignRunner(seed=seed, scenario="session", observe=True,
                                forensics=True, anomaly=True)
        report = runner.run(plans)
        unattributed = sum(
            1 for o in report.outcomes
            if not (o.status in ("completed", "resolved") and o.download_ok)
            and not o.findings
        )
        noop_findings = len(report.outcomes[0].findings)
        ok = unattributed == 0 and noop_findings == 0 and report.hung_sessions == 0
        print(render_kv(
            [
                ("plans", len(report.outcomes)),
                ("statuses", str(report.status_counts())),
                ("finding classes", str(report.finding_categories())),
                ("unattributed failures", unattributed),
                ("no-op plan findings", noop_findings),
                ("alerts", len(report.alerts)),
                ("signature", report.signature()[:16] + "..."),
                ("selftest ok", ok),
            ],
            title=f"Forensics selftest (seed={args.seed!r}, {args.plans} plans)",
        ))
        if report.alerts:
            print()
            print(alerts_table(report.alerts, title="Anomaly alerts"))
        return 0 if ok else 1

    dep = make_deployment(seed=seed, observe=True, durable=True)
    behavior = ProviderBehavior(tamper_mode=TamperMode.FIXUP_MD5) if args.tamper else None
    if behavior is not None:
        dep = make_deployment(seed=seed, observe=True, durable=True, behavior=behavior)
    outcome = run_upload(dep, b"forensic session payload " * 8)
    run_download(dep, outcome.transaction_id)
    dossier = dep.dossier(outcome.transaction_id)
    print(dossier.render(arbitrator=dep.arbitrator, max_rows=args.max_rows))
    return 0 if dossier.agrees(dep.arbitrator, "tampering") else 1


def _cmd_replication(args: argparse.Namespace) -> int:
    """Replicated-store demo, RP1 campaign, or RP2 migration."""
    from .net.faults import generate_replica_plans
    from .replication import ReplicatedStore, ReplicationCampaignRunner, attach_replication

    if args.profile and not args.profile_dir:
        print("repro replication: --profile requires --profile-dir "
              "(nowhere to write flamegraph.txt / profile.jsonl)",
              file=sys.stderr)
        return 2
    if args.profile and (args.campaign or args.migrate):
        print("repro replication: --profile applies to the demo session only "
              "(drop --campaign/--migrate)", file=sys.stderr)
        return 2
    seed = args.seed.encode()
    if args.campaign:
        plans = generate_replica_plans(seed, args.plans)
        report = ReplicationCampaignRunner(seed=seed).run(plans)
        print(report.render())
        ok = (report.silent_faults == 0 and report.violation_count == 0
              and report.clean_plan_findings() == 0)
        print(f"\n{report.injected_faults} faults: {report.masked_faults} masked, "
              f"{report.detected_faults} detected, {report.silent_faults} silent; "
              f"campaign {'ok' if ok else 'FAILED'}")
        return 0 if ok else 1

    if args.migrate:
        from .analysis.experiments import experiment_migration

        result = experiment_migration(seed)
        print(render_table(result.headers, result.rows,
                           title=f"[{result.experiment_id}] {result.title}"))
        ok = bool(result.facts["evidence_chain_survives_migration"])
        print(f"\nevidence chain survives migration: {'yes' if ok else 'NO'}")
        return 0 if ok else 1

    dep = make_deployment(seed=seed, observe=True)
    if args.profile:
        # Before attach: the store picks up the deployment's profiler.
        dep.obs.enable_profiler()
    store = attach_replication(dep, ReplicatedStore(seed=seed + b"/store"))
    outcome = run_upload(dep, b"replicated session payload " * 8)
    txn = outcome.transaction_id
    store.tamper_replica(args.replica, "tpnr-data", txn,
                         b"divergent replica copy")
    result = run_download(dep, txn)
    store.audit()
    culprits = sorted({f.replica for f in store.verifier.error_findings()})
    dossier = dep.dossier(txn)
    print(render_kv(
        [
            ("transaction", txn),
            ("replicas", ", ".join(store.replica_names)),
            ("quorum", store.quorum),
            ("tampered replica", args.replica),
            ("download verified", result.verified),
            ("hedged reads", store.hedged_reads),
            ("read repairs", store.read_repairs),
            ("verifier findings",
             "; ".join(f.describe() for f in store.verifier.error_findings())
             or "none"),
            ("dossier findings",
             "; ".join(str(f) for f in dossier.findings) or "none"),
        ],
        title=f"Replicated TPNR session (seed={args.seed!r})",
    ))
    if args.profile:
        _write_profile_artifacts(dep.obs.profiler, args.profile_dir)
    ok = result.verified and args.replica in culprits
    return 0 if ok else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    """Run a campaign under the standard SLOs; ``--watch`` renders the
    live dashboard per plan.  Exit status enforces the alerting
    contract (clean runs silent, storms paging, nothing hung)."""
    from .net.faults import CampaignRunner, FaultPlan, generate_storm_plans
    from .obs.dashboard import DashboardFrame, render_frame, top_fault_classes

    seed = args.seed.encode()
    if args.profile == "clean":
        plans = [FaultPlan(name=f"s{i:03d}-clean") for i in range(args.plans)]
    else:
        plans = generate_storm_plans(seed, args.plans, profile=args.profile)
    title = f"SLO dashboard — {args.profile} campaign (seed={args.seed!r})"
    # A real terminal gets an in-place refresh; captured output gets
    # one frame per plan, which is also what the CLI tests assert on.
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    outcomes: list = []

    def on_plan(_index: int, outcome) -> None:
        outcomes.append(outcome)
        if not args.watch:
            return
        frame = DashboardFrame(
            title=title,
            now=runner.deployment.sim.now,
            done=len(outcomes),
            total=len(plans),
            statuses=runner.slos.statuses(),
            alerts=list(runner.slos.alerts),
            offenders=top_fault_classes(outcomes),
        )
        print(clear + render_frame(frame))

    runner = CampaignRunner(seed=seed, observe=True, slo=True, on_plan=on_plan)
    report = runner.run(plans)
    slo_report = report.slo
    burn = slo_report.burn_alerts()
    print(slo_report.table(title=title))
    if slo_report.alerts:
        print()
        print(slo_report.alerts_table())
    expect_silent = args.profile == "clean"
    ok = report.hung_sessions == 0 and (
        len(burn) == 0 if expect_silent else len(burn) >= 1)
    print(f"\n{len(plans)} plans, {report.hung_sessions} hung, "
          f"{len(burn)} burn alert(s); contract "
          f"({'silent' if expect_silent else 'pages'}) "
          f"{'holds' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    """The scenario control plane: list/describe/run/gate."""
    import json
    import pathlib

    from .scenarios import PromotionError, audit_file, canonical_result_json

    if args.action == "list":
        print(render_table(
            ["id", "root seed", "reps", "stages", "run_key"],
            [[s.spec.scenario_id, s.spec.root_seed, s.spec.repetitions,
              ",".join(s.spec.stages) or "-", s.run_key()[:16] + "..."]
             for s in SCENARIOS],
            title="Registered scenarios (run with: python -m repro scenario run <id>)",
        ))
        return 0

    if args.action == "describe":
        scenario = SCENARIOS.get(args.id)
        print(json.dumps(scenario.describe(), indent=2, sort_keys=True))
        return 0

    if args.action == "run":
        scenario = SCENARIOS.get(args.id)
        result = scenario.run(repetition=args.rep)
        if args.json:
            print(canonical_result_json(result, scenario.spec))
        else:
            print(render_table(result.headers, result.rows,
                               title=f"[{result.experiment_id}] {result.title}"))
            if result.notes:
                print(f"Note: {result.notes}")
            print(render_kv(
                [
                    ("run_key", result.meta["run_key"]),
                    ("seed", result.meta["seed"]),
                    ("repetition", result.meta["repetition"]),
                    ("seed scheme", result.meta["seed_scheme"]),
                ],
                title="Run identity",
            ))
        return 0

    # gate: re-derive every run key, then replay eligibility over the
    # recorded trajectory.  Fail-closed — any mismatch is exit 1.
    path = pathlib.Path(args.results) / "BENCH_PERF.json"
    derived = [[s.spec.scenario_id, s.run_key()[:16] + "...",
                s.seed("experiment", 0).decode("latin-1")]
               for s in SCENARIOS]
    print(render_table(["scenario", "run_key (re-derived)", "rep-0 seed"],
                       derived, title="Run-key derivation sweep"))
    try:
        reports = audit_file(path)
    except PromotionError as exc:
        print(f"\nGATE FAILED: {exc}", file=sys.stderr)
        return 1
    rows = [[r["experiment_id"], r["status"],
             ", ".join(r.get("checked", [])) or "-"] for r in reports]
    print()
    print(render_table(["point", "status", "checks replayed"], rows,
                       title=f"Eligibility replay over {path}"))
    accepted = sum(1 for r in reports if r["status"] == "accepted")
    legacy = sum(1 for r in reports if r["status"] == "legacy-pre-gate")
    print(f"\n{len(reports)} points: {accepted} accepted, {legacy} legacy-pre-gate; "
          "gate holds")
    return 0


def _write_profile_artifacts(profile, dump_dir: str, suffix: str = "") -> None:
    """Write ``flamegraph{suffix}.txt`` / ``profile{suffix}.jsonl``."""
    import pathlib

    from .obs.profiler import flamegraph_text, profile_jsonl

    out = pathlib.Path(dump_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"flamegraph{suffix}.txt").write_text(flamegraph_text(profile))
    (out / f"profile{suffix}.jsonl").write_text(profile_jsonl(profile))
    print(f"wrote flamegraph{suffix}.txt, profile{suffix}.jsonl to {out}/")


def _cmd_throughput(args: argparse.Namespace) -> int:
    """Sweep the session engine and compare against the baseline."""
    from .engine import TenantDirectory, run_baseline, run_pool

    shards = args.shards
    batch_size = args.batch_size
    if shards < 1:
        print(f"repro throughput: --shards must be >= 1 (got {shards})",
              file=sys.stderr)
        return 2
    if batch_size is not None and batch_size < 1:
        print(f"repro throughput: --batch-size must be >= 1 (got {batch_size})",
              file=sys.stderr)
        return 2
    if args.profile and not args.profile_dir:
        print("repro throughput: --profile requires --profile-dir "
              "(nowhere to write flamegraph.txt / profile.jsonl)",
              file=sys.stderr)
        return 2
    seed = args.seed.encode()
    tenant_counts = tuple(args.tenants)
    use_caches = not args.no_caches
    directory = TenantDirectory(seed)
    directory.warm(["bob", "ttp", *[f"tenant-{i:04d}" for i in range(max(tenant_counts))]])
    rows = []
    all_ok = True
    for n in tenant_counts:
        result = run_pool(seed, n, directory=directory, use_caches=use_caches,
                          shards=shards, batch_size=batch_size,
                          profile=args.profile)
        if args.profile and result.profile is not None:
            _write_profile_artifacts(result.profile, args.profile_dir,
                                     suffix=f"-{n:04d}")
        stats = result.cache_stats or {}
        verify = stats.get("verify", {})
        all_ok = all_ok and result.completed == result.verified == len(result.sessions)
        batches = (result.batch_stats or {}).get("batches", 0)
        rows.append([
            n, result.completed, result.verified,
            f"{result.tx_per_sec:.1f}",
            f"{result.p50_latency:.4f}", f"{result.p99_latency:.4f}",
            f"{float(verify.get('hit_rate', 0.0)):.3f}",
            batches,
        ])
    print(render_table(
        ["tenants", "completed", "verified", "tx/sec (wall)",
         "p50 (sim s)", "p99 (sim s)", "verify-cache hit rate", "batches"],
        rows,
        title=f"Throughput sweep (caches {'on' if use_caches else 'off'}, "
        f"shards={shards}, batch={batch_size if batch_size else 'off'}, "
        f"seed={args.seed!r})",
    ))
    if args.baseline > 0:
        baseline = run_baseline(seed, args.baseline)
        print(render_kv(
            [
                ("baseline transactions", baseline.transactions),
                ("baseline tx/sec (wall)", f"{baseline.tx_per_sec:.2f}"),
                ("note", "one fresh uncached deployment per transaction"),
            ],
            title="Sequential baseline",
        ))
    return 0 if all_ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Deterministic profiler: flamegraph / critical path / sentinel."""
    from .obs.profiler import (
        critical_path,
        flamegraph_text,
        shard_utilization,
        top_regions,
    )

    if args.shards < 1:
        print(f"repro profile: --shards must be >= 1 (got {args.shards})",
              file=sys.stderr)
        return 2
    if args.batch_size is not None and args.batch_size < 1:
        print(f"repro profile: --batch-size must be >= 1 (got {args.batch_size})",
              file=sys.stderr)
        return 2
    if not 0.0 <= args.tolerance < 1.0:
        print(f"repro profile: --tolerance must be in [0, 1) (got {args.tolerance})",
              file=sys.stderr)
        return 2
    seed = args.seed.encode()

    if args.check_regression:
        import pathlib

        from .scenarios import RegressionError, audit_trajectory

        path = pathlib.Path(args.results) / "BENCH_PERF.json"
        if not path.exists():
            print(f"repro profile: no trajectory file at {path}", file=sys.stderr)
            return 2
        try:
            reports = audit_trajectory(path, tolerance=args.tolerance)
        except RegressionError as exc:
            print(f"REGRESSION: {exc}", file=sys.stderr)
            return 1
        rows = []
        for r in reports:
            if "series" in r:
                exp, stage, kind, coords = r["series"]
                label = f"{exp}/{stage}/{kind} {dict(coords)}"
            else:
                label = str(r.get("experiment_id", "-"))
            rows.append([label, r["status"],
                         r.get("tx_per_sec", "-"), r.get("best_prior", "-")])
        print(render_table(
            ["series", "status", "tx/sec", "best prior"], rows,
            title=f"Sentinel replay over {path} (tolerance {args.tolerance:.0%})",
        ))
        print(f"\n{len(rows)} series checked; no regression beyond tolerance")
        return 0

    if args.critical_path:
        from .net.channel import WAN
        from .obs.exporters import span_tree_text

        dep = make_deployment(seed=seed + b"/critical", observe=True, channel=WAN)
        outcome = run_session(dep, b"profiled critical-path payload " * 8)
        txn = outcome.transaction_id
        path = critical_path(dep.obs.tracer, txn)
        if path is None or not path.stages:
            print("repro profile: the session produced no span tree",
                  file=sys.stderr)
            return 1
        print(span_tree_text(dep.obs.tracer, txn))
        print(render_table(
            ["stage", "start (sim s)", "end (sim s)", "self (sim s)"],
            path.rows(),
            title=f"Critical path of {txn}",
        ))
        print(render_kv(
            [
                ("dominant stage", path.dominant().name),
                ("path length (sim s)", f"{path.length:.6f}"),
                ("measured elapsed (sim s)", f"{path.total:.6f}"),
                ("reconciles", path.reconciles()),
            ],
            title="Critical-path accounting",
        ))
        return 0 if path.reconciles() else 1

    from .engine import TenantDirectory, run_pool

    directory = TenantDirectory(seed)
    directory.warm(["bob", "ttp",
                    *[f"tenant-{i:04d}" for i in range(args.tenants)]])
    result = run_pool(seed, args.tenants, directory=directory,
                      shards=args.shards, batch_size=args.batch_size,
                      profile=True)
    profile = result.profile
    if args.flamegraph:
        print(flamegraph_text(profile), end="")
    else:
        print(render_table(
            ["region", "calls", "self sim (s)"],
            [list(row) for row in top_regions(profile, k=args.top)],
            title=f"Hot regions ({args.tenants} tenants, {args.shards} "
            f"shard(s), batch={args.batch_size if args.batch_size else 'off'})",
        ))
        if result.shard_summaries:
            util = shard_utilization(result.shard_summaries)
            print(render_kv(
                sorted(util.items()),
                title="Shard utilization (wall-derived, nondeterministic)",
            ))
    if args.dump_dir:
        _write_profile_artifacts(profile, args.dump_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the ICPP/SCC 2010 cloud non-repudiation paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible experiments").set_defaults(
        func=_cmd_list
    )

    p_exp = sub.add_parser("experiment", help="run one experiment by id")
    p_exp.add_argument("id", help="experiment id, e.g. F5 or S4")
    p_exp.add_argument("--seed", default="cli", help="determinism seed")
    p_exp.set_defaults(func=_cmd_experiment)

    p_g = sub.add_parser("gauntlet", help="run the §5 attack gauntlet")
    p_g.add_argument("--seed", default="cli", help="determinism seed")
    p_g.set_defaults(func=_cmd_gauntlet)

    p_d = sub.add_parser("demo", help="tamper-detect-arbitrate demo")
    p_d.add_argument("--seed", default="cli", help="determinism seed")
    p_d.set_defaults(func=_cmd_demo)

    p_w = sub.add_parser("workload", help="run a multi-client workload")
    p_w.add_argument("--clients", type=int, default=4)
    p_w.add_argument("--transactions", type=int, default=5)
    p_w.add_argument("--drop", type=float, default=0.0)
    p_w.add_argument("--seed", default="cli", help="determinism seed")
    p_w.set_defaults(func=_cmd_workload)

    p_o = sub.add_parser("obs", help="run one observed session, dump telemetry")
    p_o.add_argument("--seed", default="cli", help="determinism seed")
    p_o.add_argument("--dump-dir", default="",
                     help="directory for spans.jsonl / metrics.jsonl / metrics.prom")
    p_o.set_defaults(func=_cmd_obs)

    p_f = sub.add_parser("forensics",
                         help="reconstruct a session timeline / audit a campaign")
    p_f.add_argument("--seed", default="cli", help="determinism seed")
    p_f.add_argument("--tamper", action="store_true",
                     help="use a covertly tampering provider")
    p_f.add_argument("--max-rows", type=int, default=40,
                     help="timeline rows to print in the dossier")
    p_f.add_argument("--selftest", action="store_true",
                     help="run a seeded fault sub-campaign and require "
                     "total attribution with zero false positives")
    p_f.add_argument("--plans", type=int, default=25,
                     help="sub-campaign size for --selftest")
    p_f.set_defaults(func=_cmd_forensics)

    p_r = sub.add_parser("replication",
                         help="replicated-store session / RP1 campaign / RP2 migration")
    p_r.add_argument("--seed", default="cli", help="determinism seed")
    p_r.add_argument("--campaign", action="store_true",
                     help="sweep the seeded replica-fault campaign (RP1)")
    p_r.add_argument("--plans", type=int, default=30,
                     help="campaign size for --campaign")
    p_r.add_argument("--migrate", action="store_true",
                     help="run the live-migration evidence-continuity demo (RP2)")
    p_r.add_argument("--replica", default="s3like",
                     choices=["s3like", "azurelike", "gaelike"],
                     help="replica to tamper in the demo")
    p_r.add_argument("--profile", action="store_true",
                     help="attach the region profiler to the demo session "
                     "(requires --profile-dir)")
    p_r.add_argument("--profile-dir", default="",
                     help="directory for flamegraph.txt / profile.jsonl")
    p_r.set_defaults(func=_cmd_replication)

    p_sl = sub.add_parser("slo",
                          help="campaign under SLOs with a live dashboard")
    p_sl.add_argument("--seed", default="cli", help="determinism seed")
    p_sl.add_argument("--profile", default="mixed",
                      choices=["clean", "blackout", "delay", "corrupt", "mixed"],
                      help="plan mix: clean control or a storm profile")
    p_sl.add_argument("--plans", type=int, default=12, help="campaign size")
    p_sl.add_argument("--watch", action="store_true",
                      help="render the live dashboard after every plan")
    p_sl.set_defaults(func=_cmd_slo)

    p_t = sub.add_parser("throughput", help="sweep the multi-tenant session engine")
    p_t.add_argument("--tenants", type=int, nargs="+", default=[1, 10, 50],
                     help="tenant counts to sweep")
    p_t.add_argument("--baseline", type=int, default=5,
                     help="sequential-baseline transaction count (0 to skip)")
    p_t.add_argument("--no-caches", action="store_true",
                     help="disable the crypto caches (signature/KEM)")
    p_t.add_argument("--shards", type=int, default=1,
                     help="engine worker shards (>= 1; merged result is "
                     "signature-identical at any count)")
    p_t.add_argument("--batch-size", type=int, default=None,
                     help="Merkle-batch evidence: leaves per RSA signature "
                     "(>= 1; omit for classic per-message signatures)")
    p_t.add_argument("--profile", action="store_true",
                     help="attach the region profiler to every sweep point "
                     "(requires --profile-dir)")
    p_t.add_argument("--profile-dir", default="",
                     help="directory for per-point flamegraph-<n>.txt / "
                     "profile-<n>.jsonl")
    p_t.add_argument("--seed", default="cli", help="determinism seed")
    p_t.set_defaults(func=_cmd_throughput)

    p_p = sub.add_parser("profile",
                         help="deterministic profiler: flamegraph / "
                         "critical path / regression sentinel")
    p_p.add_argument("--seed", default="cli", help="determinism seed")
    p_p.add_argument("--tenants", type=int, default=8,
                     help="engine tenants for the profiled run")
    p_p.add_argument("--shards", type=int, default=4,
                     help="engine worker shards (>= 1)")
    p_p.add_argument("--batch-size", type=int, default=None,
                     help="Merkle-batch evidence leaves per signature "
                     "(omit for per-message; artifacts are shard-invariant "
                     "only with per-message evidence)")
    p_p.add_argument("--top", type=int, default=10,
                     help="hot regions to print in the default mode")
    p_p.add_argument("--flamegraph", action="store_true",
                     help="print the collapsed-stack flamegraph "
                     "(folded format, call-weighted, deterministic)")
    p_p.add_argument("--critical-path", action="store_true",
                     help="extract one observed session's critical path "
                     "and check the self-time accounting reconciles")
    p_p.add_argument("--check-regression", action="store_true",
                     help="replay the perf-regression sentinel over the "
                     "committed BENCH_PERF.json trajectory")
    p_p.add_argument("--results", default="benchmarks/results",
                     help="directory holding BENCH_PERF.json "
                     "(--check-regression)")
    p_p.add_argument("--tolerance", type=float, default=0.15,
                     help="max fractional tx/s drop vs the best prior "
                     "point (--check-regression)")
    p_p.add_argument("--dump-dir", default="",
                     help="write flamegraph.txt / profile.jsonl here")
    p_p.set_defaults(func=_cmd_profile)

    p_s = sub.add_parser("scenario",
                         help="scenario control plane: list/describe/run/gate")
    s_sub = p_s.add_subparsers(dest="action", required=True)
    s_sub.add_parser("list", help="list registered scenarios with run keys")
    p_sd = s_sub.add_parser("describe", help="canonical spec + derived seeds")
    p_sd.add_argument("id", help="scenario id, e.g. FC1")
    p_sr = s_sub.add_parser("run", help="run a registered scenario")
    p_sr.add_argument("id", help="scenario id, e.g. FC1")
    p_sr.add_argument("--rep", type=int, default=0,
                      help="repetition index (PT-002 derived seed)")
    p_sr.add_argument("--json", action="store_true",
                      help="print the canonical result JSON instead of the table")
    p_sg = s_sub.add_parser("gate",
                            help="re-derive run keys + replay the promotion gate")
    p_sg.add_argument("--results", default="benchmarks/results",
                      help="directory holding BENCH_PERF.json")
    p_s.set_defaults(func=_cmd_scenario)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
