"""Accounts and access keys for the simulated platforms.

Azure-style accounts hold a 256-bit shared secret ("After creating an
account, the user will receive a 256-bit secret key", §2.2); AWS-style
accounts hold an access-key-id / secret pair used to sign manifest
files.  One directory serves all platform models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..errors import AuthenticationError, StorageError

__all__ = ["Account", "AccountDirectory"]


@dataclass(frozen=True)
class Account:
    """A platform account: name plus its shared secret key."""

    name: str
    secret_key: bytes  # 32 bytes = the paper's 256-bit secret
    access_key_id: str

    def __post_init__(self) -> None:
        if len(self.secret_key) != 32:
            raise StorageError("account secret key must be 256 bits")


class AccountDirectory:
    """Server-side account registry with key lookup."""

    def __init__(self, rng: HmacDrbg) -> None:
        self._rng = rng.fork("accounts")
        self._by_name: dict[str, Account] = {}
        self._by_access_key: dict[str, Account] = {}

    def create(self, name: str) -> Account:
        """Provision an account (the Azure-portal step)."""
        if name in self._by_name:
            raise StorageError(f"account {name!r} already exists")
        access_key_id = "AK" + self._rng.generate(8).hex().upper()
        account = Account(name=name, secret_key=self._rng.generate(32), access_key_id=access_key_id)
        self._by_name[name] = account
        self._by_access_key[access_key_id] = account
        return account

    def by_name(self, name: str) -> Account:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise AuthenticationError(f"unknown account {name!r}") from exc

    def by_access_key(self, access_key_id: str) -> Account:
        try:
            return self._by_access_key[access_key_id]
        except KeyError as exc:
            raise AuthenticationError(f"unknown access key {access_key_id!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
