"""Minimal REST request/response model + SharedKey canonicalization.

Models the HTTP surface in the paper's Table 1: ``PUT``/``GET`` with
``Content-MD5``, ``Content-Length``, ``x-ms-date`` and an
``Authorization: SharedKey <account>:<base64 HMAC-SHA256>`` header over
a canonicalized string-to-sign.  :func:`format_request` renders a
request in exactly the Table 1 layout so the T1 benchmark can print the
reproduced artifact.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from ..crypto.hmac_ import hmac_digest
from ..errors import StorageError

__all__ = [
    "RestRequest",
    "RestResponse",
    "string_to_sign",
    "shared_key_signature",
    "authorization_header",
    "format_request",
]

_SIGNED_HEADERS = ("Content-MD5", "Content-Length", "x-ms-date", "x-ms-version")


@dataclass
class RestRequest:
    """An HTTP request as the platform models see it."""

    method: str
    path: str  # e.g. "/jerry/movie/block?comp=block&blockid=blockid1"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        if self.method not in ("GET", "PUT", "DELETE", "HEAD", "POST"):
            raise StorageError(f"unsupported HTTP method {self.method!r}")

    @property
    def resource(self) -> str:
        """Path without the query string."""
        return self.path.split("?", 1)[0]

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    def wire_size(self) -> int:
        head = len(self.method) + len(self.path) + sum(
            len(k) + len(v) + 4 for k, v in self.headers.items()
        )
        return head + len(self.body)


@dataclass
class RestResponse:
    """An HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def header(self, name: str, default: str = "") -> str:
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    def wire_size(self) -> int:
        head = 12 + sum(len(k) + len(v) + 4 for k, v in self.headers.items())
        return head + len(self.body)


def string_to_sign(request: RestRequest, account_name: str) -> bytes:
    """Canonical string covered by the SharedKey signature.

    VERB, the signed headers in fixed order, then the canonicalized
    resource (``/account/path``), newline-separated — the shape Azure's
    SharedKey scheme uses.
    """
    parts = [request.method]
    parts.extend(request.header(h) for h in _SIGNED_HEADERS)
    parts.append(f"/{account_name}{request.resource}")
    return "\n".join(parts).encode()


def shared_key_signature(request: RestRequest, account_name: str, secret_key: bytes) -> str:
    """Base64 HMAC-SHA256 of the string-to-sign."""
    mac = hmac_digest(secret_key, string_to_sign(request, account_name))
    return base64.b64encode(mac).decode()


def authorization_header(request: RestRequest, account_name: str, secret_key: bytes) -> str:
    """Full ``SharedKey account:signature`` header value."""
    return f"SharedKey {account_name}:{shared_key_signature(request, account_name, secret_key)}"


def format_request(request: RestRequest, host: str = "myaccount.blob.core.example.net") -> str:
    """Render a request in the layout of the paper's Table 1."""
    lines = [f"{request.method} http://{host}{request.path} HTTP/1.1"]
    for key, value in request.headers.items():
        lines.append(f"{key}: {value}")
    return "\n".join(lines)
