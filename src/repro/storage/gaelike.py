"""Google-App-Engine-style service with a Secure Data Connector (Fig. 4).

Reproduces the §2.3 pipeline: the user sends an authorized data request
to the Apps front end, which forwards it to the **Tunnel Server**; the
tunnel validates the requester and establishes an encrypted connection
to the on-premises **SDC agent**; the SDC checks **resource rules** to
decide whether this viewer may touch this resource; if allowed it
performs the network request against the internal **data service**,
which validates the **signed request** (owner_id, viewer_id,
instance_id, app_id, public_key, consumer_key, nonce, token, signature
— the §2.3 field list) and returns the data.

Nonces are remembered and rejected on reuse, so a captured signed
request cannot be replayed — but, exactly as the paper observes, none
of this says anything about whether the data *stored behind* the
service was modified while at rest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fnmatch import fnmatch

from ..crypto import rsa
from ..crypto.drbg import HmacDrbg
from ..crypto.pki import Identity
from ..errors import AuthenticationError, AuthorizationError, NoSuchObjectError
from .blobstore import BlobStore, ObjectStat

__all__ = [
    "SignedRequest",
    "make_signed_request",
    "ResourceRule",
    "TunnelServer",
    "SdcAgent",
    "GaeLikeService",
]


@dataclass(frozen=True)
class SignedRequest:
    """A signed request with the §2.3 field list."""

    owner_id: str
    viewer_id: str
    instance_id: str
    app_id: str
    public_key: str  # fingerprint of the signing key
    consumer_key: str
    nonce: bytes
    token: str
    resource: str
    signature: bytes = b""

    def to_signed_bytes(self) -> bytes:
        return "|".join(
            [
                "sdc-request-v1",
                self.owner_id,
                self.viewer_id,
                self.instance_id,
                self.app_id,
                self.public_key,
                self.consumer_key,
                self.nonce.hex(),
                self.token,
                self.resource,
            ]
        ).encode()

    def wire_size(self) -> int:
        return len(self.to_signed_bytes()) + len(self.signature)


def make_signed_request(identity: Identity, rng: HmacDrbg, **fields: str) -> SignedRequest:
    """Build and sign a request with *identity*'s key."""
    request = SignedRequest(
        owner_id=fields["owner_id"],
        viewer_id=fields["viewer_id"],
        instance_id=fields.get("instance_id", "inst-1"),
        app_id=fields.get("app_id", "app-1"),
        public_key=identity.public_key.fingerprint(),
        consumer_key=fields.get("consumer_key", "consumer-1"),
        nonce=rng.generate(16),
        token=fields.get("token", "tok-1"),
        resource=fields["resource"],
    )
    signature = rsa.sign(identity.private_key, request.to_signed_bytes())
    return replace(request, signature=signature)


@dataclass(frozen=True)
class ResourceRule:
    """One SDC authorization rule: viewer pattern + resource pattern."""

    viewer_pattern: str
    resource_pattern: str
    allow: bool = True

    def matches(self, viewer_id: str, resource: str) -> bool:
        return fnmatch(viewer_id, self.viewer_pattern) and fnmatch(resource, self.resource_pattern)


class TunnelServer:
    """Validates requesters and brokers connections to the SDC."""

    def __init__(self, known_consumers: set[str] | None = None) -> None:
        self.known_consumers = known_consumers if known_consumers is not None else set()
        self.connections_established = 0

    def register_consumer(self, consumer_key: str) -> None:
        self.known_consumers.add(consumer_key)

    def validate(self, request: SignedRequest) -> None:
        """The tunnel's identity check before any connection is set up."""
        if request.consumer_key not in self.known_consumers:
            raise AuthenticationError(f"tunnel: unknown consumer {request.consumer_key!r}")
        self.connections_established += 1


class SdcAgent:
    """On-premises connector enforcing resource rules."""

    def __init__(self, rules: list[ResourceRule] | None = None) -> None:
        self.rules: list[ResourceRule] = list(rules or [])
        self.requests_checked = 0

    def add_rule(self, rule: ResourceRule) -> None:
        self.rules.append(rule)

    def authorize(self, request: SignedRequest) -> None:
        """First matching rule wins; no match means deny."""
        self.requests_checked += 1
        for rule in self.rules:
            if rule.matches(request.viewer_id, request.resource):
                if rule.allow:
                    return
                break
        raise AuthorizationError(
            f"SDC: viewer {request.viewer_id!r} may not access {request.resource!r}"
        )


class GaeLikeService:
    """The full §2.3 pipeline plus the backing data store."""

    def __init__(self, rng: HmacDrbg, name: str = "gae-like") -> None:
        self.name = name
        self.blobs = BlobStore(f"{name}/datastore")
        self.tunnel = TunnelServer()
        self.sdc = SdcAgent()
        self._registered_keys: dict[str, rsa.RsaPublicKey] = {}
        self._valid_tokens: set[str] = set()
        self._seen_nonces: set[bytes] = set()
        self._rng = rng.fork("gae")

    # -- provisioning --------------------------------------------------------

    def register_app(self, identity: Identity, consumer_key: str, token: str) -> None:
        """Register an app's public key, consumer key, and token."""
        self._registered_keys[identity.public_key.fingerprint()] = identity.public_key
        self.tunnel.register_consumer(consumer_key)
        self._valid_tokens.add(token)

    # -- GET/PUT (lower API: "only some functions such as GET and PUT") -------

    def datastore_put(self, kind: str, key: str, data: bytes, at_time: float = 0.0) -> None:
        self.blobs.put(kind, key, data, at_time=at_time)

    def datastore_get(self, kind: str, key: str) -> bytes:
        return self.blobs.get(kind, key).data

    # -- parity surface (uniform across the three platform models) ----------

    def stat(self, container: str, key: str) -> ObjectStat:
        """Uniform object metadata; ``backend`` is the service name."""
        return self.blobs.stat(container, key, backend=self.name)

    def content_digest(self, container: str, key: str) -> str:
        """SHA-256 hex of the currently stored bytes."""
        return self.blobs.content_digest(container, key)

    def list_objects(self, container: str) -> list[ObjectStat]:
        """Stats for every object in *container*, in key order."""
        return [self.stat(container, k) for k in self.blobs.list_keys(container)]

    # -- the SDC request path ---------------------------------------------------

    def handle_request(self, request: SignedRequest) -> bytes:
        """Run the full Fig. 4 pipeline for one signed request."""
        # 1. Tunnel server validates the requester.
        self.tunnel.validate(request)
        # 2. SDC resource rules authorize viewer/resource.
        self.sdc.authorize(request)
        # 3. The data service validates the signed request itself.
        self._validate_signature(request)
        # 4. Return the data.
        kind, _, key = request.resource.partition("/")
        if not key:
            raise NoSuchObjectError(f"malformed resource {request.resource!r}")
        return self.blobs.get(kind, key).data

    def _validate_signature(self, request: SignedRequest) -> None:
        public_key = self._registered_keys.get(request.public_key)
        if public_key is None:
            raise AuthenticationError("data service: unregistered public key")
        if request.token not in self._valid_tokens:
            raise AuthenticationError("data service: invalid token")
        if request.nonce in self._seen_nonces:
            raise AuthenticationError("data service: nonce replay rejected")
        if not rsa.verify(public_key, request.to_signed_bytes(), request.signature):
            raise AuthenticationError("data service: request signature invalid")
        self._seen_nonces.add(request.nonce)
