"""In-storage tampering behaviours (the Fig. 5 threat).

The provider "has the capability to play with the data in hand" (§2.4).
This module enumerates concrete ways stored data can change between the
upload and download sessions, and applies them through the blob store's
raw (check-free) mutation path:

* ``BIT_FLIP`` — silent corruption (bad disk, or careless provider);
  the stored MD5 metadata is left alone.
* ``REPLACE`` — content substituted wholesale, metadata left alone.
* ``TRUNCATE`` — tail of the object lost, metadata left alone.
* ``FIXUP_MD5`` — content substituted **and the stored MD5 recomputed
  to match**: a deliberate cover-up only the provider can perform.
  Against the Azure model this defeats the returned-MD5 check; against
  the AWS model even plain REPLACE is invisible (MD5 is recomputed on
  the way out anyway).
* ``NONE`` — control case.

The Fig. 5 experiment sweeps (platform x tamper mode) and scores
detection and attribution.
"""

from __future__ import annotations

import enum

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..errors import StorageError
from .blobstore import BlobStore, StoredObject

__all__ = ["TamperMode", "apply_tamper"]


class TamperMode(enum.Enum):
    NONE = "none"
    BIT_FLIP = "bit-flip"
    REPLACE = "replace"
    TRUNCATE = "truncate"
    FIXUP_MD5 = "fixup-md5"

    @property
    def alters_data(self) -> bool:
        return self is not TamperMode.NONE

    @property
    def covers_tracks(self) -> bool:
        """True when the stored digest is fixed up to match."""
        return self is TamperMode.FIXUP_MD5


def apply_tamper(
    store: BlobStore,
    container: str,
    key: str,
    mode: TamperMode,
    rng: HmacDrbg,
) -> StoredObject:
    """Apply *mode* to a stored object; returns the post-tamper object."""
    obj = store.get(container, key)
    if mode is TamperMode.NONE:
        return obj
    if not obj.data:
        raise StorageError("cannot tamper with an empty object")
    if mode is TamperMode.BIT_FLIP:
        index = rng.randint(0, len(obj.data) - 1)
        bit = 1 << rng.randint(0, 7)
        mutated = bytearray(obj.data)
        mutated[index] ^= bit
        return store.overwrite_raw(container, key, data=bytes(mutated))
    if mode is TamperMode.REPLACE:
        replacement = rng.generate(len(obj.data))
        return store.overwrite_raw(container, key, data=replacement)
    if mode is TamperMode.TRUNCATE:
        keep = max(1, len(obj.data) // 2)
        return store.overwrite_raw(container, key, data=obj.data[:keep])
    if mode is TamperMode.FIXUP_MD5:
        replacement = rng.generate(len(obj.data))
        return store.overwrite_raw(
            container, key, data=replacement, content_md5=digest("md5", replacement)
        )
    raise StorageError(f"unhandled tamper mode {mode}")  # pragma: no cover
