"""Windows-Azure-style storage service (paper §2.2, Table 1, Fig. 3).

Faithful to the behaviours the paper calls out:

* account provisioning hands the user a **256-bit secret key**;
* every request carries an ``Authorization: SharedKey`` HMAC-SHA256
  signature which the server verifies;
* ``PUT`` may carry ``Content-MD5``; the server checks it against the
  body and **stores it** alongside the blob;
* ``GET`` returns the **stored** ``Content-MD5`` ("the original MD5_1
  will be sent", §2.4) — *not* a recomputation, which is precisely why
  naive tampering is detectable but metadata-fixing tampering is not;
* the three data items: Blobs (<= 50 GB), Tables, and Queues (< 8 KB
  messages).

The service is deliberately honest about its checks and nothing more —
the integrity gap it inherits is the paper's subject, not a bug.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.hmac_ import constant_time_equals
from ..errors import AuthenticationError, IntegrityError, NoSuchObjectError, StorageError
from .account import Account, AccountDirectory
from .blobstore import BlobStore, ObjectStat
from .rest import RestRequest, RestResponse, authorization_header, shared_key_signature

__all__ = ["AzureLikeService", "AzureLikeClient", "MAX_BLOB_SIZE", "MAX_QUEUE_MESSAGE"]

MAX_BLOB_SIZE = 50 * 1024**3  # "Blobs (up to 50GB)"
MAX_QUEUE_MESSAGE = 8 * 1024  # "Queues (<8k)"


@dataclass
class _Queue:
    messages: list[bytes] = field(default_factory=list)


class AzureLikeService:
    """Server side: authenticates SharedKey requests, stores blobs."""

    def __init__(self, rng: HmacDrbg, name: str = "azure-like") -> None:
        self.name = name
        self.accounts = AccountDirectory(rng)
        self.blobs = BlobStore(f"{name}/blobs")
        self._queues: dict[tuple[str, str], _Queue] = {}
        self._tables: dict[tuple[str, str], dict[str, dict[str, str]]] = {}
        # (account, container, key) -> blockid -> staged bytes
        self._staged_blocks: dict[tuple[str, str, str], dict[str, bytes]] = {}
        self.request_log: list[tuple[str, str, int]] = []  # (method, path, status)

    # -- portal ------------------------------------------------------------

    def create_account(self, name: str) -> Account:
        """Provision an account; the returned object carries the
        256-bit secret key the user must keep."""
        return self.accounts.create(name)

    # -- request handling -----------------------------------------------------

    def handle(self, request: RestRequest, at_time: float = 0.0) -> RestResponse:
        """Authenticate and dispatch one REST request."""
        try:
            account = self._authenticate(request)
        except AuthenticationError as exc:
            return self._log(request, RestResponse(status=403, body=str(exc).encode()))
        try:
            if request.path.startswith(f"/{account.name}/queue/"):
                response = self._handle_queue(account, request)
            elif request.path.startswith(f"/{account.name}/table/"):
                response = self._handle_table(account, request)
            else:
                response = self._handle_blob(account, request, at_time)
        except IntegrityError as exc:
            response = RestResponse(status=400, body=str(exc).encode())
        except NoSuchObjectError as exc:
            response = RestResponse(status=404, body=str(exc).encode())
        except StorageError as exc:
            response = RestResponse(status=400, body=str(exc).encode())
        return self._log(request, response)

    def _log(self, request: RestRequest, response: RestResponse) -> RestResponse:
        self.request_log.append((request.method, request.path, response.status))
        return response

    def _authenticate(self, request: RestRequest) -> Account:
        """Verify the ``SharedKey account:signature`` header."""
        auth = request.header("Authorization")
        if not auth.startswith("SharedKey "):
            raise AuthenticationError("missing SharedKey authorization")
        try:
            account_name, presented = auth[len("SharedKey ") :].split(":", 1)
        except ValueError as exc:
            raise AuthenticationError("malformed authorization header") from exc
        account = self.accounts.by_name(account_name)
        expected = shared_key_signature(request, account_name, account.secret_key)
        if not constant_time_equals(expected.encode(), presented.encode()):
            raise AuthenticationError("SharedKey signature mismatch")
        if not request.header("x-ms-date"):
            raise AuthenticationError("missing x-ms-date header")
        return account

    # -- blobs --------------------------------------------------------------

    @staticmethod
    def _query_params(request: RestRequest) -> dict[str, str]:
        if "?" not in request.path:
            return {}
        query = request.path.split("?", 1)[1]
        return dict(pair.split("=", 1) for pair in query.split("&") if "=" in pair)

    def _handle_blob(self, account: Account, request: RestRequest, at_time: float) -> RestResponse:
        container, key = self._parse_blob_path(account, request)
        params = self._query_params(request)
        if request.method == "PUT":
            if len(request.body) > MAX_BLOB_SIZE:
                raise StorageError(f"blob exceeds {MAX_BLOB_SIZE} bytes")
            declared = request.header("Content-Length")
            if declared and int(declared) != len(request.body):
                raise IntegrityError("Content-Length does not match body")
            content_md5_b64 = request.header("Content-MD5")
            if content_md5_b64:
                content_md5 = base64.b64decode(content_md5_b64)
                if content_md5 != digest("md5", request.body):
                    # "The MD5 checksum is checked by the server. If it
                    # does not match, an error is returned."
                    raise IntegrityError("Content-MD5 mismatch")
            else:
                content_md5 = digest("md5", request.body)
            if params.get("comp") == "block":
                # Table 1's operation: stage one block; not readable
                # until the block list commits it.
                block_id = params.get("blockid", "")
                if not block_id:
                    raise StorageError("comp=block requires a blockid")
                staging = self._staged_blocks.setdefault((account.name, container, key), {})
                staging[block_id] = request.body
                return RestResponse(
                    status=201,
                    headers={"Content-MD5": base64.b64encode(content_md5).decode()},
                )
            if params.get("comp") == "blocklist":
                # Commit: the body names the staged blocks in order.
                staging = self._staged_blocks.get((account.name, container, key), {})
                block_ids = [b for b in request.body.decode().split("\n") if b]
                missing = [b for b in block_ids if b not in staging]
                if missing:
                    raise StorageError(f"unstaged block ids in block list: {missing}")
                assembled = b"".join(staging[b] for b in block_ids)
                blob_md5 = digest("md5", assembled)
                self.blobs.put(container, key, assembled, blob_md5, at_time=at_time)
                self._staged_blocks.pop((account.name, container, key), None)
                return RestResponse(
                    status=201,
                    headers={"Content-MD5": base64.b64encode(blob_md5).decode()},
                )
            self.blobs.put(container, key, request.body, content_md5, at_time=at_time)
            return RestResponse(
                status=201,
                headers={"Content-MD5": base64.b64encode(content_md5).decode()},
            )
        if request.method == "GET":
            obj = self.blobs.get(container, key)
            # Return the *stored* MD5 — the Azure behaviour of §2.4.
            return RestResponse(
                status=200,
                headers={
                    "Content-MD5": base64.b64encode(obj.content_md5).decode(),
                    "Content-Length": str(obj.size),
                },
                body=obj.data,
            )
        if request.method == "DELETE":
            self.blobs.delete(container, key)
            return RestResponse(status=202)
        raise StorageError(f"unsupported blob operation {request.method}")

    def _parse_blob_path(self, account: Account, request: RestRequest) -> tuple[str, str]:
        parts = request.resource.strip("/").split("/")
        if len(parts) < 3 or parts[0] != account.name:
            raise StorageError(f"malformed blob path {request.path!r}")
        return parts[1], "/".join(parts[2:])

    # -- parity surface (uniform across the three platform models) ----------

    def stat(self, container: str, key: str) -> ObjectStat:
        """Uniform object metadata; ``backend`` is the service name."""
        return self.blobs.stat(container, key, backend=self.name)

    def content_digest(self, container: str, key: str) -> str:
        """SHA-256 hex of the currently stored bytes."""
        return self.blobs.content_digest(container, key)

    def list_objects(self, container: str) -> list[ObjectStat]:
        """Stats for every object in *container*, in key order."""
        return [self.stat(container, k) for k in self.blobs.list_keys(container)]

    # -- queues (<8k messages) ------------------------------------------------

    def _handle_queue(self, account: Account, request: RestRequest) -> RestResponse:
        queue_name = request.resource.strip("/").split("/")[-1]
        queue = self._queues.setdefault((account.name, queue_name), _Queue())
        if request.method == "PUT":
            if len(request.body) >= MAX_QUEUE_MESSAGE:
                raise StorageError(f"queue message must be < {MAX_QUEUE_MESSAGE} bytes")
            queue.messages.append(request.body)
            return RestResponse(status=201)
        if request.method == "GET":
            if not queue.messages:
                return RestResponse(status=204)
            return RestResponse(status=200, body=queue.messages.pop(0))
        raise StorageError(f"unsupported queue operation {request.method}")

    # -- tables ----------------------------------------------------------------

    def _handle_table(self, account: Account, request: RestRequest) -> RestResponse:
        parts = request.resource.strip("/").split("/")
        if len(parts) < 4:
            raise StorageError(f"malformed table path {request.path!r}")
        table_name, entity_key = parts[2], parts[3]
        table = self._tables.setdefault((account.name, table_name), {})
        if request.method == "PUT":
            properties = dict(
                pair.split("=", 1) for pair in request.body.decode().split("&") if "=" in pair
            )
            table[entity_key] = properties
            return RestResponse(status=201)
        if request.method == "GET":
            if entity_key not in table:
                raise NoSuchObjectError(f"entity {entity_key!r} not found")
            body = "&".join(f"{k}={v}" for k, v in sorted(table[entity_key].items()))
            return RestResponse(status=200, body=body.encode())
        raise StorageError(f"unsupported table operation {request.method}")


class AzureLikeClient:
    """User side: builds signed requests, checks response integrity."""

    def __init__(self, service: AzureLikeService, account: Account, clock=None) -> None:
        self.service = service
        self.account = account
        self._clock = clock
        self.last_verified_md5: bytes | None = None

    def _date_header(self) -> str:
        t = self._clock.now if self._clock is not None else 0.0
        return f"sim-t={t:.3f}"

    def _signed(self, request: RestRequest) -> RestRequest:
        request.headers["x-ms-date"] = self._date_header()
        request.headers["x-ms-version"] = "2009-09-19"
        request.headers["Authorization"] = authorization_header(
            request, self.account.name, self.account.secret_key
        )
        return request

    def build_put(self, container: str, key: str, data: bytes,
                  block_id: str = "blockid1") -> RestRequest:
        """The Table-1 PUT: stage one block, Content-MD5 + SharedKey."""
        request = RestRequest(
            method="PUT",
            path=(
                f"/{self.account.name}/{container}/{key}"
                f"?comp=block&blockid={block_id}&timeout=30"
            ),
            headers={
                "Content-Length": str(len(data)),
                "Content-MD5": base64.b64encode(digest("md5", data)).decode(),
            },
            body=data,
        )
        return self._signed(request)

    def build_commit(self, container: str, key: str, block_ids: list[str]) -> RestRequest:
        """The PUT Block List that commits staged blocks in order."""
        body = "\n".join(block_ids).encode()
        request = RestRequest(
            method="PUT",
            path=f"/{self.account.name}/{container}/{key}?comp=blocklist",
            headers={
                "Content-Length": str(len(body)),
                "Content-MD5": base64.b64encode(digest("md5", body)).decode(),
            },
            body=body,
        )
        return self._signed(request)

    def build_get(self, container: str, key: str) -> RestRequest:
        request = RestRequest(
            method="GET",
            path=f"/{self.account.name}/{container}/{key}",
        )
        return self._signed(request)

    def put_blob(self, container: str, key: str, data: bytes, at_time: float = 0.0,
                 block_size: int | None = None) -> RestResponse:
        """Upload via the block protocol: stage block(s), then commit.

        *block_size* splits large payloads into multiple staged blocks
        (default: one block).  Returns the commit response, whose
        Content-MD5 is the digest the server persisted.
        """
        if block_size is None or block_size >= len(data) or len(data) == 0:
            chunks = [data]
        else:
            chunks = [data[i : i + block_size] for i in range(0, len(data), block_size)]
        block_ids = []
        for index, chunk in enumerate(chunks, start=1):
            block_id = f"blockid{index}"
            response = self.service.handle(
                self.build_put(container, key, chunk, block_id), at_time
            )
            if not response.ok:
                raise StorageError(
                    f"PUT block failed ({response.status}): {response.body.decode()}"
                )
            block_ids.append(block_id)
        response = self.service.handle(self.build_commit(container, key, block_ids), at_time)
        if not response.ok:
            raise StorageError(
                f"PUT blocklist failed ({response.status}): {response.body.decode()}"
            )
        return response

    def get_blob(self, container: str, key: str, verify: bool = True) -> bytes:
        """Download; with *verify*, check body against returned MD5.

        Note this verifies only the download *session* — if the server
        returned a fixed-up MD5 for tampered data, verification passes.
        That gap is the paper's Fig. 5.
        """
        response = self.service.handle(self.build_get(container, key))
        if not response.ok:
            raise StorageError(f"GET failed ({response.status}): {response.body.decode()}")
        returned_md5 = base64.b64decode(response.header("Content-MD5"))
        if verify:
            if returned_md5 != digest("md5", response.body):
                raise IntegrityError("downloaded data does not match returned Content-MD5")
            self.last_verified_md5 = returned_md5
        return response.body
