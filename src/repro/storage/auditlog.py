"""Hash-chained, checkpoint-signed storage audit log.

The paper's future-work direction — continuously *provable* storage
integrity rather than per-dispute evidence — leads naturally to an
append-only commitment structure.  This module implements the simplest
sound one:

* every storage operation appends an :class:`AuditEntry`; each entry's
  chain hash is ``H(prev_chain_hash || canonical entry bytes)``, so the
  log commits to its entire history;
* every *checkpoint_interval* entries the operator signs the current
  chain head — a :class:`Checkpoint` the operator cannot later disown;
* :func:`verify_chain` re-derives every hash and checks every
  checkpoint signature, so truncation, reordering, insertion, or
  in-place edits after the latest signed checkpoint-covered entry are
  all detectable by anyone holding the log and the public key.

What this adds over TPNR receipts: a provider can *voluntarily* commit
to object digests over time, letting an auditor pinpoint *when* a
stored object changed (between which checkpoints) instead of only that
it changed somewhere between upload and download.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import rsa
from ..crypto.hashes import digest
from ..crypto.pki import Identity, KeyRegistry
from ..errors import IntegrityError, StorageError

__all__ = ["AuditEntry", "Checkpoint", "AuditLog", "verify_chain"]

_GENESIS = b"\x00" * 32
_CHECKPOINT_DOMAIN = b"repro-audit-checkpoint|"


@dataclass(frozen=True)
class AuditEntry:
    """One logged storage operation.

    ``version`` selects the canonical encoding.  v1 serialized the
    timestamp as ``repr(float)`` — a representation-dependent encoding
    (``repr(0.1)`` vs ``repr(0.1000000000000000055511151231257827)``
    can differ across producers for the same stored value, and any
    re-serialization that perturbs the float breaks the chain).  v2
    encodes fixed-width integer microseconds instead, under a new
    domain tag so the two encodings can never collide.  Old v1 chains
    keep verifying: verification always uses the entry's own version.
    """

    index: int
    at_time: float
    operation: str  # "put" | "get" | "delete" | custom
    container: str
    key: str
    object_digest: bytes  # digest of the object bytes after the op
    chain_hash: bytes = b""
    version: int = 2

    def canonical_bytes(self) -> bytes:
        if self.version == 1:
            time_field = repr(self.at_time)
        elif self.version == 2:
            time_field = f"{int(round(self.at_time * 1e6)):020d}"
        else:
            raise IntegrityError(f"unknown audit entry version {self.version}")
        return "|".join(
            [
                f"audit-entry-v{self.version}",
                str(self.index),
                time_field,
                self.operation,
                self.container,
                self.key,
                self.object_digest.hex(),
            ]
        ).encode()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "at_time": self.at_time,
            "operation": self.operation,
            "container": self.container,
            "key": self.key,
            "object_digest": self.object_digest.hex(),
            "chain_hash": self.chain_hash.hex(),
            "version": self.version,
        }

    @staticmethod
    def from_dict(payload: dict) -> "AuditEntry":
        return AuditEntry(
            index=int(payload["index"]),
            at_time=float(payload["at_time"]),
            operation=payload["operation"],
            container=payload["container"],
            key=payload["key"],
            object_digest=bytes.fromhex(payload["object_digest"]),
            chain_hash=bytes.fromhex(payload["chain_hash"]),
            version=int(payload.get("version", 1)),
        )


@dataclass(frozen=True)
class Checkpoint:
    """A signed commitment to the chain head at some index."""

    upto_index: int
    chain_hash: bytes
    signature: bytes

    def signed_bytes(self) -> bytes:
        return _CHECKPOINT_DOMAIN + str(self.upto_index).encode() + b"|" + self.chain_hash

    def to_dict(self) -> dict:
        return {
            "upto_index": self.upto_index,
            "chain_hash": self.chain_hash.hex(),
            "signature": self.signature.hex(),
        }

    @staticmethod
    def from_dict(payload: dict) -> "Checkpoint":
        return Checkpoint(
            upto_index=int(payload["upto_index"]),
            chain_hash=bytes.fromhex(payload["chain_hash"]),
            signature=bytes.fromhex(payload["signature"]),
        )


class AuditLog:
    """Append-only operation log with periodic signed checkpoints."""

    def __init__(self, operator: Identity, checkpoint_interval: int = 8) -> None:
        if checkpoint_interval < 1:
            raise StorageError("checkpoint interval must be >= 1")
        self.operator = operator
        self.checkpoint_interval = checkpoint_interval
        self.entries: list[AuditEntry] = []
        self.checkpoints: list[Checkpoint] = []
        self._head = _GENESIS

    def append(
        self,
        operation: str,
        container: str,
        key: str,
        object_bytes: bytes,
        at_time: float = 0.0,
    ) -> AuditEntry:
        """Log one operation; auto-checkpoints on the interval."""
        entry = AuditEntry(
            index=len(self.entries),
            at_time=at_time,
            operation=operation,
            container=container,
            key=key,
            object_digest=digest("sha256", object_bytes),
        )
        self._head = digest("sha256", self._head + entry.canonical_bytes())
        entry = AuditEntry(**{**entry.__dict__, "chain_hash": self._head})
        self.entries.append(entry)
        if len(self.entries) % self.checkpoint_interval == 0:
            self.checkpoint()
        return entry

    def checkpoint(self) -> Checkpoint:
        """Sign the current chain head."""
        if not self.entries:
            raise StorageError("nothing to checkpoint")
        checkpoint = Checkpoint(
            upto_index=len(self.entries) - 1,
            chain_hash=self._head,
            signature=b"",
        )
        signature = rsa.sign(self.operator.private_key, checkpoint.signed_bytes())
        checkpoint = Checkpoint(
            upto_index=checkpoint.upto_index,
            chain_hash=checkpoint.chain_hash,
            signature=signature,
        )
        self.checkpoints.append(checkpoint)
        return checkpoint

    # -- export / import ---------------------------------------------------

    def dump(self) -> dict:
        """Portable form of the whole log, suitable for handing to an
        auditor (JSON-safe: hashes and signatures as hex)."""
        return {
            "operator": self.operator.name,
            "checkpoint_interval": self.checkpoint_interval,
            "entries": [entry.to_dict() for entry in self.entries],
            "checkpoints": [cp.to_dict() for cp in self.checkpoints],
        }

    @staticmethod
    def load(
        payload: dict, registry: KeyRegistry
    ) -> tuple[list[AuditEntry], list[Checkpoint], int]:
        """Parse a :meth:`dump` payload and verify it end to end.

        Returns ``(entries, checkpoints, covered)`` where *covered* is
        the highest entry index a valid checkpoint signs (-1 if none).

        Truncation rule: a log whose retained checkpoints all still
        refer to existing entries is **accepted** — cutting exactly at
        a checkpoint boundary (later checkpoints removed too) is
        indistinguishable from an honestly shorter log, and the lower
        *covered* index is the auditor's tell (compare it against the
        latest checkpoint obtained out of band).  Any cut that keeps a
        checkpoint referring past the new end — e.g. truncating between
        checkpoints without also discarding the later ones — **raises**
        :class:`IntegrityError`; likewise any edit, reorder, or
        insertion anywhere in the chain.
        """
        entries = [AuditEntry.from_dict(e) for e in payload["entries"]]
        checkpoints = [Checkpoint.from_dict(c) for c in payload["checkpoints"]]
        covered = verify_chain(entries, checkpoints, registry, payload["operator"])
        return entries, checkpoints, covered

    # -- query helpers ----------------------------------------------------

    def digest_history(self, container: str, key: str) -> list[AuditEntry]:
        """All logged states of one object, oldest first."""
        return [e for e in self.entries if e.container == container and e.key == key]

    def last_change_between_checkpoints(
        self, container: str, key: str, expected_digest: bytes
    ) -> tuple[int | None, int | None]:
        """Narrow down when an object stopped matching *expected_digest*.

        Returns (last_matching_index, first_mismatching_index); either
        side may be None.
        """
        last_match = first_mismatch = None
        for entry in self.digest_history(container, key):
            if entry.object_digest == expected_digest:
                last_match = entry.index
            elif first_mismatch is None and (last_match is None or entry.index > last_match):
                first_mismatch = entry.index
        return last_match, first_mismatch


def verify_chain(
    entries: list[AuditEntry],
    checkpoints: list[Checkpoint],
    registry: KeyRegistry,
    operator_name: str,
) -> int:
    """Verify an exported log.

    Re-derives the hash chain from genesis and validates every
    checkpoint signature against the chain.  Returns the highest entry
    index covered by a valid checkpoint (-1 if none); raises
    :class:`IntegrityError` on any inconsistency.
    """
    head = _GENESIS
    for position, entry in enumerate(entries):
        if entry.index != position:
            raise IntegrityError(f"entry index {entry.index} out of order at {position}")
        head = digest("sha256", head + entry.canonical_bytes())
        if entry.chain_hash != head:
            raise IntegrityError(f"chain hash mismatch at entry {position}")
    public = registry.lookup(operator_name)
    covered = -1
    for checkpoint in checkpoints:
        if checkpoint.upto_index >= len(entries):
            raise IntegrityError("checkpoint refers past the end of the log (truncation?)")
        expected_head = entries[checkpoint.upto_index].chain_hash
        if checkpoint.chain_hash != expected_head:
            raise IntegrityError(f"checkpoint at {checkpoint.upto_index} does not match the chain")
        if not rsa.verify(public, checkpoint.signed_bytes(), checkpoint.signature):
            raise IntegrityError(f"checkpoint signature invalid at {checkpoint.upto_index}")
        covered = max(covered, checkpoint.upto_index)
    return covered
