"""Cloud-storage substrate: the three platform models of paper §2.

* :mod:`repro.storage.azurelike` — SharedKey HMAC REST blobs/tables/
  queues (Table 1, Fig. 3); stored-MD5-returned-on-GET semantics.
* :mod:`repro.storage.s3like` — object API + Import/Export jobs with
  manifest/signature files and device shipping (Fig. 2);
  recomputed-MD5 semantics.
* :mod:`repro.storage.gaelike` — Secure Data Connector pipeline:
  tunnel validation, resource rules, signed requests (Fig. 4).

Plus the shared machinery: the blob store, accounts, the REST model,
surface-mail shipping, and the tampering behaviours of Fig. 5.
"""

from . import account, auditlog, azurelike, blobstore, gaelike, rest, s3like, shipping, tamper
from .account import Account, AccountDirectory
from .auditlog import AuditEntry, AuditLog, Checkpoint, verify_chain
from .azurelike import MAX_BLOB_SIZE, MAX_QUEUE_MESSAGE, AzureLikeClient, AzureLikeService
from .blobstore import BlobStore, ObjectStat, StoredObject
from .gaelike import (
    GaeLikeService,
    ResourceRule,
    SdcAgent,
    SignedRequest,
    TunnelServer,
    make_signed_request,
)
from .rest import (
    RestRequest,
    RestResponse,
    authorization_header,
    format_request,
    shared_key_signature,
    string_to_sign,
)
from .s3like import (
    ImportExportLog,
    JobReport,
    ManifestFile,
    S3LikeService,
    SignatureFile,
    encode_signature_file,
)
from .shipping import (
    DAY_SECONDS,
    EXPRESS,
    GROUND,
    OVERNIGHT,
    CarrierSpec,
    ShippingCarrier,
    StorageDevice,
)
from .tamper import TamperMode, apply_tamper

__all__ = [
    "account",
    "auditlog",
    "AuditEntry",
    "AuditLog",
    "Checkpoint",
    "verify_chain",
    "azurelike",
    "blobstore",
    "gaelike",
    "rest",
    "s3like",
    "shipping",
    "tamper",
    "Account",
    "AccountDirectory",
    "MAX_BLOB_SIZE",
    "MAX_QUEUE_MESSAGE",
    "AzureLikeClient",
    "AzureLikeService",
    "BlobStore",
    "ObjectStat",
    "StoredObject",
    "GaeLikeService",
    "ResourceRule",
    "SdcAgent",
    "SignedRequest",
    "TunnelServer",
    "make_signed_request",
    "RestRequest",
    "RestResponse",
    "authorization_header",
    "format_request",
    "shared_key_signature",
    "string_to_sign",
    "ImportExportLog",
    "JobReport",
    "ManifestFile",
    "S3LikeService",
    "SignatureFile",
    "encode_signature_file",
    "DAY_SECONDS",
    "EXPRESS",
    "GROUND",
    "OVERNIGHT",
    "CarrierSpec",
    "ShippingCarrier",
    "StorageDevice",
    "TamperMode",
    "apply_tamper",
]
