"""Surface-mail shipping of storage devices (paper §2.1, §6).

AWS Import/Export moves bulk data by shipping physical devices
("Cloud storage is only attractive to large volume (TB) data backup...
normally adopt the surface mail as the ship method (FedEx, etc)").
The S6 experiment compares protocol time against these transit times,
so the carrier model is a first-class substrate: transit time is days,
drawn deterministically from the run's DRBG, with optional loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..crypto.drbg import HmacDrbg
from ..errors import ShippingError, StorageError
from ..net.events import Simulator

__all__ = ["StorageDevice", "ShippingCarrier", "CarrierSpec", "DAY_SECONDS"]

DAY_SECONDS = 86_400.0


@dataclass
class StorageDevice:
    """A portable storage device: payload files plus attached metadata
    (the AWS flow tapes the *signature file* to the device)."""

    device_id: str
    capacity_bytes: int
    files: dict[str, bytes] = field(default_factory=dict)
    attached_documents: dict[str, bytes] = field(default_factory=dict)

    def used_bytes(self) -> int:
        return sum(len(v) for v in self.files.values())

    def write_file(self, name: str, data: bytes) -> None:
        projected = self.used_bytes() - len(self.files.get(name, b"")) + len(data)
        if projected > self.capacity_bytes:
            raise StorageError(
                f"device {self.device_id} full: {projected} > {self.capacity_bytes} bytes"
            )
        self.files[name] = data

    def wipe(self) -> None:
        self.files.clear()


@dataclass(frozen=True)
class CarrierSpec:
    """Transit-time distribution: uniform in [min_days, max_days]."""

    name: str = "ground"
    min_days: float = 2.0
    max_days: float = 5.0
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.min_days < 0 or self.max_days < self.min_days:
            raise ShippingError("invalid transit-day range")
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ShippingError("loss_prob must be a probability")

    def sample_transit_seconds(self, rng: HmacDrbg) -> float:
        span = self.max_days - self.min_days
        days = self.min_days + rng.random() * span
        return days * DAY_SECONDS


#: Typical service levels, used by the S6 sweep.
GROUND = CarrierSpec("ground", 3.0, 7.0)
EXPRESS = CarrierSpec("express", 1.0, 2.0)
OVERNIGHT = CarrierSpec("overnight", 0.8, 1.2)


class ShippingCarrier:
    """Schedules device arrivals on the discrete-event simulator."""

    def __init__(self, sim: Simulator, rng: HmacDrbg, spec: CarrierSpec = GROUND) -> None:
        self.sim = sim
        self._rng = rng.fork(f"carrier/{spec.name}")
        self.spec = spec
        self.shipments_sent = 0
        self.shipments_lost = 0

    def ship(
        self,
        device: StorageDevice,
        origin: str,
        destination: str,
        on_arrival: Callable[[StorageDevice], None],
        on_lost: Callable[[StorageDevice], None] | None = None,
    ) -> float:
        """Dispatch *device*; returns the sampled transit seconds.

        ``on_arrival`` fires at the arrival time; lost shipments fire
        ``on_lost`` (if given) at the would-be arrival time instead.
        """
        self.shipments_sent += 1
        transit = self.spec.sample_transit_seconds(self._rng)
        if self._rng.random() < self.spec.loss_prob:
            self.shipments_lost += 1
            if on_lost is not None:
                self.sim.schedule(transit, lambda: on_lost(device))
            return transit
        self.sim.schedule(transit, lambda: on_arrival(device))
        return transit
