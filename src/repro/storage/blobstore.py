"""The storage engine under every simulated platform.

A :class:`BlobStore` maps (container, key) to :class:`StoredObject`
versions.  It deliberately exposes *provider-side* mutation
(:meth:`overwrite_raw`) — the whole point of the paper is that the
service provider "has the capability to play with the data in hand"
(§2.4), so the substrate must let a malicious provider do exactly that
without going through any integrity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..crypto.hashes import digest
from ..errors import NoSuchObjectError, StorageError

__all__ = ["StoredObject", "ObjectStat", "BlobStore"]


@dataclass(frozen=True)
class StoredObject:
    """One stored blob version plus server-side metadata.

    ``content_md5`` is whatever the *platform* chose to persist at
    upload time (Azure model) — it is metadata, not a recomputation,
    which is exactly the distinction §2.4 turns on.
    """

    container: str
    key: str
    data: bytes
    content_md5: bytes
    metadata: dict[str, str] = field(default_factory=dict)
    created_at: float = 0.0
    version: int = 1

    @property
    def size(self) -> int:
        return len(self.data)

    def actual_md5(self) -> bytes:
        """MD5 of the bytes currently stored (recomputed, AWS model)."""
        return digest("md5", self.data)

    def is_consistent(self) -> bool:
        """True when stored metadata MD5 still matches the bytes."""
        return self.content_md5 == self.actual_md5()


@dataclass(frozen=True)
class ObjectStat:
    """Uniform per-object metadata across all three platform models.

    ``content_digest`` is the SHA-256 of the bytes *currently* stored
    (recomputed at stat time), while ``stored_md5`` is the platform's
    persisted MD5 metadata.  The two drift exactly when someone has
    been "playing with the data in hand", which is what the replication
    verifier keys on.
    """

    backend: str
    container: str
    key: str
    size: int
    version: int
    created_at: float
    content_digest: str
    stored_md5: str

    def observable(self) -> tuple:
        """The backend-independent projection (equivalence tests)."""
        return (self.container, self.key, self.size, self.version,
                self.created_at, self.content_digest, self.stored_md5)


class BlobStore:
    """In-memory container/key -> object store with version counters."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self._objects: dict[tuple[str, str], StoredObject] = {}
        self.put_count = 0
        self.get_count = 0

    # -- normal data path -------------------------------------------------

    def put(
        self,
        container: str,
        key: str,
        data: bytes,
        content_md5: bytes | None = None,
        metadata: dict[str, str] | None = None,
        at_time: float = 0.0,
    ) -> StoredObject:
        """Store a blob.  ``content_md5`` defaults to the true digest."""
        if not container or not key:
            raise StorageError("container and key must be non-empty")
        previous = self._objects.get((container, key))
        obj = StoredObject(
            container=container,
            key=key,
            data=bytes(data),
            content_md5=content_md5 if content_md5 is not None else digest("md5", data),
            metadata=dict(metadata or {}),
            created_at=at_time,
            version=(previous.version + 1) if previous else 1,
        )
        self._objects[(container, key)] = obj
        self.put_count += 1
        return obj

    def get(self, container: str, key: str) -> StoredObject:
        """Fetch a blob; raises :class:`NoSuchObjectError` if absent."""
        try:
            obj = self._objects[(container, key)]
        except KeyError as exc:
            raise NoSuchObjectError(f"{container}/{key} does not exist") from exc
        self.get_count += 1
        return obj

    def delete(self, container: str, key: str) -> None:
        try:
            del self._objects[(container, key)]
        except KeyError as exc:
            raise NoSuchObjectError(f"{container}/{key} does not exist") from exc

    def exists(self, container: str, key: str) -> bool:
        return (container, key) in self._objects

    def list_keys(self, container: str) -> list[str]:
        return sorted(k for (c, k) in self._objects if c == container)

    def objects(self) -> list[StoredObject]:
        """Every stored object, in (container, key) order."""
        return [self._objects[k] for k in sorted(self._objects)]

    def total_bytes(self) -> int:
        return sum(o.size for o in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    # -- parity surface ----------------------------------------------------

    def stat(self, container: str, key: str, backend: str | None = None) -> ObjectStat:
        """Uniform metadata view of one object (no get_count side effect)."""
        try:
            obj = self._objects[(container, key)]
        except KeyError as exc:
            raise NoSuchObjectError(f"{container}/{key} does not exist") from exc
        return ObjectStat(
            backend=backend if backend is not None else self.name,
            container=container,
            key=key,
            size=obj.size,
            version=obj.version,
            created_at=obj.created_at,
            content_digest=digest("sha256", obj.data).hex(),
            stored_md5=obj.content_md5.hex(),
        )

    def content_digest(self, container: str, key: str) -> str:
        """SHA-256 hex of the bytes currently stored."""
        return self.stat(container, key).content_digest

    # -- provider-side (malicious) path ------------------------------------

    def overwrite_raw(
        self,
        container: str,
        key: str,
        data: bytes | None = None,
        content_md5: bytes | None = None,
    ) -> StoredObject:
        """Mutate a stored object *without* any integrity checks.

        Models the provider (or a compromised disk) changing bytes
        and/or the stored digest behind the user's back.  Raises if the
        object does not exist — tampering cannot create objects.
        """
        if (container, key) not in self._objects:
            raise NoSuchObjectError(f"{container}/{key} does not exist")
        obj = self._objects[(container, key)]
        changes: dict = {}
        if data is not None:
            changes["data"] = bytes(data)
        if content_md5 is not None:
            changes["content_md5"] = content_md5
        tampered = replace(obj, **changes) if changes else obj
        self._objects[(container, key)] = tampered
        return tampered
