"""AWS-style storage: S3-ish object API + Import/Export jobs (Fig. 2).

Reproduces the data-processing approach of paper §2.1:

* The user stores job parameters (AccessKeyID, DeviceID, Destination,
  ...) in a **manifest file**, signs it, and e-mails it to the
  provider.
* A **signature file** — naming the MAC algorithm and binding the job
  ID to the manifest digest — travels attached to the shipped device
  and lets the provider "uniquely identify and authenticate the user
  request".
* On receiving device + signature file the provider validates both,
  copies the data into the store, and e-mails back a status report:
  bytes saved, **the MD5 of the bytes** (recomputed from what it
  received!), load status, and the location of the AWS-Import/Export-
  style log listing key names, byte counts and MD5 checksums.
* Export (download) mirrors the flow; the returned MD5s are again
  **recomputed** from whatever is in storage — the "MD5_2" behaviour
  of §2.4, which silently launders in-storage tampering.

The direct (Internet) object API recomputes digests on GET as well,
matching that platform behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.hmac_ import constant_time_equals, hmac_digest
from ..errors import AuthenticationError, IntegrityError, NoSuchObjectError, StorageError
from .account import Account, AccountDirectory
from .blobstore import BlobStore, ObjectStat
from .shipping import StorageDevice

__all__ = [
    "ManifestFile",
    "SignatureFile",
    "ImportExportLog",
    "JobReport",
    "S3LikeService",
]

_SIGFILE_ALGORITHM = "HMAC-SHA256"


@dataclass(frozen=True)
class ManifestFile:
    """Import/export job parameters, as §2.1 lists them."""

    access_key_id: str
    device_id: str
    destination: str  # target bucket
    operation: str  # "import" | "export"
    return_address: str = "customer-dock"

    def to_bytes(self) -> bytes:
        return "|".join(
            [
                "manifest-v1",
                self.access_key_id,
                self.device_id,
                self.destination,
                self.operation,
                self.return_address,
            ]
        ).encode()

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class SignatureFile:
    """Names the MAC algorithm and binds job ID to the manifest digest."""

    algorithm: str
    job_id: str
    signature: bytes  # MAC over job_id || manifest digest

    def wire_size(self) -> int:
        return len(self.algorithm) + len(self.job_id) + len(self.signature)


@dataclass(frozen=True)
class ImportExportLog:
    """The per-file log AWS leaves in the bucket after a job."""

    job_id: str
    entries: tuple[tuple[str, int, bytes], ...]  # (key name, bytes, md5)

    def lookup_md5(self, key: str) -> bytes:
        for name, _size, md5 in self.entries:
            if name == key:
                return md5
        raise NoSuchObjectError(f"no log entry for {key!r}")


@dataclass(frozen=True)
class JobReport:
    """The e-mailed status: bytes saved, MD5s, status, log location."""

    job_id: str
    status: str
    bytes_processed: int
    md5_of_bytes: dict[str, bytes]
    log_location: str


@dataclass
class _Job:
    job_id: str
    manifest: ManifestFile
    account: Account
    state: str = "created"  # created -> validated -> completed / failed
    report: JobReport | None = None


class S3LikeService:
    """Provider side of the AWS-style flows."""

    def __init__(self, rng: HmacDrbg, name: str = "aws-like") -> None:
        self.name = name
        self.accounts = AccountDirectory(rng)
        self.blobs = BlobStore(f"{name}/objects")
        self._jobs: dict[str, _Job] = {}
        self._logs: dict[str, ImportExportLog] = {}
        self._job_counter = 0

    # -- accounts -----------------------------------------------------------

    def create_account(self, name: str) -> Account:
        return self.accounts.create(name)

    # -- user-side helpers ---------------------------------------------------

    @staticmethod
    def sign_manifest(manifest: ManifestFile, account: Account) -> bytes:
        """The user's signature over the manifest (keyed MAC)."""
        return hmac_digest(account.secret_key, b"manifest|" + manifest.to_bytes())

    @staticmethod
    def make_signature_file(job_id: str, manifest: ManifestFile, account: Account) -> SignatureFile:
        """Build the signature file shipped with the device."""
        payload = job_id.encode() + b"|" + digest("sha256", manifest.to_bytes())
        return SignatureFile(
            algorithm=_SIGFILE_ALGORITHM,
            job_id=job_id,
            signature=hmac_digest(account.secret_key, b"sigfile|" + payload),
        )

    # -- e-mail channel: job creation ---------------------------------------

    def submit_manifest(self, manifest: ManifestFile, manifest_signature: bytes) -> str:
        """Receive the e-mailed signed manifest; create a job.

        Returns the job ID the user needs for the signature file.
        """
        account = self.accounts.by_access_key(manifest.access_key_id)
        expected = self.sign_manifest(manifest, account)
        if not constant_time_equals(expected, manifest_signature):
            raise AuthenticationError("manifest signature invalid")
        if manifest.operation not in ("import", "export"):
            raise StorageError(f"unknown operation {manifest.operation!r}")
        self._job_counter += 1
        job_id = f"JOB-{self._job_counter:06d}"
        self._jobs[job_id] = _Job(job_id=job_id, manifest=manifest, account=account)
        return job_id

    # -- dock: device arrival ----------------------------------------------------

    def receive_device(self, job_id: str, device: StorageDevice) -> JobReport:
        """Validate the attached signature file, run the job, build the
        report that is e-mailed back with the returned device."""
        job = self._jobs.get(job_id)
        if job is None:
            raise NoSuchObjectError(f"unknown job {job_id!r}")
        raw = device.attached_documents.get("signature-file")
        if raw is None:
            job.state = "failed"
            raise AuthenticationError("device arrived without a signature file")
        sigfile = _decode_signature_file(raw)
        expected = self.make_signature_file(job_id, job.manifest, job.account)
        if sigfile.algorithm != expected.algorithm or not constant_time_equals(
            sigfile.signature, expected.signature
        ):
            job.state = "failed"
            raise AuthenticationError("signature file validation failed")
        if device.device_id != job.manifest.device_id:
            job.state = "failed"
            raise AuthenticationError("device ID does not match manifest")
        job.state = "validated"
        if job.manifest.operation == "import":
            report = self._run_import(job, device)
        else:
            report = self._run_export(job, device)
        job.state = "completed"
        job.report = report
        return report

    def _run_import(self, job: _Job, device: StorageDevice) -> JobReport:
        bucket = job.manifest.destination
        md5s: dict[str, bytes] = {}
        entries = []
        total = 0
        for key, data in sorted(device.files.items()):
            md5 = digest("md5", data)  # recomputed from received bytes
            self.blobs.put(bucket, key, data, md5)
            md5s[key] = md5
            entries.append((key, len(data), md5))
            total += len(data)
        log = ImportExportLog(job_id=job.job_id, entries=tuple(entries))
        log_location = f"{bucket}/.import-export-log/{job.job_id}"
        self._logs[log_location] = log
        return JobReport(
            job_id=job.job_id,
            status="completed",
            bytes_processed=total,
            md5_of_bytes=md5s,
            log_location=log_location,
        )

    def _run_export(self, job: _Job, device: StorageDevice) -> JobReport:
        bucket = job.manifest.destination
        md5s: dict[str, bytes] = {}
        entries = []
        total = 0
        device.wipe()
        for key in self.blobs.list_keys(bucket):
            obj = self.blobs.get(bucket, key)
            device.write_file(key, obj.data)
            md5 = obj.actual_md5()  # "a recomputed MD5_2 is sent" (§2.4)
            md5s[key] = md5
            entries.append((key, obj.size, md5))
            total += obj.size
        log = ImportExportLog(job_id=job.job_id, entries=tuple(entries))
        log_location = f"{bucket}/.import-export-log/{job.job_id}"
        self._logs[log_location] = log
        return JobReport(
            job_id=job.job_id,
            status="completed",
            bytes_processed=total,
            md5_of_bytes=md5s,
            log_location=log_location,
        )

    def fetch_log(self, log_location: str) -> ImportExportLog:
        try:
            return self._logs[log_location]
        except KeyError as exc:
            raise NoSuchObjectError(f"no log at {log_location!r}") from exc

    def job_state(self, job_id: str) -> str:
        job = self._jobs.get(job_id)
        if job is None:
            raise NoSuchObjectError(f"unknown job {job_id!r}")
        return job.state

    # -- direct Internet object API (for <=50 GB transfers) -----------------------

    def put_object(self, account: Account, bucket: str, key: str, data: bytes,
                   content_md5: bytes | None = None, at_time: float = 0.0) -> bytes:
        """Direct upload; verifies the optional client MD5, returns ETag."""
        self.accounts.by_name(account.name)  # existence check
        if content_md5 is not None and content_md5 != digest("md5", data):
            raise IntegrityError("Content-MD5 mismatch")
        obj = self.blobs.put(bucket, key, data, at_time=at_time)
        return obj.content_md5

    def get_object(self, account: Account, bucket: str, key: str) -> tuple[bytes, bytes]:
        """Direct download: returns (data, md5 **recomputed** from
        whatever is currently stored) — the AWS-side behaviour."""
        self.accounts.by_name(account.name)
        obj = self.blobs.get(bucket, key)
        return obj.data, obj.actual_md5()

    # -- parity surface (uniform across the three platform models) ----------

    def stat(self, container: str, key: str) -> ObjectStat:
        """Uniform object metadata; ``backend`` is the service name."""
        return self.blobs.stat(container, key, backend=self.name)

    def content_digest(self, container: str, key: str) -> str:
        """SHA-256 hex of the currently stored bytes."""
        return self.blobs.content_digest(container, key)

    def list_objects(self, container: str) -> list[ObjectStat]:
        """Stats for every object in *container*, in key order."""
        return [self.stat(container, k) for k in self.blobs.list_keys(container)]


def _decode_signature_file(raw: bytes) -> SignatureFile:
    """Parse the on-device encoding written by encode_signature_file."""
    try:
        algorithm, job_id, sig_hex = raw.decode().split("|", 2)
        return SignatureFile(algorithm=algorithm, job_id=job_id, signature=bytes.fromhex(sig_hex))
    except (ValueError, UnicodeDecodeError) as exc:
        raise AuthenticationError("malformed signature file") from exc


def encode_signature_file(sigfile: SignatureFile) -> bytes:
    """Serialize a signature file for taping onto a device."""
    return f"{sigfile.algorithm}|{sigfile.job_id}|{sigfile.signature.hex()}".encode()
