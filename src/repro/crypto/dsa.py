"""DSA signatures — the §3 "other digital signature technologies".

The paper notes its bridging framework is signature-scheme-agnostic:
"other digital signature technologies can be adopted under this
framework to fix this vulnerability with different approaches."  This
module provides that alternative: classic DSA over the same safe-prime
groups as :mod:`repro.crypto.dh` (with ``q = (p-1)/2``, so the subgroup
is as large as the modulus allows).

Nonces ``k`` come from the caller's DRBG — deterministic per run, never
reused (nonce reuse leaks the private key in DSA; a test asserts our
draws are distinct).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError, InvalidKeyError
from .dh import DhGroup, default_group
from .drbg import HmacDrbg
from .hashes import digest
from .numbers import bytes_to_int, modinv

__all__ = ["DsaPublicKey", "DsaPrivateKey", "generate_keypair", "sign", "verify"]


@dataclass(frozen=True)
class DsaPublicKey:
    """DSA public key: the group and ``y = g^x mod p``."""

    group: DhGroup
    y: int


@dataclass(frozen=True)
class DsaPrivateKey:
    """DSA private key ``x`` with its group."""

    group: DhGroup
    x: int

    def public_key(self) -> DsaPublicKey:
        return DsaPublicKey(self.group, pow(self.group.g, self.x, self.group.p))


def generate_keypair(rng: HmacDrbg, group: DhGroup | None = None) -> DsaPrivateKey:
    """Generate a DSA keypair over *group* (default: the shared group)."""
    group = group or default_group()
    x = rng.randint(2, group.q - 1)
    return DsaPrivateKey(group=group, x=x)


def _hash_to_int(message: bytes, q: int) -> int:
    return bytes_to_int(digest("sha256", message)) % q


def sign(key: DsaPrivateKey, message: bytes, rng: HmacDrbg) -> tuple[int, int]:
    """Sign *message*; returns the (r, s) pair."""
    group = key.group
    h = _hash_to_int(message, group.q)
    while True:
        k = rng.randint(2, group.q - 1)
        r = pow(group.g, k, group.p) % group.q
        if r == 0:
            continue
        s = (modinv(k, group.q) * (h + key.x * r)) % group.q
        if s == 0:
            continue
        return r, s


def verify(key: DsaPublicKey, message: bytes, signature: tuple[int, int]) -> bool:
    """True iff ``signature`` is valid for *message* under *key*."""
    try:
        r, s = signature
    except (TypeError, ValueError):
        return False
    group = key.group
    if not (0 < r < group.q and 0 < s < group.q):
        return False
    h = _hash_to_int(message, group.q)
    try:
        w = modinv(s, group.q)
    except CryptoError:
        return False
    u1 = (h * w) % group.q
    u2 = (r * w) % group.q
    v = (pow(group.g, u1, group.p) * pow(key.y, u2, group.p)) % group.p % group.q
    return v == r


def require_distinct_nonces(key: DsaPrivateKey, messages: list[bytes], rng: HmacDrbg) -> None:
    """Diagnostic: sign a batch and raise if any DSA nonce repeats.

    Nonce reuse is DSA's classic fatal failure; the DRBG construction
    makes repeats astronomically unlikely, and this check makes that an
    executable claim rather than a comment.
    """
    seen: set[int] = set()
    group = key.group
    for message in messages:
        k = rng.randint(2, group.q - 1)
        if k in seen:
            raise InvalidKeyError("DSA nonce repeated — DRBG misuse")
        seen.add(k)
