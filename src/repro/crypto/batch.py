"""Batched evidence signatures: one RSA signature per Merkle batch.

The TPNR evidence construction signs twice per message (data hash +
header) and that modular exponentiation dominates the engine's hot
path.  Following the Proofs-of-Retrievability aggregation line, this
module amortizes it: a signer accumulates per-message evidence *leaf
digests* into an :class:`~repro.crypto.merkle.MerkleTree` and issues
**one** signature over the batch root; every item is then provable by
its inclusion proof against that signed root — equivalent NRO/NRR
strength at ``1/K`` of the signing cost.

This layer is deliberately core-agnostic: it deals in raw leaf bytes
and signer names.  What a leaf *means* (the canonical digest of a TPNR
header) is defined by :func:`repro.core.evidence.evidence_leaf`.

* :class:`EvidenceBatcher` — per-signer accumulator; seals a batch
  whenever ``batch_size`` leaves are pending (and on explicit
  :meth:`~EvidenceBatcher.seal`, the end-of-run flush).
* :class:`SealedBatch` — a published root + its one RSA signature.
* :class:`BatchProof` — one item's membership: leaf, index, inclusion
  path, and the sealed batch it lives in.
* :class:`BatchLedger` — the shared publication surface (modelling the
  provider-visible batch-commitment log): sealed batches land here and
  any holder of a leaf can look its proof up.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from . import instrument as _instrument
from . import rsa
from .merkle import MerkleTree, verify_inclusion
from .pki import Identity

__all__ = [
    "BATCH_ROOT_DOMAIN",
    "SealedBatch",
    "BatchProof",
    "BatchLedger",
    "EvidenceBatcher",
    "sign_batch_root",
    "verify_batch_root",
    "verify_batch_proof",
]

#: Domain prefix for the root signature, so a batch-root signature can
#: never be confused with any other signature this repo produces.
BATCH_ROOT_DOMAIN = b"tpnr-batch-root/v1|"


@dataclass(frozen=True)
class SealedBatch:
    """A published Merkle root with its single RSA signature."""

    signer: str
    root: bytes
    signature: bytes
    size: int


@dataclass(frozen=True)
class BatchProof:
    """One leaf's membership in a sealed batch."""

    signer: str
    leaf: bytes
    index: int
    path: tuple[tuple[str, bytes], ...]
    batch: SealedBatch


def sign_batch_root(private_key: rsa.RsaPrivateKey, root: bytes) -> bytes:
    """The batch's one signature: over the domain-separated root."""
    return rsa.sign(private_key, BATCH_ROOT_DOMAIN + root)


def verify_batch_root(public_key: rsa.RsaPublicKey, batch: SealedBatch) -> bool:
    """Does the claimed signer's key validate the batch root signature?"""
    return rsa.verify(public_key, BATCH_ROOT_DOMAIN + batch.root, batch.signature)


def verify_batch_proof(public_key: rsa.RsaPublicKey, proof: BatchProof) -> bool:
    """Full item check: inclusion proof against the root, then the one
    root signature.  Note the order matters for the attack surface: a
    valid batch signature says nothing about an item whose inclusion
    proof fails — such an item must be rejected."""
    if not verify_inclusion(proof.batch.root, proof.leaf, proof.path):
        return False
    return verify_batch_root(public_key, proof.batch)


class BatchLedger:
    """Shared registry of sealed batches, indexed for proof lookup.

    One ledger serves one world (deployment or pool shard); every party
    publishes its sealed batches here and every recipient resolves the
    proofs for the batched evidence it holds.  Proofs are materialized
    at publication — ``O(K log K)`` hashing per batch — so lookups are
    dictionary reads on the verification path.
    """

    def __init__(self) -> None:
        self.batches: list[SealedBatch] = []
        self._proofs: dict[tuple[str, bytes], BatchProof] = {}

    def publish(self, tree: MerkleTree, batch: SealedBatch) -> None:
        self.batches.append(batch)
        for index in range(len(tree)):
            leaf = tree.leaf(index)
            proof = BatchProof(
                signer=batch.signer,
                leaf=leaf,
                index=index,
                path=tree.prove(index),
                batch=batch,
            )
            # Last write wins on a duplicate leaf: any sealed batch
            # containing the leaf yields a valid proof.
            self._proofs[(batch.signer, leaf)] = proof

    def proof_for(self, signer: str, leaf: bytes) -> BatchProof | None:
        return self._proofs.get((signer, leaf))

    @property
    def leaves_published(self) -> int:
        return sum(batch.size for batch in self.batches)


class EvidenceBatcher:
    """Per-signer evidence accumulator with automatic sealing."""

    def __init__(self, identity: Identity, batch_size: int, ledger: BatchLedger) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.identity = identity
        self.batch_size = batch_size
        self.ledger = ledger
        self._pending: list[bytes] = []
        self.leaves_added = 0
        self.batches_sealed = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, leaf: bytes) -> None:
        """Queue one leaf digest; seals automatically at ``batch_size``."""
        self._pending.append(bytes(leaf))
        self.leaves_added += 1
        if len(self._pending) >= self.batch_size:
            self.seal()

    def seal(self) -> SealedBatch | None:
        """Seal whatever is pending (the end-of-run flush); None if empty.

        The ``batch.seal`` wall time reported to the crypto observer
        covers the whole seal — it *includes* the inner ``merkle.build``
        and ``rsa.sign`` calls, which also report individually.
        """
        if not self._pending:
            return None
        observer = _instrument.observer
        started = perf_counter() if observer is not None else 0.0
        try:
            tree = MerkleTree(self._pending)
            batch = SealedBatch(
                signer=self.identity.name,
                root=tree.root,
                signature=sign_batch_root(self.identity.private_key, tree.root),
                size=len(tree),
            )
            self.ledger.publish(tree, batch)
            self._pending = []
            self.batches_sealed += 1
            return batch
        finally:
            if observer is not None:
                observer.crypto_call("batch.seal", perf_counter() - started)
