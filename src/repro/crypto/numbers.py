"""Modular arithmetic helpers used by the public-key primitives.

Everything here operates on plain Python integers.  These are the
building blocks for RSA (:mod:`repro.crypto.rsa`), Diffie-Hellman
(:mod:`repro.crypto.dh`) and Shamir secret sharing
(:mod:`repro.crypto.shamir`).
"""

from __future__ import annotations

from ..errors import CryptoError

__all__ = [
    "egcd",
    "modinv",
    "crt_pair",
    "int_to_bytes",
    "bytes_to_int",
    "bit_length_bytes",
    "iroot",
    "is_perfect_square",
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    Iterative to avoid recursion limits on large inputs.
    """
    x0, x1, y0, y1 = 1, 0, 0, 1
    while b:
        q, a, b = a // b, b, a % b
        x0, x1 = x1, x0 - q * x1
        y0, y1 = y1, y0 - q * y1
    return a, x0, y0


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m``.

    Raises :class:`CryptoError` if the inverse does not exist.
    """
    if m <= 0:
        raise CryptoError(f"modulus must be positive, got {m}")
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise CryptoError(f"{a} has no inverse modulo {m} (gcd={g})")
    return x % m


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese Remainder Theorem for two coprime moduli.

    Returns the unique ``x`` in ``[0, p*q)`` with ``x % p == r_p`` and
    ``x % q == r_q``.  Used for the RSA-CRT private operation.
    """
    q_inv = modinv(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return (r_q + h * q) % (p * q)


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Big-endian fixed-width encoding of a non-negative integer.

    When *length* is omitted the minimal width is used (``0`` encodes to
    one zero byte).  Raises if *n* does not fit in *length* bytes.
    """
    if n < 0:
        raise CryptoError("cannot encode negative integer")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    try:
        return n.to_bytes(length, "big")
    except OverflowError as exc:
        raise CryptoError(f"integer too large for {length} bytes") from exc


def bytes_to_int(data: bytes) -> int:
    """Big-endian decoding, inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def bit_length_bytes(n: int) -> int:
    """Number of bytes needed to hold ``n`` (at least 1)."""
    return max(1, (n.bit_length() + 7) // 8)


def iroot(n: int, k: int) -> int:
    """Integer k-th root: the largest ``r`` with ``r**k <= n``."""
    if n < 0:
        raise CryptoError("iroot of negative number")
    if n < 2:
        return n
    hi = 1 << ((n.bit_length() + k - 1) // k + 1)
    lo = 0
    while lo < hi - 1:
        mid = (lo + hi) // 2
        if mid**k <= n:
            lo = mid
        else:
            hi = mid
    return lo


def is_perfect_square(n: int) -> bool:
    """True if *n* is a perfect square (used by primality sanity checks)."""
    if n < 0:
        return False
    r = iroot(n, 2)
    return r * r == n
