"""Cryptographic substrate, implemented from scratch.

Everything the paper's protocols need: hashing (MD5, SHA-256), HMAC,
ChaCha20 + AEAD, RSA signatures/encryption, Diffie-Hellman, hybrid
encryption (RSA-KEM), Shamir secret sharing ("SKS" in the paper), a
deterministic DRBG, a miniature PKI, and a Merkle accumulator for
batched evidence signatures (one RSA signature per batch, per-item
inclusion proofs).

Pure-Python reference implementations are validated against the
standard library / RFC test vectors in the test suite; hot paths
dispatch to ``hashlib`` where an equivalent exists.
"""

from . import aead, batch, cache, chacha20, chacha20_np, dh, drbg, dsa, hashes, hmac_, kem, merkle, numbers, pki, primes, rsa, shamir
from .batch import BatchLedger, BatchProof, EvidenceBatcher, SealedBatch, verify_batch_proof
from .cache import CryptoCaches, LruCache, crypto_caches
from .drbg import HmacDrbg
from .hashes import MD5, SHA256, digest, hexdigest
from .hmac_ import constant_time_equals, hmac_digest, verify_hmac
from .kem import hybrid_decrypt, hybrid_encrypt
from .merkle import MerkleTree, verify_inclusion
from .pki import Certificate, CertificateAuthority, Identity, KeyRegistry
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair, sign, verify
from .shamir import Share, recover_digest, recover_secret, split_digest, split_secret

__all__ = [
    "aead",
    "batch",
    "BatchLedger",
    "BatchProof",
    "EvidenceBatcher",
    "SealedBatch",
    "verify_batch_proof",
    "cache",
    "CryptoCaches",
    "LruCache",
    "crypto_caches",
    "chacha20",
    "chacha20_np",
    "dh",
    "drbg",
    "dsa",
    "hashes",
    "hmac_",
    "kem",
    "merkle",
    "MerkleTree",
    "verify_inclusion",
    "numbers",
    "pki",
    "primes",
    "rsa",
    "shamir",
    "HmacDrbg",
    "MD5",
    "SHA256",
    "digest",
    "hexdigest",
    "constant_time_equals",
    "hmac_digest",
    "verify_hmac",
    "hybrid_decrypt",
    "hybrid_encrypt",
    "Certificate",
    "CertificateAuthority",
    "Identity",
    "KeyRegistry",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "sign",
    "verify",
    "Share",
    "recover_digest",
    "recover_secret",
    "split_digest",
    "split_secret",
]
