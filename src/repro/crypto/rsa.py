"""RSA from scratch: key generation, signatures, and encryption.

The paper's evidence objects are ``Encrypt{Sign(HashOfData),
Sign(Plaintext)}`` — signatures with the sender's private key,
encryption with the recipient's public key.  This module provides both
operations:

* **Signatures** follow the PKCS#1 v1.5 shape: a DigestInfo-like prefix
  identifying the hash, deterministic ``0x00 01 FF.. 00`` padding, then
  the private-key operation (with CRT speedup).
* **Encryption** follows the PKCS#1 v1.5 type-2 shape: random non-zero
  padding drawn from the caller's DRBG.  Bulk data never goes through
  RSA directly — :mod:`repro.crypto.kem` wraps a symmetric key instead.

Key sizes are scaled down (512-1024 bits) for laptop-scale benchmarks;
this changes nothing about protocol semantics (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from ..errors import CryptoError, DecryptionError, InvalidKeyError, SignatureError
from . import cache as _cache
from . import instrument as _instrument
from .drbg import HmacDrbg
from .hashes import DIGEST_SIZES, digest
from .numbers import bit_length_bytes, bytes_to_int, crt_pair, int_to_bytes, modinv
from .primes import generate_prime

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
    "sign",
    "verify",
    "encrypt",
    "decrypt",
    "MIN_MODULUS_BITS",
]

MIN_MODULUS_BITS = 256  # floor for test keys; realistic deployments use >= 2048

# Stand-in for the ASN.1 DigestInfo prefixes of real PKCS#1 v1.5: a
# fixed library-specific label that binds the hash algorithm into the
# padded block, preventing cross-algorithm signature confusion.
_DIGEST_LABELS = {
    "md5": b"repro:md5:",
    "sha256": b"repro:sha256:",
}


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size_bytes(self) -> int:
        return bit_length_bytes(self.n)

    def fingerprint(self) -> str:
        """Stable hex identifier for key registries and certificates."""
        blob = int_to_bytes(self.n) + b"/" + int_to_bytes(self.e)
        return digest("sha256", blob).hex()[:32]


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size_bytes(self) -> int:
        return bit_length_bytes(self.n)

    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def _private_op(self, c: int) -> int:
        """``c**d mod n`` via CRT (≈4x faster than the naive pow)."""
        d_p = self.d % (self.p - 1)
        d_q = self.d % (self.q - 1)
        m_p = pow(c % self.p, d_p, self.p)
        m_q = pow(c % self.q, d_q, self.q)
        return crt_pair(m_p, self.p, m_q, self.q)


def generate_keypair(bits: int, rng: HmacDrbg, e: int = 65537) -> RsaPrivateKey:
    """Generate an RSA keypair with an exactly *bits*-bit modulus."""
    if bits < MIN_MODULUS_BITS:
        raise InvalidKeyError(f"modulus must be >= {MIN_MODULUS_BITS} bits, got {bits}")
    if bits % 2 != 0:
        raise InvalidKeyError("modulus bit size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except CryptoError:
            continue  # e not coprime with phi; rare, retry
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


# --------------------------------------------------------------------------
# Signatures
# --------------------------------------------------------------------------

def _encode_digest_block(data_digest: bytes, hash_name: str, size: int) -> bytes:
    """PKCS#1 v1.5-style EMSA encoding: ``00 01 FF.. 00 label digest``."""
    label = _DIGEST_LABELS[hash_name]
    payload = label + data_digest
    pad_len = size - 3 - len(payload)
    if pad_len < 8:
        raise InvalidKeyError("RSA modulus too small for signature encoding")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + payload


def sign(key: RsaPrivateKey, message: bytes, hash_name: str = "sha256") -> bytes:
    """Sign *message* (hash-then-sign). Returns a modulus-sized blob.

    Signing is fully deterministic here (EMSA padding, no salt), so the
    signature is a pure function of ``(key, hash algorithm, digest)``
    and can be served from :mod:`repro.crypto.cache` when installed —
    a hit skips the CRT private-key operation and returns the identical
    blob.  The observer still counts every call either way.
    """
    observer = _instrument.observer
    started = perf_counter() if observer is not None else 0.0
    if hash_name not in DIGEST_SIZES:
        raise CryptoError(f"unknown hash algorithm: {hash_name!r}")
    data_digest = digest(hash_name, message)
    caches = _cache.caches
    cache_key = (key.n, hash_name, data_digest) if caches is not None else None
    signature = caches.sign.get(cache_key) if caches is not None else None
    if signature is None:
        block = _encode_digest_block(data_digest, hash_name, key.size_bytes)
        m = bytes_to_int(block)
        s = key._private_op(m)
        signature = int_to_bytes(s, key.size_bytes)
        if caches is not None:
            caches.sign.put(cache_key, signature)
    if observer is not None:
        observer.crypto_call("rsa.sign", perf_counter() - started)
    return signature


def verify(key: RsaPublicKey, message: bytes, signature: bytes, hash_name: str = "sha256") -> bool:
    """True iff *signature* is a valid signature of *message* under *key*."""
    observer = _instrument.observer
    if observer is None:
        return _verify(key, message, signature, hash_name)
    started = perf_counter()
    try:
        return _verify(key, message, signature, hash_name)
    finally:
        observer.crypto_call("rsa.verify", perf_counter() - started)


def _verify(key: RsaPublicKey, message: bytes, signature: bytes, hash_name: str) -> bool:
    if hash_name not in DIGEST_SIZES:
        raise CryptoError(f"unknown hash algorithm: {hash_name!r}")
    caches = _cache.caches
    if caches is not None:
        # Verification is a pure predicate of key, algorithm, digest,
        # and signature bytes, so the verdict itself is cacheable —
        # the engine's repeated NRO/NRR checks hit this.
        cache_key = (key.n, key.e, hash_name, digest(hash_name, message), signature)
        verdict = caches.verify.get(cache_key)
        if verdict is None:
            verdict = _verify_uncached(key, message, signature, hash_name)
            caches.verify.put(cache_key, verdict)
        return verdict
    return _verify_uncached(key, message, signature, hash_name)


def _verify_uncached(key: RsaPublicKey, message: bytes, signature: bytes, hash_name: str) -> bool:
    if len(signature) != key.size_bytes:
        return False
    s = bytes_to_int(signature)
    if s >= key.n:
        return False
    block = int_to_bytes(pow(s, key.e, key.n), key.size_bytes)
    try:
        expected = _encode_digest_block(digest(hash_name, message), hash_name, key.size_bytes)
    except InvalidKeyError:
        return False
    return block == expected


def require_valid_signature(
    key: RsaPublicKey, message: bytes, signature: bytes, hash_name: str = "sha256"
) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(key, message, signature, hash_name):
        raise SignatureError("RSA signature verification failed")


# --------------------------------------------------------------------------
# Encryption (PKCS#1 v1.5 type 2 shape)
# --------------------------------------------------------------------------

def encrypt(key: RsaPublicKey, plaintext: bytes, rng: HmacDrbg) -> bytes:
    """Encrypt a short *plaintext* (at most ``size - 11`` bytes)."""
    size = key.size_bytes
    max_len = size - 11
    if len(plaintext) > max_len:
        raise CryptoError(
            f"RSA plaintext too long: {len(plaintext)} > {max_len} "
            "(use repro.crypto.kem for bulk data)"
        )
    pad_len = size - 3 - len(plaintext)
    padding = bytearray()
    while len(padding) < pad_len:
        chunk = rng.generate(pad_len - len(padding))
        padding.extend(b for b in chunk if b != 0)
    block = b"\x00\x02" + bytes(padding[:pad_len]) + b"\x00" + plaintext
    m = bytes_to_int(block)
    return int_to_bytes(pow(m, key.e, key.n), size)


def decrypt(key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """Decrypt a block produced by :func:`encrypt`."""
    size = key.size_bytes
    if len(ciphertext) != size:
        raise DecryptionError(f"ciphertext must be {size} bytes, got {len(ciphertext)}")
    c = bytes_to_int(ciphertext)
    if c >= key.n:
        raise DecryptionError("ciphertext out of range")
    block = int_to_bytes(key._private_op(c), size)
    if block[:2] != b"\x00\x02":
        raise DecryptionError("bad RSA padding header")
    try:
        sep = block.index(b"\x00", 2)
    except ValueError as exc:
        raise DecryptionError("RSA padding separator missing") from exc
    if sep < 10:  # require the minimum 8 bytes of padding
        raise DecryptionError("RSA padding too short")
    return block[sep + 1 :]
