"""HMAC (RFC 2104) built on the hash substrate.

The Azure-style SharedKey authentication in
:mod:`repro.storage.azurelike` and the secure-channel record layer in
:mod:`repro.net.securechannel` both authenticate with HMAC-SHA256, the
scheme the paper's Table 1 shows.  ``hmac_digest`` dispatches through
:func:`repro.crypto.hashes.digest` and therefore also has a ``pure``
mode exercised by the tests against the stdlib ``hmac``.
"""

from __future__ import annotations

from ..errors import CryptoError
from .hashes import DIGEST_SIZES, digest

__all__ = ["hmac_digest", "hmac_hexdigest", "verify_hmac", "constant_time_equals"]

_BLOCK_SIZE = 64  # both MD5 and SHA-256 use 64-byte blocks


def hmac_digest(key: bytes, message: bytes, name: str = "sha256", *, pure: bool = False) -> bytes:
    """HMAC of *message* under *key* with the named hash."""
    if name not in DIGEST_SIZES:
        raise CryptoError(f"unknown hash algorithm: {name!r}")
    if len(key) > _BLOCK_SIZE:
        key = digest(name, key, pure=pure)
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    inner = digest(name, i_pad + message, pure=pure)
    return digest(name, o_pad + inner, pure=pure)


def hmac_hexdigest(key: bytes, message: bytes, name: str = "sha256", *, pure: bool = False) -> str:
    """Hex form of :func:`hmac_digest`."""
    return hmac_digest(key, message, name, pure=pure).hex()


def constant_time_equals(a: bytes, b: bytes) -> bool:
    """Timing-safe byte-string comparison.

    The simulator has no real side channels, but verification sites use
    this anyway so the code models the correct practice.
    """
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0


def verify_hmac(key: bytes, message: bytes, tag: bytes, name: str = "sha256") -> bool:
    """Recompute and compare an HMAC tag in constant time."""
    return constant_time_equals(hmac_digest(key, message, name), tag)
