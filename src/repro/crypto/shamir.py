"""Shamir secret sharing over GF(2**521 - 1).

This is the paper's "secret key sharing technique (SKS)" (§3.2, §3.4):
after upload, user and provider *share* the agreed MD5 so that neither
can later substitute a different digest — a dispute is settled by
pooling shares and reconstructing.  Splitting a 128-bit MD5 (or a
256-bit SHA-256) needs a field larger than the secret; the Mersenne
prime 2**521 - 1 comfortably covers both.

Shares are ``(x, y)`` points on a random degree ``k-1`` polynomial with
the secret as the constant term; any ``k`` shares reconstruct via
Lagrange interpolation at 0, fewer reveal nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SecretSharingError
from .drbg import HmacDrbg
from .numbers import bytes_to_int, int_to_bytes, modinv
from .primes import MERSENNE_521

__all__ = ["Share", "split_secret", "recover_secret", "split_digest", "recover_digest"]

_PRIME = MERSENNE_521


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point ``x`` and value ``y``."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not 1 <= self.x < _PRIME:
            raise SecretSharingError(f"share x out of range: {self.x}")
        if not 0 <= self.y < _PRIME:
            raise SecretSharingError("share y out of range")


def split_secret(secret: int, n_shares: int, threshold: int, rng: HmacDrbg) -> list[Share]:
    """Split *secret* into *n_shares* shares, any *threshold* recover it."""
    if not 0 <= secret < _PRIME:
        raise SecretSharingError("secret out of field range")
    if threshold < 1:
        raise SecretSharingError("threshold must be >= 1")
    if n_shares < threshold:
        raise SecretSharingError(
            f"need at least threshold shares: n={n_shares} < k={threshold}"
        )
    coefficients = [secret] + [rng.randint(0, _PRIME - 1) for _ in range(threshold - 1)]
    shares = []
    for x in range(1, n_shares + 1):
        y = 0
        for coeff in reversed(coefficients):  # Horner evaluation
            y = (y * x + coeff) % _PRIME
        shares.append(Share(x=x, y=y))
    return shares


def recover_secret(shares: list[Share], threshold: int | None = None) -> int:
    """Reconstruct the secret from shares via Lagrange interpolation at 0.

    When *threshold* is given, exactly that many (distinct) shares are
    used, and supplying fewer raises :class:`SecretSharingError` —
    interpolating an underdetermined system would silently return a
    wrong secret.  Without a threshold all supplied shares are used;
    *wrong* shares then yield a *different* secret, not an error —
    detecting that is the caller's job (compare against a known digest).
    """
    if threshold is not None:
        if len(shares) < threshold:
            raise SecretSharingError(
                f"insufficient shares: got {len(shares)}, threshold is {threshold}"
            )
        shares = shares[:threshold]
    if not shares:
        raise SecretSharingError("no shares supplied")
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise SecretSharingError("duplicate share x-coordinates")
    secret = 0
    for i, share_i in enumerate(shares):
        num, den = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            num = (num * (-share_j.x)) % _PRIME
            den = (den * (share_i.x - share_j.x)) % _PRIME
        secret = (secret + share_i.y * num * modinv(den, _PRIME)) % _PRIME
    return secret


def split_digest(digest_bytes: bytes, n_shares: int, threshold: int, rng: HmacDrbg) -> list[Share]:
    """Split a hash digest (<= 65 bytes) into shares."""
    if len(digest_bytes) > 65:
        raise SecretSharingError("digest too large for the sharing field")
    # Prefix a 0x01 length-guard byte so leading zero bytes round-trip.
    return split_secret(bytes_to_int(b"\x01" + digest_bytes), n_shares, threshold, rng)


def recover_digest(shares: list[Share], digest_size: int, threshold: int | None = None) -> bytes:
    """Inverse of :func:`split_digest`.

    Raises :class:`SecretSharingError` when the recovered value is not
    a well-formed digest — which is how corrupted or mismatched shares
    surface (recovery yields a random field element).
    """
    value = recover_secret(shares, threshold)
    try:
        raw = int_to_bytes(value, digest_size + 1)
    except Exception as exc:
        raise SecretSharingError(
            "recovered value does not fit a digest (bad shares?)"
        ) from exc
    if raw[0] != 0x01:
        raise SecretSharingError("recovered value is not a well-formed digest (bad shares?)")
    return raw[1:]
