"""ChaCha20 stream cipher (RFC 8439).

Used as the bulk cipher inside :mod:`repro.crypto.aead` and hence for
both evidence confidentiality (the paper encrypts evidence with the
recipient's public key — we do hybrid RSA-KEM + ChaCha20) and the
secure-channel record layer.  Validated against the RFC 8439 test
vectors in the test suite.
"""

from __future__ import annotations

import struct

from ..errors import CryptoError

__all__ = ["chacha20_block", "chacha20_keystream", "chacha20_xor"]

KEY_SIZE = 32
NONCE_SIZE = 12
_MASK32 = 0xFFFFFFFF


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 16) | (state[d] >> 16)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 12) | (state[b] >> 20)) & _MASK32
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] ^= state[a]
    state[d] = ((state[d] << 8) | (state[d] >> 24)) & _MASK32
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] ^= state[c]
    state[b] = ((state[b] << 7) | (state[b] >> 25)) & _MASK32


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 block for the given key/counter/nonce."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if not 0 <= counter <= _MASK32:
        raise CryptoError("ChaCha20 block counter out of range")
    constants = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)
    state = list(constants)
    state.extend(struct.unpack("<8I", key))
    state.append(counter)
    state.extend(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, initial_counter: int = 1) -> bytes:
    """*length* bytes of keystream starting at *initial_counter*."""
    blocks = []
    produced = 0
    counter = initial_counter
    while produced < length:
        blocks.append(chacha20_block(key, counter, nonce))
        produced += 64
        counter += 1
    return b"".join(blocks)[:length]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt or decrypt *data* (XOR with keystream; involution)."""
    stream = chacha20_keystream(key, nonce, len(data), initial_counter)
    return bytes(a ^ b for a, b in zip(data, stream))
