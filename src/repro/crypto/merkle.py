"""Merkle accumulator with domain-separated hashing (PoR-style).

The batched-evidence layer (:mod:`repro.crypto.batch`) follows the
Proofs-of-Retrievability aggregation idiom: instead of one RSA
signature per evidence item, the signer accumulates the items' digests
into a Merkle tree and signs the **root** once; each item then carries
a logarithmic *inclusion proof* that ties it to the signed root.

Two hash domains keep the tree second-preimage safe:

* a **leaf** hashes as ``H(leaf-domain || payload)``;
* an **interior node** hashes as ``H(node-domain || left || right)``;

so no interior node can be reinterpreted as a leaf (or vice versa) and
a proof for one payload can never verify another.  An odd node at any
level is *promoted* unpaired to the next level — never duplicated —
which removes the classic ambiguity where ``[a, b]`` and ``[a, b, b]``
share a root.

Proofs are sequences of ``(side, sibling)`` steps, ``side`` saying
whether the sibling sits left (``"L"``) or right (``"R"``) of the
running node; verification needs only the root, the leaf payload, and
the proof.
"""

from __future__ import annotations

from time import perf_counter

from ..errors import CryptoError
from . import instrument as _instrument
from .hashes import digest

__all__ = ["MerkleTree", "verify_inclusion"]

_LEAF_DOMAIN = b"repro-merkle-leaf/v1|"
_NODE_DOMAIN = b"repro-merkle-node/v1|"


def _leaf_node(payload: bytes) -> bytes:
    return digest("sha256", _LEAF_DOMAIN + payload)


def _interior_node(left: bytes, right: bytes) -> bytes:
    return digest("sha256", _NODE_DOMAIN + left + right)


class MerkleTree:
    """An immutable Merkle tree over a fixed list of leaf payloads."""

    def __init__(self, leaves: list[bytes] | tuple[bytes, ...]) -> None:
        if not leaves:
            raise CryptoError("a Merkle tree needs at least one leaf")
        observer = _instrument.observer
        started = perf_counter() if observer is not None else 0.0
        self._leaves = [bytes(leaf) for leaf in leaves]
        levels = [[_leaf_node(leaf) for leaf in self._leaves]]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            nxt = [
                _interior_node(prev[i], prev[i + 1])
                for i in range(0, len(prev) - 1, 2)
            ]
            if len(prev) % 2:
                nxt.append(prev[-1])  # promote, never duplicate
            levels.append(nxt)
        self._levels = levels
        if observer is not None:
            observer.crypto_call("merkle.build", perf_counter() - started)

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    def prove(self, index: int) -> tuple[tuple[str, bytes], ...]:
        """The inclusion proof for the leaf at *index*.

        Levels where the running node was promoted unpaired contribute
        no step, so proof length is ``<= ceil(log2(n))``.
        """
        if not 0 <= index < len(self._leaves):
            raise CryptoError(
                f"leaf index {index} out of range for {len(self._leaves)} leaves")
        observer = _instrument.observer
        started = perf_counter() if observer is not None else 0.0
        path: list[tuple[str, bytes]] = []
        i = index
        for level in self._levels[:-1]:
            sibling = i ^ 1
            if sibling < len(level):
                side = "L" if sibling < i else "R"
                path.append((side, level[sibling]))
            i //= 2
        if observer is not None:
            observer.crypto_call("merkle.prove", perf_counter() - started)
        return tuple(path)


def verify_inclusion(
    root: bytes, leaf: bytes, proof: tuple[tuple[str, bytes], ...]
) -> bool:
    """Does *proof* tie the *leaf* payload to *root*?

    Pure recomputation — no tree needed, which is what lets a verifier
    (Arbitrator, forensics) check an item against a published signed
    root alone.
    """
    observer = _instrument.observer
    started = perf_counter() if observer is not None else 0.0
    try:
        node = _leaf_node(leaf)
        for side, sibling in proof:
            if side == "L":
                node = _interior_node(sibling, node)
            elif side == "R":
                node = _interior_node(node, sibling)
            else:
                return False
        return node == root
    finally:
        if observer is not None:
            observer.crypto_call("merkle.verify", perf_counter() - started)
