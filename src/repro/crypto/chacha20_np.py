"""NumPy-vectorized ChaCha20 — the bulk-cipher fast path.

Profiling the benchmark suite (see ``bench_crypto_primitives``) shows
the pure-Python ChaCha20 at ~5 ms per 4 KiB — the hottest primitive in
every AEAD seal.  Per the optimization guidance (vectorize the measured
bottleneck, keep the reference implementation for correctness), this
module recomputes the keystream with all blocks in parallel: the state
is a ``(16, n_blocks)`` uint32 array and each quarter-round operates on
whole rows.  Output is bit-identical to :mod:`repro.crypto.chacha20`
(asserted by tests against the RFC 8439 vectors and randomized
cross-checks); :mod:`repro.crypto.aead` uses this path.
"""

from __future__ import annotations

import numpy as np

from ..errors import CryptoError
from .chacha20 import KEY_SIZE, NONCE_SIZE

__all__ = ["chacha20_keystream", "chacha20_xor"]

_ROUNDS = 10  # double rounds
_CONSTANTS = np.array([0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32)


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_keystream(key: bytes, nonce: bytes, length: int, initial_counter: int = 1) -> bytes:
    """*length* keystream bytes, all blocks computed in parallel."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"ChaCha20 key must be {KEY_SIZE} bytes, got {len(key)}")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"ChaCha20 nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if length <= 0:
        return b""
    n_blocks = (length + 63) // 64
    if initial_counter < 0 or initial_counter + n_blocks - 1 > 0xFFFFFFFF:
        raise CryptoError("ChaCha20 block counter out of range")
    state = np.empty((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = np.frombuffer(key, dtype="<u4").astype(np.uint32)[:, None]
    state[12] = np.arange(initial_counter, initial_counter + n_blocks, dtype=np.uint64).astype(
        np.uint32
    )
    state[13:16] = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)[:, None]
    working = state.copy()
    with np.errstate(over="ignore"):
        for _ in range(_ROUNDS):
            _quarter(working, 0, 4, 8, 12)
            _quarter(working, 1, 5, 9, 13)
            _quarter(working, 2, 6, 10, 14)
            _quarter(working, 3, 7, 11, 15)
            _quarter(working, 0, 5, 10, 15)
            _quarter(working, 1, 6, 11, 12)
            _quarter(working, 2, 7, 8, 13)
            _quarter(working, 3, 4, 9, 14)
        working += state
    # Serialize block-major: block b is column b, words little-endian.
    stream = working.T.astype("<u4").tobytes()
    return stream[:length]


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt/decrypt *data* with the vectorized keystream."""
    if not data:
        return b""
    stream = chacha20_keystream(key, nonce, len(data), initial_counter)
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream, dtype=np.uint8)
    return (a ^ b).tobytes()
