"""Hash functions: from-scratch MD5 and SHA-256 plus a fast dispatcher.

The paper's platforms rely on MD5 (Content-MD5, AWS import/export logs)
and SHA-256 (Azure SharedKey HMAC).  Both are implemented here in pure
Python as the reference substrate and validated against :mod:`hashlib`
in the test suite.  Production call sites go through :func:`digest`,
which dispatches to ``hashlib`` for speed; the pure-Python classes stay
available for auditability and for the crypto micro-benchmarks.
"""

from __future__ import annotations

import hashlib
import struct

from ..errors import CryptoError

__all__ = [
    "MD5",
    "SHA256",
    "digest",
    "hexdigest",
    "DIGEST_SIZES",
    "HASH_NAMES",
]

HASH_NAMES = ("md5", "sha256")
DIGEST_SIZES = {"md5": 16, "sha256": 32}

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


# --------------------------------------------------------------------------
# MD5 (RFC 1321)
# --------------------------------------------------------------------------

_MD5_S = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

# K[i] = floor(2**32 * abs(sin(i + 1))), precomputed per RFC 1321.
_MD5_K = (
    0xD76AA478, 0xE8C7B756, 0x242070DB, 0xC1BDCEEE,
    0xF57C0FAF, 0x4787C62A, 0xA8304613, 0xFD469501,
    0x698098D8, 0x8B44F7AF, 0xFFFF5BB1, 0x895CD7BE,
    0x6B901122, 0xFD987193, 0xA679438E, 0x49B40821,
    0xF61E2562, 0xC040B340, 0x265E5A51, 0xE9B6C7AA,
    0xD62F105D, 0x02441453, 0xD8A1E681, 0xE7D3FBC8,
    0x21E1CDE6, 0xC33707D6, 0xF4D50D87, 0x455A14ED,
    0xA9E3E905, 0xFCEFA3F8, 0x676F02D9, 0x8D2A4C8A,
    0xFFFA3942, 0x8771F681, 0x6D9D6122, 0xFDE5380C,
    0xA4BEEA44, 0x4BDECFA9, 0xF6BB4B60, 0xBEBFBC70,
    0x289B7EC6, 0xEAA127FA, 0xD4EF3085, 0x04881D05,
    0xD9D4D039, 0xE6DB99E5, 0x1FA27CF8, 0xC4AC5665,
    0xF4292244, 0x432AFF97, 0xAB9423A7, 0xFC93A039,
    0x655B59C3, 0x8F0CCC92, 0xFFEFF47D, 0x85845DD1,
    0x6FA87E4F, 0xFE2CE6E0, 0xA3014314, 0x4E0811A1,
    0xF7537E82, 0xBD3AF235, 0x2AD7D2BB, 0xEB86D391,
)


class MD5:
    """Incremental pure-Python MD5 with the hashlib interface subset."""

    digest_size = 16
    block_size = 64
    name = "md5"

    def __init__(self, data: bytes = b"") -> None:
        self._h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476]
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Feed more bytes into the hash state."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]

    def _compress(self, block: bytes) -> None:
        m = struct.unpack("<16I", block)
        a, b, c, d = self._h
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK32))
                g = (7 * i) % 16
            f = (f + a + _MD5_K[i] + m[g]) & _MASK32
            a, d, c = d, c, b
            b = (b + _rotl32(f, _MD5_S[i])) & _MASK32
        self._h = [
            (self._h[0] + a) & _MASK32,
            (self._h[1] + b) & _MASK32,
            (self._h[2] + c) & _MASK32,
            (self._h[3] + d) & _MASK32,
        ]

    def digest(self) -> bytes:
        """Return the 16-byte digest of everything fed so far."""
        clone = MD5()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        bit_len = clone._length * 8
        pad_len = (56 - (clone._length + 1)) % 64
        clone._buffer += b"\x80" + b"\x00" * pad_len + struct.pack("<Q", bit_len & 0xFFFFFFFFFFFFFFFF)
        while clone._buffer:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack("<4I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "MD5":
        clone = MD5()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


# --------------------------------------------------------------------------
# SHA-256 (FIPS 180-4)
# --------------------------------------------------------------------------

_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_SHA256_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


class SHA256:
    """Incremental pure-Python SHA-256 with the hashlib interface subset."""

    digest_size = 32
    block_size = 64
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_SHA256_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Feed more bytes into the hash state."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 64):
            s0 = _rotr32(w[i - 15], 7) ^ _rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr32(w[i - 2], 17) ^ _rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, h = self._h
        for i in range(64):
            s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _SHA256_K[i] + w[i]) & _MASK32
            s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & _MASK32
            h, g, f, e = g, f, e, (d + temp1) & _MASK32
            d, c, b, a = c, b, a, (temp1 + temp2) & _MASK32
        self._h = [(x + y) & _MASK32 for x, y in zip(self._h, (a, b, c, d, e, f, g, h))]

    def digest(self) -> bytes:
        """Return the 32-byte digest of everything fed so far."""
        clone = self.copy()
        bit_len = clone._length * 8
        pad_len = (56 - (clone._length + 1)) % 64
        clone._buffer += b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_len)
        while clone._buffer:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "SHA256":
        clone = SHA256()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


# --------------------------------------------------------------------------
# Dispatcher
# --------------------------------------------------------------------------

_PURE = {"md5": MD5, "sha256": SHA256}


def digest(name: str, data: bytes, *, pure: bool = False) -> bytes:
    """One-shot digest of *data* with the named algorithm.

    Dispatches to :mod:`hashlib` unless ``pure=True``, which forces the
    from-scratch implementation (used by tests and micro-benchmarks).
    """
    if name not in _PURE:
        raise CryptoError(f"unknown hash algorithm: {name!r}")
    if pure:
        return _PURE[name](data).digest()
    return hashlib.new(name, data).digest()


def hexdigest(name: str, data: bytes, *, pure: bool = False) -> str:
    """Hex form of :func:`digest`."""
    return digest(name, data, pure=pure).hex()
