"""Primality testing and prime generation.

Implements deterministic trial division for small candidates and
Miller-Rabin for large ones, plus generators for random primes, safe
primes, and the fixed field prime used by Shamir secret sharing.

All randomness is drawn from a caller-supplied DRBG
(:class:`repro.crypto.drbg.HmacDrbg`) so that key generation is
reproducible in simulations and tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import CryptoError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .drbg import HmacDrbg

__all__ = [
    "SMALL_PRIMES",
    "MERSENNE_521",
    "is_prime",
    "miller_rabin",
    "generate_prime",
    "generate_safe_prime",
    "next_prime",
]

# Primes below 300, used for cheap trial division before Miller-Rabin.
SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293,
)

#: The Mersenne prime 2**521 - 1; field modulus for Shamir secret sharing
#: of 256-bit digests (any secret up to 520 bits fits).
MERSENNE_521: int = (1 << 521) - 1


def miller_rabin(n: int, witnesses: list[int]) -> bool:
    """Miller-Rabin primality test of *n* against explicit *witnesses*.

    Returns False when any witness proves compositeness.  ``n`` must be
    odd and > 2.
    """
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


# Deterministic witness set: correct for all n < 3.3 * 10**24, and a
# strong probabilistic test beyond that.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def is_prime(n: int, rng: "HmacDrbg | None" = None, rounds: int = 20) -> bool:
    """Primality test.

    Small candidates use trial division; large ones use Miller-Rabin
    with the deterministic witness base plus, when *rng* is given,
    *rounds* extra random witnesses.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    witnesses = list(_DETERMINISTIC_WITNESSES)
    if rng is not None:
        witnesses.extend(rng.randint(2, n - 2) for _ in range(rounds))
    return miller_rabin(n, witnesses)


def generate_prime(bits: int, rng: "HmacDrbg") -> int:
    """Generate a random prime with exactly *bits* bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2 * bits`` bits (needed by RSA key sizing).
    """
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: "HmacDrbg", max_tries: int = 100000) -> int:
    """Generate a safe prime ``p = 2q + 1`` with *bits* bits.

    Safe primes make every quadratic residue generate the order-q
    subgroup, which is what :mod:`repro.crypto.dh` wants.
    """
    if bits < 16:
        raise CryptoError(f"safe prime size too small: {bits} bits")
    for _ in range(max_tries):
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_prime(p, rng):
            return p
    raise CryptoError(f"no safe prime found in {max_tries} tries")


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than *n*."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate
