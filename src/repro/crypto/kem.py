"""Hybrid public-key encryption: RSA-KEM + ChaCha20/HMAC AEAD.

The paper encrypts evidence "with the recipient's public key" (§4.1).
Evidence objects are larger than one RSA block, so — as any real
implementation would — we wrap a fresh symmetric key with RSA and seal
the payload with the AEAD.  Wire format::

    len(wrapped_key) (2 bytes, big endian) || wrapped_key || sealed_box
"""

from __future__ import annotations

import struct

from ..errors import DecryptionError
from . import aead, rsa
from .chacha20 import NONCE_SIZE
from .drbg import HmacDrbg

__all__ = ["hybrid_encrypt", "hybrid_decrypt"]

_KEY_LEN = 32


def hybrid_encrypt(
    public_key: rsa.RsaPublicKey, plaintext: bytes, rng: HmacDrbg, aad: bytes = b""
) -> bytes:
    """Encrypt arbitrary-length *plaintext* to *public_key*."""
    session_key = rng.generate(_KEY_LEN)
    nonce = rng.generate(NONCE_SIZE)
    wrapped = rsa.encrypt(public_key, session_key, rng)
    sealed = aead.seal(session_key, nonce, plaintext, aad)
    return struct.pack(">H", len(wrapped)) + wrapped + sealed


def hybrid_decrypt(
    private_key: rsa.RsaPrivateKey, blob: bytes, aad: bytes = b""
) -> bytes:
    """Decrypt a blob produced by :func:`hybrid_encrypt`."""
    if len(blob) < 2:
        raise DecryptionError("hybrid blob too short")
    (wrapped_len,) = struct.unpack(">H", blob[:2])
    wrapped = blob[2 : 2 + wrapped_len]
    sealed = blob[2 + wrapped_len :]
    if len(wrapped) != wrapped_len:
        raise DecryptionError("hybrid blob truncated")
    session_key = rsa.decrypt(private_key, wrapped)
    if len(session_key) != _KEY_LEN:
        raise DecryptionError("wrapped session key has wrong length")
    return aead.open_(session_key, sealed, aad)
