"""Hybrid public-key encryption: RSA-KEM + ChaCha20/HMAC AEAD.

The paper encrypts evidence "with the recipient's public key" (§4.1).
Evidence objects are larger than one RSA block, so — as any real
implementation would — we wrap a fresh symmetric key with RSA and seal
the payload with the AEAD.  Wire format::

    len(wrapped_key) (2 bytes, big endian) || wrapped_key || sealed_box
"""

from __future__ import annotations

import struct

from ..errors import DecryptionError
from . import aead, rsa
from . import cache as _cache
from .chacha20 import NONCE_SIZE
from .drbg import HmacDrbg

__all__ = ["hybrid_encrypt", "hybrid_decrypt"]

_KEY_LEN = 32


def hybrid_encrypt(
    public_key: rsa.RsaPublicKey,
    plaintext: bytes,
    rng: HmacDrbg,
    aad: bytes = b"",
    cache_scope: str | None = None,
) -> bytes:
    """Encrypt arbitrary-length *plaintext* to *public_key*.

    When *cache_scope* is given (the sender's name) and a
    :mod:`repro.crypto.cache` bundle is installed, the RSA-wrapped
    session key for ``(scope, recipient key)`` is reused across calls —
    this is an ordinary per-peer session key; only the AEAD nonce is
    drawn fresh per message, so no nonce ever repeats under one key.
    Scoping by sender keeps two senders from sharing a session key.
    The wire format and all lengths are identical with or without the
    cache.
    """
    caches = _cache.caches
    if caches is not None and cache_scope is not None:
        cache_key = (cache_scope, public_key.n, public_key.e)
        pair = caches.kem_wrap.get(cache_key)
        if pair is not None:
            session_key, wrapped = pair
            nonce = rng.generate(NONCE_SIZE)
        else:
            # Miss path draws in the same order as the uncached path,
            # so the first sealing to a peer is byte-identical to an
            # uncached run.
            session_key = rng.generate(_KEY_LEN)
            nonce = rng.generate(NONCE_SIZE)
            wrapped = rsa.encrypt(public_key, session_key, rng)
            caches.kem_wrap.put(cache_key, (session_key, wrapped))
    else:
        session_key = rng.generate(_KEY_LEN)
        nonce = rng.generate(NONCE_SIZE)
        wrapped = rsa.encrypt(public_key, session_key, rng)
    sealed = aead.seal(session_key, nonce, plaintext, aad)
    return struct.pack(">H", len(wrapped)) + wrapped + sealed


def hybrid_decrypt(
    private_key: rsa.RsaPrivateKey, blob: bytes, aad: bytes = b""
) -> bytes:
    """Decrypt a blob produced by :func:`hybrid_encrypt`.

    With a :mod:`repro.crypto.cache` bundle installed, the unwrap of a
    previously seen wrapped key is served from the recipient's own
    cache — populated only by this function's first successful RSA
    decryption, never by the sender's side, so nothing crosses the
    simulated wire beyond the blob itself.
    """
    if len(blob) < 2:
        raise DecryptionError("hybrid blob too short")
    (wrapped_len,) = struct.unpack(">H", blob[:2])
    wrapped = blob[2 : 2 + wrapped_len]
    sealed = blob[2 + wrapped_len :]
    if len(wrapped) != wrapped_len:
        raise DecryptionError("hybrid blob truncated")
    caches = _cache.caches
    cache_key = (private_key.n, wrapped) if caches is not None else None
    session_key = caches.kem_unwrap.get(cache_key) if caches is not None else None
    if session_key is None:
        session_key = rsa.decrypt(private_key, wrapped)
        if len(session_key) != _KEY_LEN:
            raise DecryptionError("wrapped session key has wrong length")
        if caches is not None:
            caches.kem_unwrap.put(cache_key, session_key)
    return aead.open_(session_key, sealed, aad)
