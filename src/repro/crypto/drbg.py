"""Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A style).

All randomness in the library — key generation, nonces, simulated
network jitter, workload generation — flows through instances of
:class:`HmacDrbg` so that every experiment is reproducible bit-for-bit
from its seed.  This is the "deterministic simulation" design decision
recorded in DESIGN.md §5.
"""

from __future__ import annotations

from ..errors import CryptoError
from .hmac_ import hmac_digest

__all__ = ["HmacDrbg"]


class HmacDrbg:
    """HMAC-SHA256 based DRBG with convenience integer/float draws.

    The update/generate loop follows SP 800-90A's HMAC_DRBG; reseeding
    and prediction resistance are out of scope for a simulator.
    """

    def __init__(self, seed: bytes | str | int, personalization: bytes = b"") -> None:
        if isinstance(seed, str):
            seed = seed.encode()
        elif isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed + personalization)
        self._reseed_counter = 1

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_digest(self._key, self._value + b"\x00" + provided)
        self._value = hmac_digest(self._key, self._value)
        if provided:
            self._key = hmac_digest(self._key, self._value + b"\x01" + provided)
            self._value = hmac_digest(self._key, self._value)

    def generate(self, n_bytes: int) -> bytes:
        """Return *n_bytes* pseudo-random bytes."""
        if n_bytes < 0:
            raise CryptoError("cannot generate a negative number of bytes")
        chunks = []
        produced = 0
        while produced < n_bytes:
            self._value = hmac_digest(self._key, self._value)
            chunks.append(self._value)
            produced += len(self._value)
        self._update()
        self._reseed_counter += 1
        return b"".join(chunks)[:n_bytes]

    # -- convenience draws -------------------------------------------------

    def randbits(self, bits: int) -> int:
        """Uniform integer in ``[0, 2**bits)``."""
        if bits <= 0:
            raise CryptoError("bits must be positive")
        n_bytes = (bits + 7) // 8
        value = int.from_bytes(self.generate(n_bytes), "big")
        return value >> (n_bytes * 8 - bits)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``.

        Uses rejection sampling so the distribution is exactly uniform.
        """
        if low > high:
            raise CryptoError(f"empty range [{low}, {high}]")
        span = high - low + 1
        bits = span.bit_length()
        while True:
            value = self.randbits(bits)
            if value < span:
                return low + value

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return self.randbits(53) / (1 << 53)

    def choice(self, seq):
        """Uniformly choose one element of a non-empty sequence."""
        if not seq:
            raise CryptoError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed draw with the given rate (>0)."""
        import math

        if rate <= 0:
            raise CryptoError("rate must be positive")
        u = self.random()
        # u is in [0, 1); guard the log argument away from zero.
        return -math.log(1.0 - u) / rate

    def fork(self, label: str | bytes) -> "HmacDrbg":
        """Derive an independent child generator.

        Children with distinct labels produce independent streams;
        forking does not perturb the parent's own stream beyond one
        generate call.
        """
        if isinstance(label, str):
            label = label.encode()
        return HmacDrbg(self.generate(32), personalization=label)
