"""A miniature PKI: identities, certificates, a CA, and a key registry.

The paper assumes each party "gets the other's public key" and "should
authenticate the validity to avoid the MITM" (§5.1).  This module makes
that assumption concrete: a :class:`CertificateAuthority` signs
:class:`Certificate` objects binding an identity string to an RSA
public key; a :class:`KeyRegistry` is the directory parties consult.
The MITM attack demonstrates what happens when a party skips
certificate validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CertificateError
from .drbg import HmacDrbg
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair, sign, verify

__all__ = ["Identity", "Certificate", "CertificateAuthority", "KeyRegistry"]

DEFAULT_KEY_BITS = 512  # scaled-down for simulation speed (DESIGN.md §2)


@dataclass(frozen=True)
class Identity:
    """A named principal and its keypair."""

    name: str
    private_key: RsaPrivateKey

    @property
    def public_key(self) -> RsaPublicKey:
        return self.private_key.public_key()

    @staticmethod
    def generate(name: str, rng: HmacDrbg, bits: int = DEFAULT_KEY_BITS) -> "Identity":
        return Identity(name=name, private_key=generate_keypair(bits, rng.fork(f"id/{name}")))


@dataclass(frozen=True)
class Certificate:
    """Binding of a subject name to a public key, signed by an issuer."""

    subject: str
    public_key: RsaPublicKey
    issuer: str
    not_before: float
    not_after: float
    serial: int
    signature: bytes = b""

    def to_signed_bytes(self) -> bytes:
        """Canonical byte encoding covered by the issuer's signature."""
        return "|".join(
            [
                "repro-cert-v1",
                self.subject,
                str(self.public_key.n),
                str(self.public_key.e),
                self.issuer,
                repr(self.not_before),
                repr(self.not_after),
                str(self.serial),
            ]
        ).encode()


class CertificateAuthority:
    """Issues and validates certificates; the PKI trust root."""

    def __init__(self, name: str, rng: HmacDrbg, bits: int = DEFAULT_KEY_BITS) -> None:
        self.name = name
        self._identity = Identity.generate(name, rng, bits)
        self._next_serial = 1
        self._revoked: set[int] = set()

    @property
    def public_key(self) -> RsaPublicKey:
        return self._identity.public_key

    def issue(
        self,
        subject: str,
        public_key: RsaPublicKey,
        not_before: float = 0.0,
        not_after: float = float("inf"),
    ) -> Certificate:
        """Sign a certificate for *subject*'s *public_key*."""
        cert = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            not_before=not_before,
            not_after=not_after,
            serial=self._next_serial,
        )
        self._next_serial += 1
        signature = sign(self._identity.private_key, cert.to_signed_bytes())
        return Certificate(
            subject=cert.subject,
            public_key=cert.public_key,
            issuer=cert.issuer,
            not_before=cert.not_before,
            not_after=cert.not_after,
            serial=cert.serial,
            signature=signature,
        )

    def revoke(self, serial: int) -> None:
        """Add a certificate serial to the revocation list."""
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def validate(self, cert: Certificate, at_time: float = 0.0) -> None:
        """Raise :class:`CertificateError` unless *cert* is currently valid."""
        if cert.issuer != self.name:
            raise CertificateError(f"certificate issued by {cert.issuer!r}, not {self.name!r}")
        if cert.serial in self._revoked:
            raise CertificateError(f"certificate serial {cert.serial} is revoked")
        if not cert.not_before <= at_time <= cert.not_after:
            raise CertificateError(
                f"certificate not valid at t={at_time} "
                f"(window [{cert.not_before}, {cert.not_after}])"
            )
        if not verify(self.public_key, cert.to_signed_bytes(), cert.signature):
            raise CertificateError("certificate signature invalid")


@dataclass
class KeyRegistry:
    """Directory of validated certificates, indexed by subject name.

    Parties look up peers here instead of trusting keys received
    in-band — the distinction the MITM analysis (§5.1) hinges on.
    """

    ca: CertificateAuthority
    _certs: dict[str, Certificate] = field(default_factory=dict)

    def register(self, cert: Certificate, at_time: float = 0.0) -> None:
        """Validate and store a certificate."""
        self.ca.validate(cert, at_time)
        self._certs[cert.subject] = cert

    def enroll(self, identity: Identity, at_time: float = 0.0) -> Certificate:
        """Issue-and-register convenience for simulation setup."""
        cert = self.ca.issue(identity.name, identity.public_key)
        self.register(cert, at_time)
        return cert

    def lookup(self, subject: str) -> RsaPublicKey:
        """Public key of *subject*; raises if unknown."""
        try:
            return self._certs[subject].public_key
        except KeyError as exc:
            raise CertificateError(f"no certificate registered for {subject!r}") from exc

    def certificate(self, subject: str) -> Certificate:
        try:
            return self._certs[subject]
        except KeyError as exc:
            raise CertificateError(f"no certificate registered for {subject!r}") from exc

    def known_subjects(self) -> list[str]:
        return sorted(self._certs)
