"""Opt-in LRU caches for the crypto hot paths.

Like :mod:`repro.crypto.instrument`, this is a deliberately tiny leaf
module (stdlib only, no repro imports) exposing one process-wide seat:
``caches`` is ``None`` — the default, costing the hot paths one
attribute load and one ``is None`` test — or a :class:`CryptoCaches`
installed by the throughput engine.

What is safe to cache, and why:

* **Signature verification** is a pure function of ``(public key, hash
  algorithm, message digest, signature)``; the multi-tenant engine
  re-verifies the same NRO/NRR data-hash signature on the upload, the
  download response, and the arbitration path, so repeats are common.
* **Signing** is deterministic in this PKCS#1 v1.5 shape (no salt), so
  ``(private key, hash algorithm, message digest)`` fully determines
  the signature blob.
* **KEM wrap**: a sender re-sealing evidence to the same recipient may
  reuse its cached ``(session_key, wrapped_key)`` pair — the expensive
  RSA encryption — drawing only a fresh AEAD nonce per message.  The
  cache key includes a ``scope`` (the sender's name) so two senders
  never share a session key, mirroring real per-peer session keys.
* **KEM unwrap**: the recipient caches ``wrapped_key -> session_key``
  after its *own* first private-key decryption; nothing crosses the
  simulated wire except bytes that were already there.

None of this changes any observable protocol output: signatures are
byte-identical, wire sizes are unchanged (the AEAD nonce has a fixed
length), and channel randomness comes from the network's own DRBG
stream — campaign and experiment signatures stay byte-identical with
caches on or off, which ``tests/engine`` asserts.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Hashable

__all__ = ["LruCache", "CryptoCaches", "caches", "install", "uninstall", "crypto_caches"]

_MISSING = object()


class LruCache:
    """A bounded mapping with least-recently-used eviction and counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Any:
        """Return the cached value or ``None``; counts a hit or a miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }


class CryptoCaches:
    """The cache bundle the hot paths consult when installed.

    Default capacities are sized for the 1000-tenant TP1 sweep: each
    tenant contributes a handful of distinct (digest, signature) pairs
    and one KEM peer relationship, so 4096 entries hold the whole
    working set without eviction churn.
    """

    def __init__(
        self,
        verify_capacity: int = 4096,
        sign_capacity: int = 2048,
        kem_capacity: int = 4096,
    ) -> None:
        self.verify = LruCache(verify_capacity)
        self.sign = LruCache(sign_capacity)
        self.kem_wrap = LruCache(kem_capacity)
        self.kem_unwrap = LruCache(kem_capacity)

    def stats(self) -> dict[str, dict[str, float]]:
        return {
            "verify": self.verify.stats(),
            "sign": self.sign.stats(),
            "kem_wrap": self.kem_wrap.stats(),
            "kem_unwrap": self.kem_unwrap.stats(),
        }


caches: CryptoCaches | None = None


def install(bundle: CryptoCaches) -> None:
    """Install *bundle* as the process-wide crypto cache seat."""
    global caches
    caches = bundle


def uninstall() -> None:
    global caches
    caches = None


@contextmanager
def crypto_caches(bundle: CryptoCaches | None = None):
    """Scoped installation; restores whatever was installed before.

    Yields the active bundle (a fresh :class:`CryptoCaches` when none
    is passed) so callers can read ``bundle.stats()`` afterwards.
    """
    global caches
    active = bundle if bundle is not None else CryptoCaches()
    previous = caches
    caches = active
    try:
        yield active
    finally:
        caches = previous
