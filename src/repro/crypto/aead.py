"""Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.

A deliberately simple AEAD composition over the from-scratch primitives
(rather than Poly1305) so every piece is independently testable.  The
wire format is ``nonce (12) || ciphertext || tag (32)``, with the tag
computed over ``aad_len(8) || aad || nonce || ciphertext``.
"""

from __future__ import annotations

import struct
from time import perf_counter

from ..errors import CryptoError, DecryptionError
from . import instrument as _instrument
from .chacha20 import KEY_SIZE, NONCE_SIZE
from .chacha20_np import chacha20_xor  # vectorized; bit-identical to the reference
from .hmac_ import constant_time_equals, hmac_digest

__all__ = ["seal", "open_", "derive_keys", "TAG_SIZE", "OVERHEAD"]

TAG_SIZE = 32
OVERHEAD = NONCE_SIZE + TAG_SIZE


def derive_keys(master: bytes) -> tuple[bytes, bytes]:
    """Split a master secret into (encryption key, MAC key).

    Simple HKDF-like expansion with domain-separating labels.
    """
    enc = hmac_digest(master, b"repro/aead/enc")
    mac = hmac_digest(master, b"repro/aead/mac")
    return enc[:KEY_SIZE], mac


def _tag_input(aad: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    return struct.pack(">Q", len(aad)) + aad + nonce + ciphertext


def seal(master: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate *plaintext*.

    Returns ``nonce || ciphertext || tag``.  The caller must never reuse
    a nonce under the same key; protocol code draws nonces from a DRBG.
    """
    observer = _instrument.observer
    started = perf_counter() if observer is not None else 0.0
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    enc_key, mac_key = derive_keys(master)
    ciphertext = chacha20_xor(enc_key, nonce, plaintext)
    tag = hmac_digest(mac_key, _tag_input(aad, nonce, ciphertext))
    if observer is not None:
        observer.crypto_call("aead.seal", perf_counter() - started)
    return nonce + ciphertext + tag


def open_(master: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt a box produced by :func:`seal`.

    Raises :class:`DecryptionError` on any tampering — of the
    ciphertext, the nonce, or the associated data.
    """
    observer = _instrument.observer
    if observer is None:
        return _open(master, sealed, aad)
    started = perf_counter()
    try:
        return _open(master, sealed, aad)
    finally:
        observer.crypto_call("aead.open", perf_counter() - started)


def _open(master: bytes, sealed: bytes, aad: bytes) -> bytes:
    if len(sealed) < OVERHEAD:
        raise DecryptionError("sealed box too short")
    nonce = sealed[:NONCE_SIZE]
    ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
    tag = sealed[-TAG_SIZE:]
    enc_key, mac_key = derive_keys(master)
    expected = hmac_digest(mac_key, _tag_input(aad, nonce, ciphertext))
    if not constant_time_equals(expected, tag):
        raise DecryptionError("AEAD tag mismatch")
    return chacha20_xor(enc_key, nonce, ciphertext)
