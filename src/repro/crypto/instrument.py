"""Observer seat for the crypto hot paths.

A deliberately tiny leaf module (no repro imports) so ``rsa`` and
``aead`` can consult it without any risk of import cycles.  The
observability layer (:mod:`repro.obs.instrument`) installs an object
exposing ``crypto_call(op: str, wall_seconds: float)`` here; when
``observer`` is ``None`` — the default — the hot paths pay exactly one
attribute load and one ``is None`` test per call.
"""

from __future__ import annotations

observer = None


def set_observer(obs) -> None:
    """Install (or, with ``None``, remove) the process-wide observer."""
    global observer
    observer = obs
