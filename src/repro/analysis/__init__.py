"""Analysis layer: metrics, experiment runners, and report rendering.

``experiments`` holds one deterministic runner per table/figure of
DESIGN.md §4; the ``benchmarks/`` directory times and prints them.
"""

from . import diagram, experiments, metrics, report, stats, workload
from .experiments import (
    ExperimentResult,
    experiment_attacks,
    experiment_evidence_ablation,
    experiment_fault_campaign,
    experiment_resilience,
    experiment_scalability,
    experiment_bridging,
    experiment_fig1,
    experiment_fig2,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_shipping,
    experiment_step_counts,
    experiment_table1,
)
from .diagram import sequence_diagram
from .metrics import ProtocolCost, compare, measure
from .stats import format_rate, mean_ci, wilson_interval
from .workload import WorkloadReport, WorkloadSpec, resilience_sweep, run_workload
from .report import render_kv, render_table, section

__all__ = [
    "diagram",
    "stats",
    "sequence_diagram",
    "format_rate",
    "mean_ci",
    "wilson_interval",
    "experiments",
    "metrics",
    "report",
    "workload",
    "WorkloadReport",
    "WorkloadSpec",
    "resilience_sweep",
    "run_workload",
    "experiment_evidence_ablation",
    "experiment_fault_campaign",
    "experiment_resilience",
    "experiment_scalability",
    "ExperimentResult",
    "experiment_attacks",
    "experiment_bridging",
    "experiment_fig1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_shipping",
    "experiment_step_counts",
    "experiment_table1",
    "ProtocolCost",
    "compare",
    "measure",
    "render_kv",
    "render_table",
    "section",
]
