"""Workload generation: many clients, many transactions, lossy links.

The paper motivates TPNR with cloud-scale backup, so the harness must
show the protocol at more than one-transaction scale.  This module
drives N concurrent clients through M transactions each over a
configurable channel and aggregates the outcomes — the basis of the W1
(scalability) and R1 (loss resilience) extension benchmarks.

Key property exercised here: **finite termination**.  Whatever the
channel drops, every transaction ends in a terminal state (COMPLETED /
RESOLVED / ABORTED / FAILED) — there is no limbo, because every wait is
bounded by a time-out and every time-out has a resolution path
(Resolve, restart, or a TTP failure statement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.policy import DEFAULT_POLICY, TpnrPolicy
from ..core.protocol import Deployment, make_deployment
from ..core.provider import HONEST, ProviderBehavior
from ..core.transaction import TxStatus
from ..crypto.drbg import HmacDrbg
from ..errors import ProtocolError
from ..net.channel import ChannelSpec

__all__ = ["WorkloadSpec", "WorkloadReport", "run_workload", "resilience_sweep"]

TERMINAL = (TxStatus.COMPLETED, TxStatus.RESOLVED, TxStatus.ABORTED, TxStatus.FAILED)


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one generated workload."""

    n_clients: int = 4
    transactions_per_client: int = 5
    min_payload: int = 256
    max_payload: int = 4096
    arrival_window: float = 10.0  # uploads start uniformly in [0, window)

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.transactions_per_client < 1:
            raise ProtocolError("workload needs at least one client and transaction")
        if not 0 < self.min_payload <= self.max_payload:
            raise ProtocolError("invalid payload size range")
        if self.arrival_window < 0:
            raise ProtocolError("arrival window must be non-negative")

    @property
    def total_transactions(self) -> int:
        return self.n_clients * self.transactions_per_client


@dataclass
class WorkloadReport:
    """Aggregated outcome of one workload run."""

    spec: WorkloadSpec
    status_counts: dict[str, int] = field(default_factory=dict)
    total_messages: int = 0
    total_bytes: int = 0
    elapsed: float = 0.0
    provider_objects: int = 0
    evidence_items: int = 0
    unterminated: int = 0

    @property
    def success_rate(self) -> float:
        """Fraction of transactions ending COMPLETED or RESOLVED."""
        good = self.status_counts.get("completed", 0) + self.status_counts.get("resolved", 0)
        return good / self.spec.total_transactions

    @property
    def all_terminated(self) -> bool:
        return self.unterminated == 0


def run_workload(
    seed: bytes,
    spec: WorkloadSpec,
    channel: ChannelSpec = ChannelSpec(base_latency=0.02),
    behavior: ProviderBehavior = HONEST,
    policy: TpnrPolicy = DEFAULT_POLICY,
) -> tuple[Deployment, WorkloadReport]:
    """Drive *spec* to quiescence; returns the world and the report."""
    names = tuple(f"user-{i}" for i in range(1, spec.n_clients))
    dep = make_deployment(
        seed=seed, channel=channel, behavior=behavior, policy=policy,
        extra_client_names=names,
    )
    clients = [dep.client, *dep.extra_clients.values()]
    workload_rng = HmacDrbg(seed, b"workload")
    dep.network.trace.clear()
    for client in clients:
        for _ in range(spec.transactions_per_client):
            payload = workload_rng.generate(
                workload_rng.randint(spec.min_payload, spec.max_payload)
            )
            start = workload_rng.random() * spec.arrival_window
            dep.sim.schedule(
                start,
                lambda c=client, p=payload: c.upload(dep.provider.name, p),
            )
    dep.run()
    report = WorkloadReport(spec=spec)
    for client in clients:
        for record in client.transactions.values():
            report.status_counts[record.status.value] = (
                report.status_counts.get(record.status.value, 0) + 1
            )
            if record.status not in TERMINAL:
                report.unterminated += 1
        report.evidence_items += len(client.evidence_store)
    sends = dep.network.trace.sends("tpnr.")
    report.total_messages = len(sends)
    report.total_bytes = sum(e.size_bytes for e in sends)
    report.elapsed = dep.sim.now
    report.provider_objects = len(dep.provider.store)
    report.evidence_items += len(dep.provider.evidence_store)
    return dep, report


def resilience_sweep(
    seed: bytes,
    drop_probs: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4),
    spec: WorkloadSpec = WorkloadSpec(n_clients=3, transactions_per_client=4),
) -> list[tuple[float, WorkloadReport]]:
    """Run the workload across increasingly lossy channels.

    Expected shape: success rate degrades gracefully with loss, but
    every transaction still terminates (the §5.5 finiteness property).
    """
    results = []
    for drop in drop_probs:
        channel = ChannelSpec(base_latency=0.02, drop_prob=drop)
        _, report = run_workload(seed + f"/drop={drop}".encode(), spec, channel)
        results.append((drop, report))
    return results
