"""ASCII sequence diagrams from network traces.

Turns a :class:`~repro.net.trace.TraceRecorder` into the kind of
message-sequence chart the paper's Fig. 6 draws, so the F6 benchmark's
artifact visually matches the figure::

    alice                 bob                   ttp
      |--tpnr.upload------->|                    |
      |<--tpnr.upload.rec---|                    |

Participants are laid out in first-appearance order (or an explicit
order), one lane per node; each send event becomes one arrow labelled
with the message kind.
"""

from __future__ import annotations

from ..errors import ReproError
from ..net.trace import TraceRecorder

__all__ = ["sequence_diagram"]

_LANE_WIDTH = 22


def _arrow(src_idx: int, dst_idx: int, label: str, n_lanes: int) -> str:
    """One diagram line: lanes as '|', an arrow between two of them."""
    cells = ["|" + " " * (_LANE_WIDTH - 1) for _ in range(n_lanes)]
    left, right = min(src_idx, dst_idx), max(src_idx, dst_idx)
    span = (right - left) * _LANE_WIDTH - 1
    label = label[: span - 4]
    if src_idx < dst_idx:
        body = "--" + label + "-" * (span - 3 - len(label)) + ">"
    else:
        body = "<-" + label + "-" * (span - 3 - len(label)) + "-"
    line = ""
    for i, cell in enumerate(cells):
        if i == left:
            line += "|" + body
        elif left < i < right:
            continue  # covered by the arrow body
        else:
            line += cell
    return line.rstrip()


def sequence_diagram(
    trace: TraceRecorder,
    kind_prefix: str = "",
    participants: list[str] | None = None,
    show_time: bool = True,
) -> str:
    """Render the send events of *trace* as a sequence chart."""
    sends = trace.sends(kind_prefix)
    if not sends:
        return "(no messages)"
    if participants is None:
        participants = []
        for event in sends:
            for name in (event.src, event.dst):
                if name not in participants:
                    participants.append(name)
    index = {name: i for i, name in enumerate(participants)}
    missing = {e.src for e in sends} | {e.dst for e in sends} - set(participants)
    missing -= set(participants)
    if missing:
        raise ReproError(f"participants missing from layout: {sorted(missing)}")
    header = "".join(name.ljust(_LANE_WIDTH) for name in participants).rstrip()
    lines = [header]
    for event in sends:
        # The common prefix is visual noise inside the lanes; drop it.
        label = event.kind[len(kind_prefix):] if kind_prefix else event.kind
        arrow = _arrow(index[event.src], index[event.dst], label, len(participants))
        if show_time:
            arrow += f"   t={event.time:.3f}"
        lines.append(arrow)
    return "\n".join(lines)
