"""Plain-text table rendering for experiment output.

The benchmarks print the regenerated tables/figures with these
helpers so the bench output reads like the paper's artifacts.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_kv", "section"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an ASCII table with column auto-sizing."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("|".join(f" {h:<{w}} " for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append("|".join(f" {c:<{w}} " for c, w in zip(row, widths)))
    lines.append(sep)
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, Any]], title: str = "") -> str:
    """Render key/value pairs as an aligned block."""
    pairs = list(pairs)
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"  {k:<{width}} : {_fmt(v)}" for k, v in pairs)
    return "\n".join(lines)


def section(name: str) -> str:
    """A visual section divider."""
    bar = "=" * max(8, len(name) + 8)
    return f"\n{bar}\n    {name}\n{bar}"
