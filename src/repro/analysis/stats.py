"""Statistical helpers for experiment reporting.

Detection/attribution rates in the F5 experiment are binomial
proportions estimated from a finite number of trials; reporting them
bare invites over-reading.  This module provides Wilson score intervals
(well-behaved at p = 0 and p = 1, unlike the normal approximation) and
simple mean/confidence summaries for latency samples.
"""

from __future__ import annotations

import math

from scipy import stats as sps

from ..errors import ReproError

__all__ = ["wilson_interval", "format_rate", "mean_ci"]


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError(f"successes {successes} out of range for {trials} trials")
    if not 0 < confidence < 1:
        raise ReproError("confidence must be in (0, 1)")
    z = float(sps.norm.ppf(0.5 + confidence / 2))
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # The boundary cases are exact mathematically; snap away the
    # floating-point residue so p = 0 / p = 1 sit inside their interval.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def format_rate(successes: int, trials: int, confidence: float = 0.95) -> str:
    """``"0.80 [0.49, 0.94]"``-style rate with its Wilson interval."""
    low, high = wilson_interval(successes, trials, confidence)
    return f"{successes / trials:.2f} [{low:.2f}, {high:.2f}]"


def mean_ci(samples: list[float], confidence: float = 0.95) -> tuple[float, float, float]:
    """(mean, low, high) using the t-distribution.

    A single sample gets a degenerate interval at its own value.
    """
    if not samples:
        raise ReproError("no samples")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return mean, mean, mean
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    t = float(sps.t.ppf(0.5 + confidence / 2, df=n - 1))
    return mean, mean - t * sem, mean + t * sem
