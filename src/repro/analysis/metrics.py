"""Metrics extracted from simulation traces.

The quantities the paper reasons about qualitatively: protocol *steps*
(messages sent), bytes on the wire, which roles took part, and
end-to-end latency.  Everything here is derived from
:class:`repro.net.trace.TraceRecorder` events, so any protocol run on
the simulated network can be measured the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.trace import TraceRecorder

__all__ = ["ProtocolCost", "measure", "compare"]


@dataclass(frozen=True)
class ProtocolCost:
    """The cost profile of one protocol run."""

    label: str
    steps: int
    bytes_on_wire: int
    latency: float
    participants: int
    ttp_messages: int

    @property
    def uses_ttp(self) -> bool:
        return self.ttp_messages > 0


def measure(trace: TraceRecorder, label: str, kind_prefix: str = "",
            ttp_names: tuple[str, ...] = ("ttp", "zg-ttp")) -> ProtocolCost:
    """Summarize a trace into a :class:`ProtocolCost`."""
    sends = trace.sends(kind_prefix)
    ttp_messages = sum(1 for e in sends if e.src in ttp_names or e.dst in ttp_names)
    return ProtocolCost(
        label=label,
        steps=len(sends),
        bytes_on_wire=sum(e.size_bytes for e in sends),
        latency=trace.span(),
        participants=len({e.src for e in sends} | {e.dst for e in sends}),
        ttp_messages=ttp_messages,
    )


def compare(a: ProtocolCost, b: ProtocolCost) -> dict[str, float]:
    """Ratios b/a for the headline columns (guarding zero divisions)."""

    def ratio(x: float, y: float) -> float:
        return y / x if x else float("inf")

    return {
        "steps": ratio(a.steps, b.steps),
        "bytes": ratio(a.bytes_on_wire, b.bytes_on_wire),
        "latency": ratio(a.latency, b.latency),
    }
