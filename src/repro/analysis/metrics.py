"""Metrics extracted from simulation traces.

The quantities the paper reasons about qualitatively: protocol *steps*
(messages sent), bytes on the wire, which roles took part, and
end-to-end latency.  Everything here is derived from
:class:`repro.net.trace.TraceRecorder` events, so any protocol run on
the simulated network can be measured the same way.

TTP attribution is derived from the deployment, not from party names:
any node whose class declares ``is_ttp = True`` (the TPNR
:class:`~repro.core.ttp.TrustedThirdParty`, the baseline
:class:`~repro.baselines.zhou_gollmann.ZgOnlineTtp`) counts as a
trusted third party, whatever it happens to be called.  Pass the
:class:`~repro.net.network.Network` to :func:`measure` to use this;
the legacy name tuple remains only for bare traces with no network
attached.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.trace import TraceRecorder

__all__ = ["ProtocolCost", "infer_ttp_names", "measure", "compare"]

# Fallback for bare traces measured without their network: the role
# names the built-in deployments use.  Deployments with renamed TTPs
# must pass ``network=`` so the roles are derived, not guessed.
LEGACY_TTP_NAMES = ("ttp", "zg-ttp")


@dataclass(frozen=True)
class ProtocolCost:
    """The cost profile of one protocol run."""

    label: str
    steps: int
    bytes_on_wire: int
    latency: float
    participants: int
    ttp_messages: int

    @property
    def uses_ttp(self) -> bool:
        return self.ttp_messages > 0


def infer_ttp_names(network) -> tuple[str, ...]:
    """Names of every node on *network* whose class declares itself a
    trusted third party (``is_ttp = True``)."""
    return tuple(
        name
        for name in network.node_names()
        if getattr(network.node(name), "is_ttp", False)
    )


def measure(
    trace: TraceRecorder,
    label: str,
    kind_prefix: str = "",
    ttp_names: tuple[str, ...] | None = None,
    network=None,
) -> ProtocolCost:
    """Summarize a trace into a :class:`ProtocolCost`.

    TTP roles come from (highest priority first): an explicit
    *ttp_names* tuple, the *network*'s ``is_ttp`` nodes, or the legacy
    built-in role names for bare traces.
    """
    if ttp_names is None:
        ttp_names = (
            infer_ttp_names(network) if network is not None else LEGACY_TTP_NAMES
        )
    sends = trace.sends(kind_prefix)
    ttp_messages = sum(1 for e in sends if e.src in ttp_names or e.dst in ttp_names)
    return ProtocolCost(
        label=label,
        steps=len(sends),
        bytes_on_wire=sum(e.size_bytes for e in sends),
        latency=trace.span(),
        participants=len({e.src for e in sends} | {e.dst for e in sends}),
        ttp_messages=ttp_messages,
    )


def compare(a: ProtocolCost, b: ProtocolCost) -> dict[str, float]:
    """Ratios b/a for the headline columns (guarding zero divisions)."""

    def ratio(x: float, y: float) -> float:
        return y / x if x else float("inf")

    return {
        "steps": ratio(a.steps, b.steps),
        "bytes": ratio(a.bytes_on_wire, b.bytes_on_wire),
        "latency": ratio(a.latency, b.latency),
    }
