"""Experiment runners — one per table/figure in DESIGN.md §4.

Each ``experiment_*`` function is deterministic given its seed, returns
an :class:`ExperimentResult` (headers + rows for printing, plus a
``facts`` dict the tests assert on), and is what the corresponding
benchmark executes and times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..attacks.harness import run_gauntlet, tpnr_defense_holds
from ..baselines.ssl_only import SslOnlyPlatform
from ..baselines.zhou_gollmann import ZgClient, ZgOnlineTtp, ZgProvider
from ..bridging import ALL_SCHEMES, make_world
from ..core.policy import DEFAULT_POLICY
from ..core.protocol import (
    dispute_tampering,
    make_deployment,
    run_abort,
    run_download,
    run_upload,
)
from ..core.provider import ProviderBehavior
from ..core.transaction import TxStatus
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import digest
from ..crypto.pki import CertificateAuthority, Identity, KeyRegistry
from ..net.channel import ChannelSpec
from ..net.events import Simulator
from ..net.network import Network
from ..net.node import Node
from ..storage.azurelike import AzureLikeClient, AzureLikeService
from ..storage.gaelike import GaeLikeService, ResourceRule, make_signed_request
from ..storage.rest import format_request
from ..storage.s3like import ManifestFile, S3LikeService, encode_signature_file
from ..storage.shipping import (
    DAY_SECONDS,
    EXPRESS,
    GROUND,
    OVERNIGHT,
    CarrierSpec,
    ShippingCarrier,
    StorageDevice,
)
from ..storage.tamper import TamperMode
from .metrics import measure
from .stats import format_rate
from .workload import WorkloadSpec, resilience_sweep, run_workload

__all__ = [
    "ExperimentResult",
    "run_meta",
    "experiment_table1",
    "experiment_fig1",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_bridging",
    "experiment_step_counts",
    "experiment_attacks",
    "experiment_shipping",
    "experiment_scalability",
    "experiment_resilience",
    "experiment_fault_campaign",
    "experiment_crash_recovery",
    "experiment_evidence_ablation",
    "experiment_observability",
    "experiment_forensics",
    "experiment_slo",
    "experiment_throughput",
    "experiment_sharded_throughput",
    "experiment_profiler",
    "experiment_replication",
    "experiment_migration",
]


@dataclass
class ExperimentResult:
    """Uniform experiment output."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    facts: dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    meta: dict[str, Any] = field(default_factory=dict)


def run_meta(seed: bytes, sim_duration: float | None = None) -> dict[str, Any]:
    """Provenance stamp for a result: the seed it is reproducible from,
    the repo version that produced it, and (when one simulation drove
    the experiment) the simulated-clock duration of that run.

    When the run executes under the scenario registry (or inside a
    benchmark ``stage_context``), the active
    :class:`~repro.scenarios.context.RunStamp` is folded in, so every
    writer emits the same ``run_key``/``seed``/``repo_version`` block
    without knowing about the registry.
    """
    # Lazy imports: repro/__init__ imports this module, and the
    # scenario registry imports the runners defined here.
    from .. import __version__
    from ..scenarios.context import current_stamp

    meta: dict[str, Any] = {
        "seed": seed.decode("latin-1"),
        "repo_version": __version__,
    }
    if sim_duration is not None:
        meta["sim_duration"] = sim_duration
    stamp = current_stamp()
    if stamp is not None:
        meta.update(stamp.as_meta())
        # The stamp's derived seed is authoritative only if it is the
        # seed this run actually used; a mismatch must stay visible.
        meta["seed"] = seed.decode("latin-1")
    return meta


# ---------------------------------------------------------------------------
# T1 — Table 1: the Azure REST PUT/GET with SharedKey auth
# ---------------------------------------------------------------------------

def experiment_table1(seed: bytes = b"exp/t1") -> ExperimentResult:
    """Regenerate Table 1: a signed PUT and GET with server verification."""
    rng = HmacDrbg(seed)
    service = AzureLikeService(rng)
    account = service.create_account("jerry")
    client = AzureLikeClient(service, account)
    body = b"movie block contents, one REST block of data"
    # The Table 1 PUT stages a block; PUT Block List commits it.
    put_request = client.build_put("movie", "block", body)
    put_response = service.handle(put_request)
    commit_request = client.build_commit("movie", "block", ["blockid1"])
    commit_response = service.handle(commit_request)
    get_request = client.build_get("movie", "block")
    get_response = service.handle(get_request)
    # A forged signature must be rejected.
    forged = client.build_get("movie", "block")
    forged.headers["Authorization"] = "SharedKey jerry:AAAA_not_a_real_signature_AAAA="
    forged_response = service.handle(forged)
    rows = [
        ["PUT block", put_request.path, put_request.header("Content-MD5"),
         put_response.status],
        ["PUT blocklist", commit_request.path, commit_response.header("Content-MD5"),
         commit_response.status],
        ["GET", get_request.path, get_response.header("Content-MD5"), get_response.status],
        ["GET(forged auth)", forged.path, "-", forged_response.status],
    ]
    return ExperimentResult(
        experiment_id="T1",
        title="Table 1 — REST PUT/GET with SharedKey HMAC-SHA256 authorization",
        headers=["op", "path", "Content-MD5", "status"],
        rows=rows,
        facts={
            "put_ok": put_response.ok and commit_response.ok,
            "get_ok": get_response.ok,
            "forged_rejected": forged_response.status == 403,
            "md5_round_tripped": commit_response.header("Content-MD5")
            == get_response.header("Content-MD5"),
            "put_rendered": format_request(put_request),
            "get_rendered": format_request(get_request),
        },
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# F1 — Fig. 1: clients reaching services through one cloud/network
# ---------------------------------------------------------------------------

class _RequestCounter(Node):
    """A service node that counts and acknowledges requests."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.requests = 0

    def on_message(self, envelope) -> None:
        self.requests += 1
        self.send(envelope.src, "cloud.response", b"ack:" + envelope.payload[:16])


class _Consumer(Node):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.responses = 0

    def on_message(self, envelope) -> None:
        self.responses += 1


def experiment_fig1(
    seed: bytes = b"exp/f1", n_clients: int = 8, n_services: int = 3,
    requests_per_client: int = 5,
) -> ExperimentResult:
    """The cloud principle: many clients, services behind one network."""
    rng = HmacDrbg(seed)
    sim = Simulator()
    network = Network(sim, rng, ChannelSpec(base_latency=0.03, jitter=0.01))
    services = [_RequestCounter(f"service-{i}") for i in range(n_services)]
    clients = [_Consumer(f"client-{i}") for i in range(n_clients)]
    for node in services + clients:
        network.add_node(node)
    pick = rng.fork("placement")
    for client in clients:
        for r in range(requests_per_client):
            target = pick.choice(services)
            sim.schedule(pick.random(), lambda c=client, t=target, r=r: c.send(
                t.name, "cloud.request", f"req-{c.name}-{r}".encode()))
    sim.run()
    rows = [[s.name, s.requests] for s in services]
    total_responses = sum(c.responses for c in clients)
    return ExperimentResult(
        experiment_id="F1",
        title="Fig. 1 — cloud computing principle (clients -> Internet -> services)",
        headers=["service", "requests served"],
        rows=rows,
        facts={
            "total_requests": sum(s.requests for s in services),
            "total_responses": total_responses,
            "all_answered": total_responses == n_clients * requests_per_client,
            "elapsed": sim.now,
        },
        meta=run_meta(seed, sim.now),
    )


# ---------------------------------------------------------------------------
# F2 — Fig. 2: the AWS Import/Export flow
# ---------------------------------------------------------------------------

def experiment_fig2(
    seed: bytes = b"exp/f2",
    file_sizes: tuple[int, ...] = (1 << 16, 1 << 20, 1 << 22),
) -> ExperimentResult:
    """Manifest -> signature file -> ship -> validate -> load -> report."""
    rng = HmacDrbg(seed)
    sim = Simulator()
    service = S3LikeService(rng)
    account = service.create_account("alice")
    carrier = ShippingCarrier(sim, rng, GROUND)
    rows = []
    all_verified = True
    for size in file_sizes:
        data = rng.fork(f"payload/{size}").generate(size)
        manifest = ManifestFile(
            access_key_id=account.access_key_id,
            device_id=f"DEV-{size}",
            destination="backup",
            operation="import",
        )
        # E-mail the signed manifest; get the job id.
        job_id = service.submit_manifest(manifest, S3LikeService.sign_manifest(manifest, account))
        device = StorageDevice(f"DEV-{size}", capacity_bytes=2 * size)
        device.write_file(f"data-{size}.bin", data)
        device.attached_documents["signature-file"] = encode_signature_file(
            S3LikeService.make_signature_file(job_id, manifest, account)
        )
        reports = []
        transit = carrier.ship(device, "customer", "aws-dock",
                               lambda d, j=job_id, out=reports: out.append(service.receive_device(j, d)))
        sim.run()
        report = reports[0]
        md5_ok = report.md5_of_bytes[f"data-{size}.bin"] == digest("md5", data)
        all_verified &= md5_ok
        rows.append([size, f"{transit / DAY_SECONDS:.2f}", report.status,
                     report.bytes_processed, md5_ok])
    return ExperimentResult(
        experiment_id="F2",
        title="Fig. 2 — AWS-style Import/Export: manifest, signature file, shipping, MD5 log",
        headers=["bytes", "transit (days)", "job status", "bytes loaded", "MD5 verified"],
        rows=rows,
        facts={"all_jobs_completed": all_verified, "jobs": len(file_sizes)},
        meta=run_meta(seed, sim.now),
    )


# ---------------------------------------------------------------------------
# F3 — Fig. 3: the Azure secure data access procedure
# ---------------------------------------------------------------------------

def experiment_fig3(seed: bytes = b"exp/f3") -> ExperimentResult:
    """Account -> 256-bit key -> signed requests -> MD5 round trip."""
    rng = HmacDrbg(seed)
    service = AzureLikeService(rng)
    account = service.create_account("user1")
    client = AzureLikeClient(service, account)
    data = b"quarterly results " * 64
    rows = []
    put_response = client.put_blob("docs", "q3", data)
    rows.append(["PUT with Content-MD5", put_response.status, "stored"])
    downloaded = client.get_blob("docs", "q3")
    rows.append(["GET + verify returned MD5", 200, "verified" if downloaded == data else "MISMATCH"])
    # The wrong key must be rejected (authentication, not just integrity).
    other = service.create_account("user2")
    intruder = AzureLikeClient(service, other)
    intruder.account = type(other)(name="user1", secret_key=other.secret_key,
                                   access_key_id=other.access_key_id)
    bad = service.handle(intruder.build_get("docs", "q3"))
    rows.append(["GET with wrong secret key", bad.status, "rejected"])
    return ExperimentResult(
        experiment_id="F3",
        title="Fig. 3 — Azure-style security data access procedure",
        headers=["step", "status", "outcome"],
        rows=rows,
        facts={
            "round_trip_ok": downloaded == data,
            "wrong_key_rejected": bad.status == 403,
            "secret_key_bits": len(account.secret_key) * 8,
        },
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# F4 — Fig. 4: the Google SDC work flow
# ---------------------------------------------------------------------------

def experiment_fig4(seed: bytes = b"exp/f4") -> ExperimentResult:
    """Tunnel validation -> resource rules -> signed request -> data."""
    rng = HmacDrbg(seed)
    service = GaeLikeService(rng)
    app = Identity.generate("gadget-app", rng)
    service.register_app(app, consumer_key="consumer-1", token="tok-1")
    service.sdc.add_rule(ResourceRule("employee-*", "feeds/*"))
    service.datastore_put("feeds", "payroll", b"salary feed content")
    rows = []

    def attempt(label: str, **kwargs) -> tuple[str, str]:
        request = make_signed_request(app, rng, **kwargs)
        try:
            service.handle_request(request)
            return label, "allowed"
        except Exception as exc:
            return label, f"denied ({type(exc).__name__})"

    rows.append(attempt("authorized viewer, valid request",
                        owner_id="owner", viewer_id="employee-7", resource="feeds/payroll"))
    rows.append(attempt("viewer outside resource rules",
                        owner_id="owner", viewer_id="contractor-1", resource="feeds/payroll"))
    rows.append(attempt("unknown consumer key",
                        owner_id="owner", viewer_id="employee-7", resource="feeds/payroll",
                        consumer_key="rogue"))
    rows.append(attempt("invalid token",
                        owner_id="owner", viewer_id="employee-7", resource="feeds/payroll",
                        token="expired"))
    # Nonce replay: reuse an exact request.
    request = make_signed_request(app, rng, owner_id="owner", viewer_id="employee-7",
                                  resource="feeds/payroll")
    service.handle_request(request)
    try:
        service.handle_request(request)
        rows.append(("replayed signed request", "allowed"))
    except Exception as exc:
        rows.append(("replayed signed request", f"denied ({type(exc).__name__})"))
    outcomes = dict(rows)
    return ExperimentResult(
        experiment_id="F4",
        title="Fig. 4 — Google-SDC-style work flow (tunnel, resource rules, signed request)",
        headers=["request", "outcome"],
        rows=[list(r) for r in rows],
        facts={
            "authorized_allowed": outcomes["authorized viewer, valid request"] == "allowed",
            "rule_enforced": outcomes["viewer outside resource rules"].startswith("denied"),
            "tunnel_enforced": outcomes["unknown consumer key"].startswith("denied"),
            "replay_blocked": outcomes["replayed signed request"].startswith("denied"),
        },
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# F5 — Fig. 5: the integrity vulnerability
# ---------------------------------------------------------------------------

def experiment_fig5(seed: bytes = b"exp/f5", trials: int = 10) -> ExperimentResult:
    """Detection/attribution rates: platforms vs TPNR, per tamper mode.

    Expected shape (the paper's core claim): the status-quo platforms
    detect at most naive tampering (Azure model) and attribute nothing;
    TPNR detects and attributes everything.
    """
    tamper_modes = (TamperMode.BIT_FLIP, TamperMode.REPLACE, TamperMode.FIXUP_MD5)
    rows = []
    facts: dict[str, Any] = {}
    rng = HmacDrbg(seed)
    for platform, md5_mode in (("azure-like (stored MD5)", "stored"),
                               ("aws-like (recomputed MD5)", "recomputed")):
        for mode in tamper_modes:
            detected = 0
            for trial in range(trials):
                plat = SslOnlyPlatform(rng.fork(f"{platform}/{mode}/{trial}"), md5_mode=md5_mode)
                key = plat.upload(rng.generate(256))
                plat.tamper(key, mode)
                result = plat.download(key)
                detected += result.detected_mismatch
            rows.append([platform, mode.value,
                         format_rate(detected, trials), format_rate(0, trials)])
            facts[f"{md5_mode}/{mode.value}/detection"] = detected / trials
    # TPNR: detection and attribution via signed evidence.
    for mode in tamper_modes:
        detected = attributed = 0
        for trial in range(trials):
            dep = make_deployment(seed=seed + f"/tpnr/{mode.value}/{trial}".encode(),
                                  behavior=ProviderBehavior(tamper_mode=mode))
            outcome = run_upload(dep, HmacDrbg(seed, str(trial).encode()).generate(256))
            download = run_download(dep, outcome.transaction_id)
            if download.tampering_detected:
                detected += 1
                ruling = dispute_tampering(dep, outcome.transaction_id)
                if ruling.verdict.value == "provider-at-fault":
                    attributed += 1
        rows.append(["TPNR", mode.value,
                     format_rate(detected, trials), format_rate(attributed, trials)])
        facts[f"tpnr/{mode.value}/detection"] = detected / trials
        facts[f"tpnr/{mode.value}/attribution"] = attributed / trials
    return ExperimentResult(
        experiment_id="F5",
        title="Fig. 5 — upload-to-download integrity: detection & attribution rates",
        headers=["system", "tamper mode", "detection rate [95% CI]",
                 "attribution rate [95% CI]"],
        rows=rows,
        facts=facts,
        notes="Attribution = a dispute ends provider-at-fault with evidence.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# F6 — Fig. 6: the four TPNR work flows
# ---------------------------------------------------------------------------

def experiment_fig6(seed: bytes = b"exp/f6") -> ExperimentResult:
    """Trace the Normal, Abort, Resolve, and Disputation flows."""
    rows = []
    facts: dict[str, Any] = {}
    # (b) Normal mode, off-line TTP.
    dep = make_deployment(seed=seed + b"/normal")
    outcome = run_upload(dep, b"normal-mode payload " * 8)
    normal_seq = [k for _, _, k in dep.network.trace.sequence() if k.startswith("tpnr.")]
    rows.append(["Normal (6b)", " -> ".join(normal_seq), "no TTP" if not outcome.ttp_involved else "TTP!"])
    facts["normal_steps"] = outcome.steps
    facts["normal_offline_ttp"] = not outcome.ttp_involved
    # (b) Abort, off-line TTP.
    dep_a = make_deployment(seed=seed + b"/abort",
                            behavior=ProviderBehavior(silent_on_upload=True))
    outcome_a = run_abort(dep_a, b"abort-mode payload")
    abort_seq = [k for _, _, k in dep_a.network.trace.sequence() if k.startswith("tpnr.")]
    rows.append(["Abort (6b)", " -> ".join(abort_seq),
                 outcome_a.upload_status.value])
    facts["abort_status"] = outcome_a.upload_status.value
    facts["abort_offline_ttp"] = not outcome_a.ttp_involved
    # (c) Resolve, in-line TTP.
    dep_r = make_deployment(seed=seed + b"/resolve",
                            behavior=ProviderBehavior(silent_on_upload=True))
    outcome_r = run_upload(dep_r, b"resolve-mode payload")
    resolve_seq = [k for _, _, k in dep_r.network.trace.sequence() if k.startswith("tpnr.resolve")]
    rows.append(["Resolve (6c)", " -> ".join(resolve_seq), outcome_r.upload_status.value])
    facts["resolve_status"] = outcome_r.upload_status.value
    facts["resolve_inline_ttp"] = outcome_r.ttp_involved
    # (d) Disputation.
    dep_d = make_deployment(seed=seed + b"/dispute",
                            behavior=ProviderBehavior(tamper_mode=TamperMode.REPLACE))
    outcome_d = run_upload(dep_d, b"dispute-mode payload " * 8)
    run_download(dep_d, outcome_d.transaction_id)
    ruling = dispute_tampering(dep_d, outcome_d.transaction_id)
    rows.append(["Disputation (6d)", "evidence(alice) + evidence(bob) -> arbitrator",
                 ruling.verdict.value])
    facts["dispute_verdict"] = ruling.verdict.value
    return ExperimentResult(
        experiment_id="F6",
        title="Fig. 6 — TPNR work flows: Normal / Abort / Resolve / Disputation",
        headers=["flow", "message sequence", "outcome"],
        rows=rows,
        facts=facts,
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# S3 — the §3 bridging-scheme comparison
# ---------------------------------------------------------------------------

def experiment_bridging(seed: bytes = b"exp/s3",
                        tamper_mode: TamperMode = TamperMode.FIXUP_MD5) -> ExperimentResult:
    """Four bridging schemes + the status quo under cover-up tampering."""
    rows = []
    facts: dict[str, Any] = {}
    for cls in ALL_SCHEMES:
        world = make_world(seed=seed + cls.__name__.encode())
        scheme = cls(world)
        r = scheme.run_scenario(b"bridged payload " * 16, tamper_mode)
        rows.append([
            r.scheme, r.needs_tac, r.detected, r.agreed_digest_provable,
            r.tamper_verdict, r.blackmail_verdict,
            r.upload_messages, r.download_messages, r.dispute_messages,
        ])
        facts[f"{r.scheme}/detected"] = r.detected
        facts[f"{r.scheme}/tamper_verdict"] = r.tamper_verdict
        facts[f"{r.scheme}/blackmail_verdict"] = r.blackmail_verdict
    return ExperimentResult(
        experiment_id="S3",
        title="§3 — bridging schemes under cover-up tampering (TAC x SKS matrix)",
        headers=["scheme", "TAC", "detected", "digest provable",
                 "tamper verdict", "blackmail verdict", "up msgs", "down msgs", "dispute msgs"],
        rows=rows,
        facts=facts,
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# S4 — TPNR vs traditional NR step counts / bytes / latency
# ---------------------------------------------------------------------------

def _run_zg_exchange(seed: bytes, payload: bytes, channel: ChannelSpec):
    rng = HmacDrbg(seed)
    sim = Simulator()
    network = Network(sim, rng, channel)
    ca = CertificateAuthority("zg-ca", rng.fork("ca"))
    registry = KeyRegistry(ca)
    identities = {name: Identity.generate(name, rng) for name in ("alice", "bob", "zg-ttp")}
    for identity in identities.values():
        registry.enroll(identity)
    client = ZgClient(identities["alice"], registry, rng)
    provider = ZgProvider(identities["bob"], registry, rng)
    ttp = ZgOnlineTtp(identities["zg-ttp"], registry)
    for node in (client, provider, ttp):
        network.add_node(node)
    label = client.exchange("bob", payload)
    sim.run()
    assert client.outcomes[label].complete
    return network


def experiment_step_counts(
    seed: bytes = b"exp/s4",
    payload_sizes: tuple[int, ...] = (1 << 10, 1 << 14, 1 << 18),
    latency: float = 0.04,
) -> ExperimentResult:
    """§4.4 — "two steps ... in contrast, four steps in the traditional
    non-repudiation protocol"."""
    channel = ChannelSpec(base_latency=latency, bandwidth_bps=12.5e6)
    rows = []
    facts: dict[str, Any] = {}
    for size in payload_sizes:
        payload = HmacDrbg(seed, str(size).encode()).generate(size)
        dep = make_deployment(seed=seed + f"/tpnr/{size}".encode(), channel=channel)
        outcome = run_upload(dep, payload)
        assert outcome.upload_status is TxStatus.COMPLETED
        tpnr_cost = measure(dep.network.trace, "tpnr", "tpnr.", network=dep.network)
        zg_net = _run_zg_exchange(seed + f"/zg/{size}".encode(), payload, channel)
        zg_cost = measure(zg_net.trace, "zg", "zg.", network=zg_net)
        rows.append(["TPNR Normal", size, tpnr_cost.steps, tpnr_cost.bytes_on_wire,
                     f"{tpnr_cost.latency:.3f}", tpnr_cost.uses_ttp])
        rows.append(["Traditional (ZG)", size, zg_cost.steps, zg_cost.bytes_on_wire,
                     f"{zg_cost.latency:.3f}", zg_cost.uses_ttp])
        facts[f"{size}/tpnr_steps"] = tpnr_cost.steps
        facts[f"{size}/zg_steps"] = zg_cost.steps
        facts[f"{size}/tpnr_latency"] = tpnr_cost.latency
        facts[f"{size}/zg_latency"] = zg_cost.latency
    facts["tpnr_always_fewer_steps"] = all(
        facts[f"{s}/tpnr_steps"] < facts[f"{s}/zg_steps"] for s in payload_sizes
    )
    return ExperimentResult(
        experiment_id="S4",
        title="§4.4 — TPNR vs traditional four-step NR: steps, bytes, latency",
        headers=["protocol", "payload bytes", "steps", "bytes on wire", "latency (s)", "TTP on path"],
        rows=rows,
        facts=facts,
        notes="TPNR Normal mode completes the exchange of data + evidence in 2 "
        "messages with an off-line TTP; the traditional protocol needs 5 "
        "messages with the TTP on-line in every exchange.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# S5 — the §5 attack matrix
# ---------------------------------------------------------------------------

def experiment_attacks(seed: bytes = b"exp/s5") -> ExperimentResult:
    """All five attacks vs defended and weakened targets."""
    results = run_gauntlet(seed)
    rows = [[r.attack, r.target, r.succeeded, r.detail[:72]] for r in results]
    facts = {f"{r.attack}|{r.target}": r.succeeded for r in results}
    facts["tpnr_defense_holds"] = tpnr_defense_holds(results)
    facts["weakened_all_fall"] = all(
        r.succeeded for r in results
        if r.target not in ("tpnr/full", "securechannel/authenticated")
    )
    return ExperimentResult(
        experiment_id="S5",
        title="§5 — robustness gauntlet: attack x target success matrix",
        headers=["attack", "target", "succeeded", "detail"],
        rows=rows,
        facts=facts,
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# S6 — protocol time vs surface-mail shipping time
# ---------------------------------------------------------------------------

def experiment_shipping(
    seed: bytes = b"exp/s6",
    data_sizes_tb: tuple[float, ...] = (0.5, 1.0, 4.0, 10.0),
    carriers: tuple[CarrierSpec, ...] = (GROUND, EXPRESS, OVERNIGHT),
) -> ExperimentResult:
    """§6 — "the time required for executing the protocol is really
    trivial comparing to the time consumed by delivering the storage
    devices by surface mail"."""
    rng = HmacDrbg(seed)
    # Measure a real TPNR evidence exchange over a WAN-ish channel once;
    # bulk data goes on the device, the protocol carries hashes.
    dep = make_deployment(seed=seed + b"/protocol",
                          channel=ChannelSpec(base_latency=0.04, bandwidth_bps=12.5e6))
    outcome = run_upload(dep, b"x" * 4096)
    protocol_seconds = outcome.elapsed
    rows = []
    fractions = []
    for size_tb in data_sizes_tb:
        for carrier in carriers:
            transit = carrier.sample_transit_seconds(rng.fork(f"{size_tb}/{carrier.name}"))
            round_trip = 2 * transit  # device out + device back
            total = round_trip + protocol_seconds
            fraction = protocol_seconds / total
            fractions.append(fraction)
            rows.append([size_tb, carrier.name, f"{round_trip / DAY_SECONDS:.2f}",
                         f"{protocol_seconds:.3f}", f"{fraction:.2e}"])
    return ExperimentResult(
        experiment_id="S6",
        title="§6 — TPNR protocol time as a fraction of device-shipping time",
        headers=["data (TB)", "carrier", "shipping RTT (days)", "protocol (s)", "protocol fraction"],
        rows=rows,
        facts={
            "protocol_seconds": protocol_seconds,
            "max_fraction": max(fractions),
            "protocol_is_trivial": max(fractions) < 1e-3,
        },
        meta=run_meta(seed, dep.sim.now),
    )


# ---------------------------------------------------------------------------
# W1 — extension: multi-client scalability
# ---------------------------------------------------------------------------

def experiment_scalability(
    seed: bytes = b"exp/w1",
    client_counts: tuple[int, ...] = (1, 2, 4, 8),
    transactions_per_client: int = 4,
) -> ExperimentResult:
    """TPNR under concurrent load: N clients x M transactions.

    The deferred evaluation the paper's cloud framing implies: protocol
    cost grows linearly in transactions (2 messages each), evidence
    accumulates on both sides, and everything terminates.
    """
    rows = []
    facts: dict[str, Any] = {}
    for n in client_counts:
        spec = WorkloadSpec(n_clients=n, transactions_per_client=transactions_per_client)
        _, report = run_workload(seed + f"/n={n}".encode(), spec)
        rows.append([
            n, spec.total_transactions, f"{report.success_rate:.2f}",
            report.total_messages, report.total_bytes,
            report.provider_objects, report.evidence_items,
        ])
        facts[f"{n}/success_rate"] = report.success_rate
        facts[f"{n}/messages"] = report.total_messages
        facts[f"{n}/terminated"] = report.all_terminated
    facts["linear_messages"] = all(
        facts[f"{n}/messages"] == 2 * n * transactions_per_client for n in client_counts
    )
    return ExperimentResult(
        experiment_id="W1",
        title="Extension — multi-client scalability (N clients, honest provider)",
        headers=["clients", "transactions", "success rate", "messages",
                 "bytes", "stored objects", "evidence items"],
        rows=rows,
        facts=facts,
        notes="2 messages per transaction regardless of concurrency: the "
        "off-line-TTP design has no shared bottleneck on the happy path.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# R1 — extension: resilience to message loss
# ---------------------------------------------------------------------------

def experiment_resilience(
    seed: bytes = b"exp/r1",
    drop_probs: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4),
) -> ExperimentResult:
    """Outcome distribution vs channel loss.

    The §5.5 finiteness property under stress: success degrades
    gracefully (Resolve and restart recover most losses) and no
    transaction is ever left in limbo.
    """
    rows = []
    facts: dict[str, Any] = {}
    sweep = resilience_sweep(seed, drop_probs=drop_probs)
    for drop, report in sweep:
        rows.append([
            f"{drop:.2f}", f"{report.success_rate:.2f}",
            report.status_counts.get("completed", 0),
            report.status_counts.get("resolved", 0),
            report.status_counts.get("failed", 0),
            report.all_terminated,
        ])
        facts[f"{drop}/success_rate"] = report.success_rate
        facts[f"{drop}/terminated"] = report.all_terminated
    facts["all_terminated"] = all(report.all_terminated for _, report in sweep)
    facts["lossless_perfect"] = sweep[0][1].success_rate == 1.0
    facts["monotone_pressure"] = sweep[-1][1].success_rate <= sweep[0][1].success_rate
    return ExperimentResult(
        experiment_id="R1",
        title="Extension — resilience: outcomes vs channel drop probability",
        headers=["drop prob", "success rate", "completed", "resolved (TTP)",
                 "failed", "all terminated"],
        rows=rows,
        facts=facts,
        notes="'resolved' = receipts recovered through the in-line TTP; "
        "'failed' transactions still end with evidence (time-outs, TTP "
        "statements) rather than limbo.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# A1 — ablation: what the evidence encryption costs and buys
# ---------------------------------------------------------------------------

def experiment_evidence_ablation(seed: bytes = b"exp/a1") -> ExperimentResult:
    """DESIGN.md §5.1: run Normal mode with and without the outer
    public-key encryption of evidence and compare wire cost; then show
    what the encryption buys (evidence confidentiality on the wire).
    """
    from ..core.policy import DEFAULT_POLICY
    from ..net.adversary import PassiveEavesdropper

    rows = []
    facts: dict[str, Any] = {}
    payload = HmacDrbg(seed, b"payload").generate(2048)
    for label, policy in (
        ("encrypted evidence", DEFAULT_POLICY),
        ("plain evidence", DEFAULT_POLICY.weakened(encrypt_evidence=False)),
    ):
        dep = make_deployment(seed=seed + label.encode(), policy=policy)
        eve = PassiveEavesdropper()
        dep.network.install_adversary(eve)
        outcome = run_upload(dep, payload)
        assert outcome.upload_status is TxStatus.COMPLETED
        # Can the eavesdropper read the signatures inside the evidence?
        upload_env = next(e for e in eve.seen if e.kind == "tpnr.upload")
        evidence_exposed = upload_env.payload.evidence.startswith(b"PLAIN")
        rows.append([label, outcome.steps, outcome.bytes_on_wire, evidence_exposed])
        facts[f"{label}/bytes"] = outcome.bytes_on_wire
        facts[f"{label}/exposed"] = evidence_exposed
    overhead = facts["encrypted evidence/bytes"] - facts["plain evidence/bytes"]
    facts["encryption_overhead_bytes"] = overhead
    return ExperimentResult(
        experiment_id="A1",
        title="Ablation — outer encryption of evidence: cost vs exposure",
        headers=["variant", "steps", "bytes on wire", "evidence readable on wire"],
        rows=rows,
        facts=facts,
        notes=f"The outer encryption costs {overhead} bytes per session and is "
        "what keeps the evidence confidential to its recipient (§4.1).",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# FC1 — fault-injection campaign: targeted faults vs the hardened sessions
# ---------------------------------------------------------------------------

def _fault_class_line(fault_classes: dict[str, dict]) -> str:
    """One compact, deterministic sentence summarizing the per-class
    telemetry, for experiment notes (the full table is in the campaign
    report and the facts carry the structured form)."""
    parts = []
    for name, row in sorted(fault_classes.items()):
        wal = f" wal={row['wal_replayed']}" if "wal_replayed" in row else ""
        parts.append(
            f"{name}: plans={row['plans']} retx={row['retries']} "
            f"escal={row['escalation_rate']:.0%}{wal} "
            f"lat={row['mean_latency']:.2f}s"
        )
    return "; ".join(parts) + "."


def experiment_fault_campaign(
    seed: bytes = b"exp/fc1", n_plans: int = 50
) -> ExperimentResult:
    """Sweep seeded fault plans (drop/duplicate/delay/corrupt/reorder
    the Nth message, party crash windows) over full TPNR sessions and
    tabulate the outcome of each — the targeted counterpart to R1's
    i.i.d. channel loss.

    The facts assert the §5.5 robustness contract under *adversarial*
    scheduling: every session reaches a terminal state, none violates
    a non-repudiation invariant (conflicting evidence, unaccounted
    messages), and the whole table is reproducible from its seed.
    """
    from ..net.faults import CampaignRunner, generate_plans
    from ..obs.campaign import class_breakdown

    plans = generate_plans(seed, n_plans)
    runner = CampaignRunner(seed=seed, observe=True)
    report = runner.run(plans)
    status_counts = report.status_counts()
    rows = [
        [o.index, o.plan.name, o.plan.describe(), o.status,
         "yes" if o.ttp_involved else "no", o.faults_fired, o.retransmits,
         "none" if not o.violations else "; ".join(o.violations)]
        for o in report.outcomes
    ]
    facts: dict[str, Any] = {
        "plans": len(report.outcomes),
        "hung_sessions": report.hung_sessions,
        "violations": report.violation_count,
        "status_counts": status_counts,
        "plans_with_faults_fired": sum(
            1 for o in report.outcomes if o.faults_fired
        ),
        "ttp_involved": sum(1 for o in report.outcomes if o.ttp_involved),
        "signature": report.signature(),
        "all_settled": report.hung_sessions == 0,
        # Per-fault-class telemetry: retries, escalation rate, latency.
        "fault_classes": {
            row["fault_class"]: {
                "plans": row["plans"],
                "retries": row["retries"],
                "escalation_rate": row["escalation_rate"],
                "mean_latency": row["elapsed_mean"],
            }
            for row in class_breakdown(report)
        },
    }
    return ExperimentResult(
        experiment_id="FC1",
        title="Extension — fault-injection campaign over hardened TPNR sessions",
        headers=["#", "plan", "faults", "status", "ttp", "fired", "retx",
                 "violations"],
        rows=rows,
        facts=facts,
        notes="Each plan targets specific messages (or crashes a party) of one "
        "upload+download session; retransmission with capped backoff absorbs "
        "most faults, the Resolve path the rest. Identical seed => identical "
        f"table (signature {facts['signature'][:16]}...). "
        f"Per fault class: {_fault_class_line(facts['fault_classes'])}",
        meta=run_meta(seed, runner.deployment.sim.now),
    )


# ---------------------------------------------------------------------------
# CR1 — amnesia-crash recovery campaign
# ---------------------------------------------------------------------------

def experiment_crash_recovery(
    seed: bytes = b"exp/cr1", n_plans: int = 100
) -> ExperimentResult:
    """Sweep seeded amnesia-crash plans over write-ahead-logged TPNR
    sessions: each plan kills one party (sometimes twice), wiping its
    volatile state and timers, and crash recovery rebuilds it from the
    durable WAL prefix at restart.

    The facts assert the durability contract: every session reaches a
    terminal state, zero durably-acknowledged evidence records are
    lost, no party holds conflicting evidence, and the outcome table
    is byte-for-byte reproducible from its seed.
    """
    from ..net.faults import CampaignRunner, generate_amnesia_plans
    from ..obs.campaign import class_breakdown

    plans = generate_amnesia_plans(seed, n_plans)
    runner = CampaignRunner(seed=seed, durable=True, observe=True)
    report = runner.run(plans)
    status_counts = report.status_counts()
    rows = [
        [o.index, o.plan.name, o.plan.describe(), o.status,
         o.crashes, o.recoveries, o.resumed, o.escalated,
         "none" if not o.violations else "; ".join(o.violations)]
        for o in report.outcomes
    ]
    evidence_intact = sum(
        1
        for o in report.outcomes
        if not any("evidence" in v for v in o.violations)
    )
    facts: dict[str, Any] = {
        "plans": len(report.outcomes),
        "hung_sessions": report.hung_sessions,
        "violations": report.violation_count,
        "status_counts": status_counts,
        "crashes": sum(o.crashes for o in report.outcomes),
        "recoveries": sum(o.recoveries for o in report.outcomes),
        "resumed": sum(o.resumed for o in report.outcomes),
        "escalated": sum(o.escalated for o in report.outcomes),
        "evidence_intact": evidence_intact,
        "signature": report.signature(),
        "all_settled": report.hung_sessions == 0,
        "no_evidence_lost": not any(
            "lost" in v for o in report.outcomes for v in o.violations
        ),
        # Per-fault-class telemetry: WAL replay lengths, escalation rate.
        "fault_classes": {
            row["fault_class"]: {
                "plans": row["plans"],
                "retries": row["retries"],
                "escalation_rate": row["escalation_rate"],
                "wal_replayed": row["wal_replayed"],
                "mean_latency": row["elapsed_mean"],
            }
            for row in class_breakdown(report)
        },
    }
    return ExperimentResult(
        experiment_id="CR1",
        title="Extension — amnesia-crash recovery campaign over durable TPNR sessions",
        headers=["#", "plan", "faults", "status", "crash", "recov",
                 "resumed", "escalated", "violations"],
        rows=rows,
        facts=facts,
        notes="Every party journals evidence-bearing transitions to a "
        "checksummed WAL before acting on them; an amnesia crash wipes its "
        "volatile state mid-session and recovery replays the durable prefix, "
        "re-sending or escalating in-flight work. Identical seed => identical "
        f"table (signature {facts['signature'][:16]}...). "
        f"Per fault class: {_fault_class_line(facts['fault_classes'])}",
        meta=run_meta(seed, runner.deployment.sim.now),
    )


# ---------------------------------------------------------------------------
# OB1 — observability: span trees + metrics across the four TPNR paths
# ---------------------------------------------------------------------------

def experiment_observability(seed: bytes = b"exp/ob1") -> ExperimentResult:
    """Drive every TPNR path — Normal, Abort, Resolve, and an
    amnesia-crash recovery resume — on *observed* deployments and show
    what the telemetry layer captured: a complete, parent-linked span
    tree per transaction, deterministic metrics stamped with the
    simulation clock, and crypto hot-path call counts.

    The facts assert the observability contract: every transaction's
    tree is complete (root closed, every child linked and finished),
    the metrics snapshot is non-empty and deterministic, the exporters
    produce valid JSONL/Prometheus text, and crypto instrumentation
    sees the RSA/AEAD traffic the session actually generated.
    """
    import json

    from ..core.protocol import run_session
    from ..net.faults import CrashWindow, FaultInjector, FaultPlan
    from ..obs.exporters import spans_jsonl
    from ..obs.instrument import CRYPTO_OPS

    rows = []
    facts: dict[str, Any] = {}
    crypto_calls_total = 0

    def inspect(mode: str, dep, txn: str) -> None:
        nonlocal crypto_calls_total
        tracer = dep.obs.tracer
        spans = tracer.trace(txn)
        complete = tracer.tree_complete(txn)
        root = tracer.root(txn)
        status = root.status if root is not None else "missing"
        events = sum(len(s.events) for s in spans)
        snapshot = dep.obs.metrics.deterministic_snapshot()
        rows.append([mode, status, len(spans), events, complete, len(snapshot)])
        facts[f"{mode}/tree_complete"] = complete
        facts[f"{mode}/spans"] = len(spans)
        facts[f"{mode}/metrics"] = len(snapshot)
        # Exporter sanity: every span line is valid JSON carrying the txn.
        lines = [json.loads(line) for line in spans_jsonl(tracer).splitlines()]
        facts[f"{mode}/jsonl_valid"] = all("span_id" in d for d in lines)

    # Normal mode (upload + verified download).
    dep = make_deployment(seed=seed + b"/normal", observe=True)
    with dep.obs.observe_crypto() as crypto:
        outcome = run_session(dep, b"observed payload " * 16)
    calls = {op: int(crypto.calls(op)) for op in CRYPTO_OPS}
    crypto_calls_total += sum(calls.values())
    facts["normal/crypto_calls"] = calls
    inspect("normal", dep, outcome.transaction_id)

    # Abort mode (receipt withheld, client gives up before escalating).
    dep_a = make_deployment(seed=seed + b"/abort", observe=True,
                            behavior=ProviderBehavior(silent_on_upload=True))
    outcome_a = run_abort(dep_a, b"observed abort payload")
    inspect("abort", dep_a, outcome_a.transaction_id)

    # Resolve mode (receipt withheld, client escalates to the TTP).
    dep_r = make_deployment(seed=seed + b"/resolve", observe=True,
                            behavior=ProviderBehavior(silent_on_upload=True))
    outcome_r = run_upload(dep_r, b"observed resolve payload")
    inspect("resolve", dep_r, outcome_r.transaction_id)

    # Crash-recovery resume: alice takes an amnesia crash mid-upload and
    # her recovered journal re-sends it.
    dep_c = make_deployment(seed=seed + b"/crash", observe=True, durable=True)
    plan = FaultPlan(
        name="ob1-amnesia-alice",
        crashes=(CrashWindow("alice", 0.0, 2.0, amnesia=True),),
    )
    injector = FaultInjector(plan)
    dep_c.network.install_adversary(injector)
    injector.reset(epoch=dep_c.sim.now)
    outcome_c = run_upload(dep_c, b"observed crash payload")
    dep_c.network.remove_adversary()
    inspect("crash-resume", dep_c, outcome_c.transaction_id)
    recovery_spans = [
        s for s in dep_c.obs.tracer.trace(outcome_c.transaction_id)
        if s.name.startswith("recovery.")
    ]
    facts["crash-resume/recovery_spans"] = len(recovery_spans)
    facts["crash-resume/status"] = outcome_c.upload_status.value

    facts["all_trees_complete"] = all(
        facts[f"{m}/tree_complete"]
        for m in ("normal", "abort", "resolve", "crash-resume")
    )
    facts["metrics_nonempty"] = all(
        facts[f"{m}/metrics"] > 0
        for m in ("normal", "abort", "resolve", "crash-resume")
    )
    facts["crypto_observed"] = crypto_calls_total > 0
    facts["prometheus_nonempty"] = bool(dep.obs.prometheus_text().strip())
    return ExperimentResult(
        experiment_id="OB1",
        title="Extension — observability: span trees + metrics across TPNR paths",
        headers=["mode", "root status", "spans", "events", "tree complete",
                 "metrics"],
        rows=rows,
        facts=facts,
        notes="Spans live on the network-side tracer (keyed by transaction id, "
        "events carry msg_id for wire-trace correlation), so trees survive "
        "amnesia crashes of party state; metrics are sim-clock-stamped and "
        "deterministic, with wall-clock crypto timings quarantined as "
        "nondeterministic.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# OB2 — forensics: timeline reconstruction + consistency auditing
# ---------------------------------------------------------------------------

def experiment_forensics(
    seed: bytes = b"exp/ob2", n_plans: int = 100
) -> ExperimentResult:
    """Reconstruct cross-surface timelines and audit them, first on
    four targeted scenarios with known ground truth, then across a
    seeded fault campaign.

    Targeted scenarios (one deployment each): a clean durable session
    must audit to *zero* findings (the false-positive check); a
    tampering provider must be caught as ``in-storage-tampering`` with
    the dossier's reconstructed verdict agreeing with the real
    Arbitrator; a dropped receipt must be attributed to
    ``message-loss``; an amnesia crash to ``amnesia-rollback``.

    Campaign sweep: ``n_plans`` seeded fault plans run with forensics
    and anomaly detection on.  The facts assert total attribution —
    every session that did not complete-and-verify carries at least one
    classified finding, the no-op plan carries none — plus the
    per-detector alert counts and the seed-stable report signature.
    """
    from ..net.faults import (
        CampaignRunner,
        CrashWindow,
        FaultAction,
        FaultInjector,
        FaultPlan,
        FaultRule,
        generate_plans,
    )
    from ..core.protocol import run_session

    rows = []
    facts: dict[str, Any] = {}

    def categories(findings) -> list[str]:
        return sorted({f.category for f in findings})

    # Clean baseline: durable + observed, no faults, zero findings.
    dep = make_deployment(seed=seed + b"/clean", observe=True, durable=True)
    outcome = run_session(dep, b"forensic baseline payload " * 8)
    txn = outcome.transaction_id
    timeline = dep.timeline(txn)
    clean_findings = dep.forensic_audit(txn)
    dossier = dep.dossier(txn)
    facts["clean/sources"] = timeline.sources()
    facts["clean/findings"] = len(clean_findings)
    facts["clean/agrees"] = dossier.agrees(dep.arbitrator, "tampering")
    rows.append(["clean", "-", dossier.reconstructed_verdict("tampering").value,
                 facts["clean/agrees"]])

    # In-storage tampering: the §5 covert-tampering provider.
    dep_t = make_deployment(
        seed=seed + b"/tamper", observe=True, durable=True,
        behavior=ProviderBehavior(tamper_mode=TamperMode.FIXUP_MD5),
    )
    out_t = run_upload(dep_t, b"audited company data " * 8)
    run_download(dep_t, out_t.transaction_id)
    tamper_findings = dep_t.forensic_audit(out_t.transaction_id)
    dossier_t = dep_t.dossier(out_t.transaction_id)
    facts["tamper/categories"] = categories(tamper_findings)
    facts["tamper/agrees"] = dossier_t.agrees(dep_t.arbitrator, "tampering")
    rows.append(["tamper", ",".join(facts["tamper/categories"]),
                 dossier_t.reconstructed_verdict("tampering").value,
                 facts["tamper/agrees"]])

    # Message loss: drop the first upload receipt on the wire.
    dep_d = make_deployment(seed=seed + b"/drop", observe=True, durable=True)
    plan_d = FaultPlan(
        name="ob2-drop-receipt",
        rules=(FaultRule(FaultAction.DROP, "tpnr.upload.receipt"),),
    )
    injector = FaultInjector(plan_d)
    dep_d.network.install_adversary(injector)
    injector.reset(epoch=dep_d.sim.now)
    out_d = run_upload(dep_d, b"dropped receipt payload")
    dep_d.network.remove_adversary()
    drop_findings = dep_d.forensic_audit(out_d.transaction_id)
    facts["drop/categories"] = categories(drop_findings)
    rows.append(["drop", ",".join(facts["drop/categories"]), "-", "-"])

    # Amnesia rollback: the client crashes mid-upload and loses RAM.
    dep_c = make_deployment(seed=seed + b"/amnesia", observe=True, durable=True)
    plan_c = FaultPlan(
        name="ob2-amnesia-alice",
        crashes=(CrashWindow("alice", 0.0, 2.0, amnesia=True),),
    )
    injector_c = FaultInjector(plan_c)
    dep_c.network.install_adversary(injector_c)
    injector_c.reset(epoch=dep_c.sim.now)
    out_c = run_upload(dep_c, b"amnesia crash payload")
    dep_c.network.remove_adversary()
    amnesia_findings = dep_c.forensic_audit(out_c.transaction_id)
    facts["amnesia/categories"] = categories(amnesia_findings)
    rows.append(["amnesia", ",".join(facts["amnesia/categories"]), "-", "-"])

    # Campaign sweep: forensics + anomaly detection over seeded plans.
    plans = [FaultPlan(name="ob2-noop")] + generate_plans(seed, n_plans - 1)
    runner = CampaignRunner(seed=seed, scenario="session", observe=True,
                            forensics=True, anomaly=True)
    report = runner.run(plans)
    unattributed = sum(
        1 for o in report.outcomes
        if not (o.status in ("completed", "resolved") and o.download_ok)
        and not o.findings
    )
    facts["campaign/plans"] = len(report.outcomes)
    facts["campaign/finding_categories"] = report.finding_categories()
    facts["campaign/unattributed"] = unattributed
    facts["campaign/noop_findings"] = len(report.outcomes[0].findings)
    facts["campaign/alert_counts"] = _alert_counts(report.alerts)
    facts["campaign/signature"] = report.signature()
    facts["all_attributed"] = unattributed == 0
    facts["no_false_positives"] = (
        facts["clean/findings"] == 0 and facts["campaign/noop_findings"] == 0
    )
    facts["verdicts_agree"] = facts["clean/agrees"] and facts["tamper/agrees"]
    for category, count in sorted(report.finding_categories().items()):
        rows.append([f"campaign:{category}", count, "-", "-"])
    return ExperimentResult(
        experiment_id="OB2",
        title="Extension — forensic timeline reconstruction + consistency audit",
        headers=["scenario", "finding classes", "reconstructed verdict", "agrees"],
        rows=rows,
        facts=facts,
        notes="Four telemetry surfaces (span tree, wire trace, per-party WAL, "
        "evidence archives) are joined into one causally-ordered timeline per "
        "transaction; the auditor classifies every cross-surface inconsistency "
        "and the dispute dossier's reconstructed verdict must match the real "
        "Arbitrator. Over the campaign every non-delivered outcome is "
        "attributed to a concrete violation class with zero findings on the "
        "no-fault plan. "
        f"Alert counts: {facts['campaign/alert_counts']}.",
        meta=run_meta(seed, runner.deployment.sim.now),
    )


def _alert_counts(alerts) -> dict[str, int]:
    counts: dict[str, int] = {}
    for alert in alerts:
        counts[alert.detector] = counts.get(alert.detector, 0) + 1
    return dict(sorted(counts.items()))


# ---------------------------------------------------------------------------
# OB3 — SLO error budgets, burn-rate alerting, mergeable sketches
# ---------------------------------------------------------------------------

def experiment_slo(
    seed: bytes = b"exp/ob3", n_plans: int = 24, shards: int = 4
) -> ExperimentResult:
    """The SLO layer under fire: identical seeded campaigns, one clean
    and two fault storms, each evaluated against the standard campaign
    SLOs (session success, terminal-verdict latency, evidence
    verification).

    The facts assert the OB3 alerting contract — the clean run keeps
    every error budget intact and fires **zero** alerts while each
    storm burns a budget hard enough to fire at least one burn-rate
    alert — plus the sketch-merge contract: the per-plan latencies,
    round-robin sharded into *shards* per-shard sketches and merged,
    reproduce the global sketch **exactly** (bucket maps, counts,
    min/max) and its quantiles stay within the declared relative-error
    bound of the true sorted samples.
    """
    from ..net.faults import CampaignRunner, FaultPlan, generate_storm_plans
    from ..obs.sketch import QuantileSketch

    campaigns = [
        ("clean", [FaultPlan(name=f"s{i:03d}-clean") for i in range(n_plans)]),
        ("blackout", generate_storm_plans(seed + b"/blackout", n_plans,
                                          profile="blackout")),
        ("delay", generate_storm_plans(seed + b"/delay", n_plans,
                                       profile="delay")),
    ]
    rows: list[list[Any]] = []
    facts: dict[str, Any] = {}
    latencies: list[float] = []
    for tag, plans in campaigns:
        runner = CampaignRunner(
            seed=seed + b"/" + tag.encode(), observe=True, slo=True)
        report = runner.run(plans)
        slo_report = report.slo
        burn = slo_report.burn_alerts()
        latencies.extend(o.elapsed for o in report.outcomes)
        worst = min(slo_report.statuses, key=lambda s: s.budget_remaining)
        facts[f"{tag}/plans"] = len(report.outcomes)
        facts[f"{tag}/status_counts"] = report.status_counts()
        facts[f"{tag}/hung"] = report.hung_sessions
        facts[f"{tag}/burn_alerts"] = len(burn)
        facts[f"{tag}/alerts"] = len(report.alerts)
        facts[f"{tag}/alert_counts"] = _alert_counts(report.alerts)
        facts[f"{tag}/min_budget_remaining"] = round(worst.budget_remaining, 4)
        facts[f"{tag}/signature"] = report.signature()
        rows.append([
            tag, len(report.outcomes), report.hung_sessions, len(burn),
            f"{worst.name}={worst.budget_remaining:.0%}",
            "; ".join(f"{k}:{v}" for k, v in report.status_counts().items()),
        ])

    # Shard the pooled latencies round-robin, merge the shard sketches,
    # and hold the merge to both the exactness and the accuracy bound.
    alpha = 0.01
    global_sketch = QuantileSketch("ob3.latency", alpha=alpha)
    shard_sketches = [
        QuantileSketch("ob3.latency", alpha=alpha) for _ in range(shards)]
    for i, value in enumerate(latencies):
        global_sketch.observe(value)
        shard_sketches[i % shards].observe(value)
    merged = QuantileSketch.merged("ob3.latency", shard_sketches, alpha=alpha)
    facts["samples"] = len(latencies)
    facts["alpha"] = alpha
    facts["shards"] = shards
    facts["sketch_merge_exact"] = (
        merged.buckets == global_sketch.buckets
        and merged.count == global_sketch.count
        and merged.zero_count == global_sketch.zero_count
        and merged.min == global_sketch.min
        and merged.max == global_sketch.max
    )
    sv = sorted(latencies)
    within = True
    quantiles: dict[str, float] = {}
    for q in (0.5, 0.9, 0.95, 0.99):
        est = merged.quantile(q)
        quantiles[f"p{int(q * 100)}"] = round(est, 6)
        # The sketch targets the floor-rank sample; accept either
        # neighbour rank so the check tests the error bound, not the
        # tie-breaking convention at rank boundaries.
        i = int(q * (len(sv) - 1))
        within = within and any(
            abs(est - sv[j]) <= alpha * sv[j] + 1e-9
            for j in (max(i - 1, 0), i, min(i + 1, len(sv) - 1)))
    facts["sketch_merge_within_bound"] = within
    facts["merged_quantiles"] = quantiles
    facts["clean_run_silent"] = (
        facts["clean/alerts"] == 0 and facts["clean/burn_alerts"] == 0)
    facts["storms_fire_burn_alerts"] = all(
        facts[f"{tag}/burn_alerts"] >= 1 for tag in ("blackout", "delay"))
    rows.append([
        "sketch-merge", facts["samples"], "-", "-",
        f"exact={facts['sketch_merge_exact']}",
        f"p99={quantiles['p99']:g} within_bound={within}",
    ])
    return ExperimentResult(
        experiment_id="OB3",
        title="Extension — SLO error budgets + burn-rate alerting "
        "(storms page, clean runs stay silent)",
        headers=["campaign", "plans", "hung", "burn alerts",
                 "worst budget", "detail"],
        rows=rows,
        facts=facts,
        notes="Three campaigns over the same TPNR wire surface: a clean "
        "control and two seeded fault storms (blackout drops every message; "
        "delay holds key messages past the 10 s latency objective). Each "
        "runs with the standard campaign SLOs attached; the multi-window "
        "burn-rate detectors must page on every storm and stay silent on "
        "the control. The pooled per-plan latencies, sharded "
        f"{shards}-way and merged, reproduce the global sketch exactly.",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# TP1 — multi-tenant throughput engine
# ---------------------------------------------------------------------------

def experiment_throughput(seed: bytes = b"exp/tp1") -> ExperimentResult:
    """The §6 open question, instrumented: drive concurrent TPNR
    sessions through the :mod:`repro.engine` pool and check the three
    properties the engine claims.

    * **Correctness under concurrency** — every session at every sweep
      point completes its upload and verifies its download, and the TTP
      is never contacted (Normal mode stays off-line-TTP no matter how
      many tenants interleave).
    * **Determinism** — two same-seed runs produce byte-identical
      result signatures (per-tenant named DRBG streams, explicit
      transaction IDs).
    * **Cache transparency** — enabling the :mod:`repro.crypto.cache`
      bundle leaves the signature byte-identical while the
      verification cache records real hits (it saves work without
      changing any simulated behavior).

    Wall-clock transactions/sec is reported in ``meta`` only — it is
    real compute, hence nondeterministic; the asserted facts are all
    simulation outputs.
    """
    from ..engine import run_pool

    tenant_counts = (2, 8, 16)
    rows = []
    facts: dict[str, Any] = {}
    tx_per_sec: dict[int, float] = {}
    all_ok = True
    ttp_quiet = True
    verify_hits_total = 0
    for n in tenant_counts:
        result = run_pool(seed, n)
        stats = result.cache_stats or {}
        verify = stats.get("verify", {})
        verify_hits_total += int(verify.get("hits", 0))
        ok = result.completed == len(result.sessions) == result.verified == n
        all_ok = all_ok and ok
        ttp_quiet = ttp_quiet and result.ttp_stats["resolves_handled"] == 0
        tx_per_sec[n] = round(result.tx_per_sec, 1)
        rows.append([
            n,
            result.completed,
            result.verified,
            result.messages_sent,
            result.bytes_on_wire,
            f"{result.p50_latency:.4f}",
            f"{result.p99_latency:.4f}",
            f"{float(verify.get('hit_rate', 0.0)):.3f}",
        ])
    # Determinism + cache transparency at one point, three runs: same
    # seed cached, same seed cached again, same seed uncached.
    probe = 8
    sig_cached = run_pool(seed, probe).signature()
    sig_again = run_pool(seed, probe).signature()
    sig_uncached = run_pool(seed, probe, use_caches=False).signature()
    facts["all_sessions_completed_and_verified"] = all_ok
    facts["ttp_untouched"] = ttp_quiet
    facts["verify_cache_hits_positive"] = verify_hits_total > 0
    facts["same_seed_signature_identical"] = sig_cached == sig_again
    facts["cache_toggle_signature_identical"] = sig_cached == sig_uncached
    meta = run_meta(seed)
    meta["wall_tx_per_sec"] = tx_per_sec  # real compute: nondeterministic
    return ExperimentResult(
        experiment_id="TP1",
        title="Extension — multi-tenant throughput engine (paper §6 open work)",
        headers=["tenants", "completed", "verified", "messages", "bytes on wire",
                 "p50 latency (sim s)", "p99 latency (sim s)", "verify-cache hit rate"],
        rows=rows,
        facts=facts,
        notes="N clients share one provider/TTP/network; per-tenant named DRBG "
        "streams and explicit transaction IDs keep every run byte-identical "
        "per seed.  The crypto caches (signature verification, deterministic "
        "signing, per-peer KEM session keys) change wall-clock cost only: the "
        "result signature — session rows, wire accounting, party tallies — is "
        "identical with caches on or off.  Throughput vs the uncached "
        "sequential baseline is measured in benchmarks/bench_throughput.py.",
        meta=meta,
    )


# ---------------------------------------------------------------------------
# TP2 — sharded engine with Merkle-batched evidence
# ---------------------------------------------------------------------------

def experiment_sharded_throughput(
    seed: bytes = b"exp/tp2", n_tenants: int = 16, batch_size: int = 16
) -> ExperimentResult:
    """The sharded engine's contract, checked end to end.

    * **Shard invariance** — the merged ``PoolResult.signature()`` is
      bit-identical at 1, 2, 4, and 8 shards (HMAC-placed tenants,
      per-shard named DRBG streams, exact merge), and also invariant
      in the evidence batch size (batch layout is a crypto-amortization
      choice, never simulated behavior).
    * **Batched-evidence soundness** — every session completes and
      verifies with Merkle-batched evidence (one RSA signature per
      batch, per-item inclusion proofs), and end-of-run settlement
      resolves every pending item: nothing fails, nothing is silently
      accepted.
    * **Wire economy** — the batched runs ship fewer evidence bytes
      than the classic per-message-signature run at the same workload
      (a 32-byte leaf replaces an encrypted two-signature blob).

    Wall-clock transactions/sec per shard count lands in ``meta`` only
    (real compute, nondeterministic); asserted facts are simulation
    outputs.
    """
    from ..engine import TenantDirectory, run_pool

    directory = TenantDirectory(seed)
    directory.warm(["bob", "ttp", *[f"tenant-{i:04d}" for i in range(n_tenants)]])
    shard_counts = (1, 2, 4, 8)
    rows = []
    facts: dict[str, Any] = {}
    signatures: dict[int, str] = {}
    tx_per_sec: dict[int, float] = {}
    all_ok = ttp_quiet = settled = True
    for shards in shard_counts:
        result = run_pool(
            seed, n_tenants, directory=directory,
            shards=shards, batch_size=batch_size,
        )
        ok = result.completed == len(result.sessions) == result.verified == n_tenants
        all_ok = all_ok and ok
        ttp_quiet = ttp_quiet and result.ttp_stats["resolves_handled"] == 0
        batch = result.batch_stats or {}
        settled = settled and batch.get("failed", 1) == 0 and batch.get("leaves", 0) > 0
        signatures[shards] = result.signature()
        tx_per_sec[shards] = round(result.tx_per_sec, 1)
        rows.append([
            shards,
            result.completed,
            result.verified,
            result.messages_sent,
            result.bytes_on_wire,
            batch.get("batches", 0),
            f"{result.p50_latency:.4f}",
            f"{result.p99_latency:.4f}",
            signatures[shards][:16],
        ])
    # Batch-size invariance probe (different layout, same behavior) and
    # the classic per-message-signature run for the wire comparison.
    sig_small_batches = run_pool(
        seed, n_tenants, directory=directory, shards=2, batch_size=4
    ).signature()
    classic = run_pool(seed, n_tenants, directory=directory)
    batched_bytes = {r[4] for r in rows}
    facts["shard_signature_invariant_1_2_4_8"] = len(set(signatures.values())) == 1
    facts["batch_size_signature_invariant"] = sig_small_batches == signatures[2]
    facts["all_sessions_completed_and_verified"] = all_ok
    facts["ttp_untouched"] = ttp_quiet
    facts["batched_evidence_settled_every_item"] = settled
    facts["batched_wire_bytes_below_classic"] = (
        len(batched_bytes) == 1 and batched_bytes.pop() < classic.bytes_on_wire
    )
    meta = run_meta(seed)
    meta["wall_tx_per_sec"] = tx_per_sec  # real compute: nondeterministic
    return ExperimentResult(
        experiment_id="TP2",
        title="Extension — sharded engine with Merkle-batched evidence",
        headers=["shards", "completed", "verified", "messages", "bytes on wire",
                 "batches sealed", "p50 latency (sim s)", "p99 latency (sim s)",
                 "signature"],
        rows=rows,
        facts=facts,
        notes="Tenants are placed on shards by HMAC(seed, tenant) mod N — the "
        "PT-002 construction applied to placement — and each shard drives its "
        "roster slice as a complete pool world on per-shard named DRBG "
        "streams; the merge reconstructs the global PoolResult exactly, so "
        "the signature is bit-identical at every shard count.  Evidence is "
        "Merkle-batched: one RSA signature per batch of evidence leaves, "
        "per-item inclusion proofs resolved on download or at end-of-run "
        "settlement, accepted by the Arbitrator and forensics surfaces as "
        "equivalent NRO/NRR.  Throughput vs the classic engine is measured "
        "in benchmarks/bench_sharded_throughput.py.",
        meta=meta,
    )


# ---------------------------------------------------------------------------
# OB4 — deterministic profiler, critical path, and regression sentinel
# ---------------------------------------------------------------------------

def experiment_profiler(
    seed: bytes = b"exp/ob4", n_tenants: int = 8
) -> ExperimentResult:
    """The profiling layer's contract, checked end to end.

    * **Artifact shard invariance** — with per-message evidence
      (``batch_size=None``) the deterministic profile artifacts — the
      collapsed-stack flamegraph and ``profile.jsonl`` — are
      byte-identical at 1, 2, 4, and 8 shards (exact per-shard
      :class:`~repro.obs.profiler.RegionProfiler` merge) and across
      same-seed repeats, and the engine signature is bit-identical
      with profiling on or off: observation never perturbs behavior.
    * **Critical path** — the dominant-stage chain extracted from a
      live transaction's span tree telescopes exactly: stage
      self-times sum to the root span's measured elapsed, and the
      path never exceeds the whole tree's duration.
    * **Sentinel** — on an in-memory trajectory, a 20% tx/s drop vs
      the best prior point of the same series raises
      :class:`~repro.scenarios.sentinel.RegressionError` while a 5%
      drop (within the default 15% tolerance) is accepted.

    Wall-clock transactions/sec per shard count lands in ``meta`` only
    (real compute, nondeterministic); shard utilization (skew, idle
    fraction) is computed from per-shard drive wall times, so it is
    reported as telemetry, not asserted as a fact value.
    """
    from ..core.protocol import run_session
    from ..engine import TenantDirectory, run_pool
    from ..net.channel import WAN
    from ..obs.profiler import (
        critical_path,
        flamegraph_text,
        profile_jsonl,
        shard_utilization,
    )
    from ..scenarios.sentinel import RegressionError, check_entry

    directory = TenantDirectory(seed)
    directory.warm(["bob", "ttp", *[f"tenant-{i:04d}" for i in range(n_tenants)]])
    shard_counts = (1, 2, 4, 8)
    rows = []
    facts: dict[str, Any] = {}
    artifacts: dict[int, tuple[str, str]] = {}
    signatures: dict[int, str] = {}
    tx_per_sec: dict[int, float] = {}
    utilization: dict[str, Any] = {}
    for shards in shard_counts:
        result = run_pool(
            seed, n_tenants, directory=directory, shards=shards, profile=True
        )
        prof = result.profile
        flame = flamegraph_text(prof)
        profile_dump = profile_jsonl(prof)
        artifacts[shards] = (flame, profile_dump)
        signatures[shards] = result.signature()
        tx_per_sec[shards] = round(result.tx_per_sec, 1)
        if shards == 4:
            utilization = shard_utilization(result.shard_summaries)
        rows.append([
            shards,
            result.completed,
            len(prof.stats()),
            digest("sha256", flame.encode()).hex()[:12],
            digest("sha256", profile_dump.encode()).hex()[:12],
            signatures[shards][:16],
        ])
    # Same-seed repeat and the unprofiled control run.
    repeat = run_pool(seed, n_tenants, directory=directory, shards=4, profile=True)
    unprofiled_sig = run_pool(
        seed, n_tenants, directory=directory, shards=1
    ).signature()
    facts["profile_artifacts_shard_invariant_1_2_4_8"] = (
        len(set(artifacts.values())) == 1
    )
    facts["profile_artifacts_repeatable"] = (
        flamegraph_text(repeat.profile),
        profile_jsonl(repeat.profile),
    ) == artifacts[4]
    facts["signature_unchanged_by_profiling"] = (
        len(set(signatures.values())) == 1 and unprofiled_sig == signatures[1]
    )
    # HMAC placement of 8 tenants over 4 shards may leave a shard empty
    # (empty shards produce no summary), so >= 2 populated is the bound.
    facts["shard_utilization_sane"] = (
        utilization.get("shards", 0) >= 2
        and utilization.get("skew_ratio", 0.0) >= 1.0
        and 0.0 <= utilization.get("idle_fraction", 1.0) < 1.0
    )

    # Critical path over a live observed transaction's span tree, on a
    # WAN-ish channel so spans have real simulated extent (PERFECT's
    # zero latency would make reconciliation trivially 0 == 0).
    dep = make_deployment(seed=seed + b"/critical", observe=True, channel=WAN)
    outcome = run_session(dep, b"profiled critical-path payload " * 8)
    txn = outcome.transaction_id
    path = critical_path(dep.obs.tracer, txn)
    tree_total = sum(s.duration for s in dep.obs.tracer.trace(txn))
    dominant = path.dominant()
    facts["critical_path_reconciles"] = path.reconciles() and path.total > 0.0
    facts["critical_path_within_tree_total"] = path.length <= tree_total + 1e-9
    facts["critical_path_dominant_stage"] = (
        dominant.name if dominant is not None else None
    )

    # Sentinel demo on a synthetic two-point trajectory.
    base = {
        "experiment_id": "OB4-demo", "stage": "overhead",
        "repo_version": "1.4.0", "run_key": "demo",
        "samples": [{"tenants": n_tenants, "tx_per_sec": 100.0}],
    }
    degraded = dict(base, repo_version="1.5.0",
                    samples=[{"tenants": n_tenants, "tx_per_sec": 80.0}])
    within = dict(base, repo_version="1.5.0",
                  samples=[{"tenants": n_tenants, "tx_per_sec": 95.0}])
    try:
        check_entry(degraded, [base])
        facts["sentinel_rejects_20pct_drop"] = False
    except RegressionError:
        facts["sentinel_rejects_20pct_drop"] = True
    facts["sentinel_accepts_5pct_drop"] = all(
        r["status"] == "ok" for r in check_entry(within, [base])
    )

    meta = run_meta(seed)
    meta["wall_tx_per_sec"] = tx_per_sec  # real compute: nondeterministic
    meta["shard_utilization"] = utilization  # wall-derived: nondeterministic
    return ExperimentResult(
        experiment_id="OB4",
        title="Extension — deterministic profiler, critical path, sentinel",
        headers=["shards", "completed", "regions", "flamegraph sha256",
                 "profile sha256", "signature"],
        rows=rows,
        facts=facts,
        notes="Each shard carries its own RegionProfiler on the shard's "
        "simulated clock; the merge folds per-region counts, sim totals, and "
        "QuantileSketches exactly, so the deterministic artifact surface "
        "(flamegraph weighted by calls, profile.jsonl restricted to sim "
        "fields) is byte-identical at every shard count with per-message "
        "evidence.  Wall-clock fields are quarantined to the full rows and "
        "never exported by default.  The critical path telescopes: stage "
        "self-times are child-max residuals, so their sum equals the root "
        "span's elapsed.  Profiling overhead vs the unprofiled engine is "
        "measured in benchmarks/bench_profiler.py.",
        meta=meta,
    )


# ---------------------------------------------------------------------------
# RP1 — replicated-store divergence campaign
# ---------------------------------------------------------------------------

def experiment_replication(
    seed: bytes = b"exp/rp1", n_plans: int = 60
) -> ExperimentResult:
    """Sweep seeded replica-fault plans (divergence, split-brain, lag,
    byzantine tamper with forged attestations) over fresh three-backend
    :class:`~repro.replication.store.ReplicatedStore` instances and
    account for every injected fault.

    The facts assert the RP1 robustness contract: every fault is either
    **masked** by the quorum (the workload never observed a wrong byte)
    or **detected** by the Venus-style fork-consistency verifier — none
    is silently absorbed — and clean control plans produce zero
    findings of any severity (no false positives).
    """
    from ..net.faults import generate_replica_plans
    from ..obs.campaign import class_breakdown
    from ..replication import ReplicationCampaignRunner

    plans = generate_replica_plans(seed, n_plans)
    runner = ReplicationCampaignRunner(seed=seed)
    report = runner.run(plans)
    rows = [
        [o.index, o.plan.name, o.plan.describe(), o.status, o.injected,
         o.masked, o.detected, o.reads, o.writes, o.retransmits,
         o.recoveries,
         "none" if not o.violations else "; ".join(o.violations)]
        for o in report.outcomes
    ]
    facts: dict[str, Any] = {
        "plans": len(report.outcomes),
        "injected_faults": report.injected_faults,
        "masked_faults": report.masked_faults,
        "detected_faults": report.detected_faults,
        "silent_faults": report.silent_faults,
        "violations": report.violation_count,
        "clean_plan_findings": report.clean_plan_findings(),
        "status_counts": report.status_counts(),
        "finding_categories": report.finding_categories(),
        "signature": report.signature(),
        "all_faults_masked_or_detected": (
            report.silent_faults == 0 and report.violation_count == 0
        ),
        "zero_false_positives": report.clean_plan_findings() == 0,
        # Per-replica-fault-class telemetry (retransmits = hedged
        # reads, recoveries = read-repairs).
        "fault_classes": {
            row["fault_class"]: {
                "plans": row["plans"],
                "retries": row["retries"],
                "escalation_rate": row["escalation_rate"],
                "mean_latency": row["elapsed_mean"],
            }
            for row in class_breakdown(report)
        },
    }
    return ExperimentResult(
        experiment_id="RP1",
        title="Extension — replicated-store divergence campaign "
        "(quorum masks, verifier detects)",
        headers=["#", "plan", "faults", "status", "inj", "masked", "det",
                 "reads", "writes", "hedged", "repairs", "violations"],
        rows=rows,
        facts=facts,
        notes="Each plan drives a seeded write/read workload over a fresh "
        "3-replica store (s3like/azurelike/gaelike, quorum 2), injects its "
        "replica faults mid-stream, heals, and runs the full audit sweep. "
        "Identical seed => identical table (signature "
        f"{facts['signature'][:16]}...). "
        f"Per fault class: {_fault_class_line(facts['fault_classes'])}",
        meta=run_meta(seed),
    )


# ---------------------------------------------------------------------------
# RP2 — live backend migration with evidence continuity
# ---------------------------------------------------------------------------

def experiment_migration(seed: bytes = b"exp/rp2") -> ExperimentResult:
    """Live s3like→azurelike migration under a TPNR deployment, with
    the NRO/NRR evidence chain surviving the move.

    Two variants share the same shape — upload through a replicated
    provider store, export the client's evidence bundle, migrate the
    store off ``s3like`` and onto ``azurelike`` (binding the bundle's
    SHA-256 into the migration chain digest), then download and raise a
    tampering dispute *after* the move:

    * **clean** — the download verifies and both the real Arbitrator
      and the dossier's reconstructed verdict reject the claim;
    * **tampered** — the provider rewrites the object on every replica
      post-migration and fixes its own trusted log (the §2.4 cover-up,
      replicated), so only the pre-migration client-held evidence can
      convict: the download flags tampering and both verdicts find the
      provider at fault.

    The Arbitrator never learns the provider switched platforms — that
    is what "the evidence chain survives the migration" means.
    """
    from ..core.arbitrator import Verdict
    from ..core.archive import export_store
    from ..replication import (
        AzureReplicaAdapter,
        GaeReplicaAdapter,
        ReplicatedStore,
        S3ReplicaAdapter,
        attach_replication,
        migrate_backend,
        verify_migration_chain,
    )

    def build(tag: bytes):
        dep = make_deployment(seed=seed + tag, observe=True)
        rng = HmacDrbg(seed + tag, personalization=b"migration-backends")
        store = ReplicatedStore(
            seed=seed + tag + b"/store",
            replicas=(S3ReplicaAdapter(rng.fork("s3like")),
                      GaeReplicaAdapter(rng.fork("gaelike"))),
            quorum=2,
        )
        attach_replication(dep, store)
        payload = rng.fork("payload").generate(192)
        outcome = run_upload(dep, payload, auto_resolve=True)
        txn = outcome.transaction_id
        bundle = export_store(dep.client.evidence_store, txn)
        record = migrate_backend(
            store, "s3like", AzureReplicaAdapter(rng.fork("azurelike")),
            evidence_blob=bundle, registry=dep.registry,
            at_time=dep.sim.now)
        return dep, store, txn, record

    rows = []
    facts: dict[str, Any] = {}

    # Clean variant: the move itself must not manufacture a dispute.
    dep, store, txn, record = build(b"/clean")
    download = run_download(dep, txn)
    ruling = dispute_tampering(dep, txn)
    from ..obs.forensics import DisputeDossier  # lazy: obs imports stay local

    dossier = DisputeDossier.build(dep, txn)
    facts["clean/download_verified"] = download.verified
    facts["clean/verdict"] = ruling.verdict.value
    facts["clean/claim_rejected"] = ruling.verdict is Verdict.CLAIM_REJECTED
    facts["clean/dossier_agrees"] = dossier.agrees(dep.arbitrator)
    facts["clean/chain_verified"] = verify_migration_chain(record)
    facts["clean/objects_migrated"] = record.object_count
    facts["clean/evidence_items_reverified"] = record.evidence_verified
    facts["clean/digests_preserved"] = all(
        store.content_digest(c, k) == d for c, k, _v, d in record.objects)
    facts["clean/replicas_after"] = list(store.replica_names)
    rows.append(["clean", f"{record.source}->{record.destination}",
                 record.object_count, record.evidence_verified,
                 "verified" if download.verified else "TAMPERED",
                 ruling.verdict.value,
                 "yes" if facts["clean/dossier_agrees"] else "NO"])

    # Tampered variant: post-migration cover-up on the new backend.
    dep, store, txn, record = build(b"/tampered")
    tampered = HmacDrbg(seed, personalization=b"tampered-bytes").generate(192)
    store.overwrite_raw("tpnr-data", txn, data=tampered)
    download = run_download(dep, txn)
    ruling = dispute_tampering(dep, txn)
    dossier = DisputeDossier.build(dep, txn)
    facts["tampered/download_flagged"] = download.tampering_detected
    facts["tampered/verdict"] = ruling.verdict.value
    facts["tampered/provider_at_fault"] = ruling.verdict is Verdict.PROVIDER_FAULT
    facts["tampered/dossier_agrees"] = dossier.agrees(dep.arbitrator)
    facts["tampered/chain_verified"] = verify_migration_chain(record)
    rows.append(["tampered", f"{record.source}->{record.destination}",
                 record.object_count, record.evidence_verified,
                 "TAMPERING DETECTED" if download.tampering_detected else "missed",
                 ruling.verdict.value,
                 "yes" if facts["tampered/dossier_agrees"] else "NO"])

    facts["evidence_chain_survives_migration"] = (
        facts["clean/download_verified"]
        and facts["clean/claim_rejected"]
        and facts["clean/dossier_agrees"]
        and facts["clean/chain_verified"]
        and facts["clean/digests_preserved"]
        and facts["clean/evidence_items_reverified"] > 0
        and facts["tampered/download_flagged"]
        and facts["tampered/provider_at_fault"]
        and facts["tampered/dossier_agrees"]
    )
    return ExperimentResult(
        experiment_id="RP2",
        title="Extension — live backend migration with evidence continuity",
        headers=["variant", "migration", "objects", "evidence items",
                 "download", "verdict", "dossier agrees"],
        rows=rows,
        facts=facts,
        notes="The client's NRO/NRR bundle is exported before the move, its "
        "SHA-256 is bound into the migration chain digest, and every item "
        "re-verifies against the key registry after the move.  A dispute "
        "raised post-migration is argued from exactly the evidence minted "
        "pre-migration: honest moves beat false claims, and a provider who "
        "rewrites all replicas *and* its trusted log after migrating is "
        "still convicted by the §4 evidence the client holds.",
        meta=run_meta(seed, dep.sim.now),
    )
